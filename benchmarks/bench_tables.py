"""Tables I-IV: parameter-space inventories and platform configuration.

Regenerates the paper's setup tables and checks their structural facts:
ADI's 18-parameter Table I space, the kripke/hypre parameter sets, and the
Platform A/B node descriptions.
"""

from conftest import once, write_panel

from repro.experiments.figures import tables_1_to_4
from repro.kernels import KERNEL_DESCRIPTORS
from repro.workloads import get_benchmark


def test_tables_1_to_4(benchmark, output_dir):
    result = once(benchmark, tables_1_to_4)
    write_panel(output_dir, "tables_1_to_4", result.render())

    # Table I: ADI has 8 tile + 4 unroll-jam + 4 register-tile + 2 flags.
    assert result.data["adi_n_parameters"] == 18
    d = KERNEL_DESCRIPTORS["adi"]
    assert (d.n_tile, d.n_unroll, d.n_regtile) == (8, 4, 4)

    # Table II: kripke's space is the full cross product of Table II rows.
    assert result.data["kripke_size"] == 6 * 8 * 3 * 2 * 8

    # Table III: hypre's space likewise.
    assert result.data["hypre_size"] == 25 * 2 * 9 * 7


def test_table_1_value_sets():
    adi = get_benchmark("adi")
    assert adi.space["T1"].values == (1, 16, 32, 64, 128, 256, 512)
    assert adi.space["U1"].values[0] == 1 and adi.space["U1"].values[-1] == 31
    assert adi.space["RT1"].values == (1, 8, 32)


def test_table_4_platforms():
    from repro.machine import PLATFORM_A, PLATFORM_B

    assert PLATFORM_A.cores == 24 and PLATFORM_A.frequency_hz == 2.5e9
    assert PLATFORM_B.cores == 28 and PLATFORM_B.frequency_hz == 2.4e9
    assert PLATFORM_B.network is not None  # 100 Gbps OPA
    # 100 Gbps → 12.5 GB/s → β = 8e-11 s/B.
    assert abs(PLATFORM_B.network.beta_s_per_byte - 8e-11) < 1e-12
