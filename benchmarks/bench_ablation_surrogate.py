"""Ablation: random forest vs Gaussian process as the surrogate.

Section II-B argues for the forest: GPs "usually work well for numerical
features but not categorical features".  hypre's space is almost entirely
categorical and the SPAPT spaces are mixed, so this ablation runs PWU with
both surrogates on one of each and compares the learned accuracy.
"""

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace

CASES = ("atax", "hypre")


def test_ablation_surrogate_family(benchmark, scale, output_dir):
    def run_all():
        out = {}
        for bench_name in CASES:
            for model in ("forest", "gp"):
                out[(bench_name, model)] = strategy_trace(
                    bench_name,
                    "pwu",
                    scale,
                    seed=env_seed(),
                    alpha=0.05,
                    config_overrides={"model": model},
                    label=f"pwu/{model}",
                )
        return out

    traces = once(benchmark, run_all)
    rows = [
        [
            bench_name,
            model,
            f"{t.rmse_mean['0.05'][-1]:.4f}",
            f"{t.rmse_mean['0.05'].min():.4f}",
        ]
        for (bench_name, model), t in traces.items()
    ]
    write_panel(
        output_dir,
        "ablation_surrogate",
        format_table(
            ["benchmark", "surrogate", "final RMSE@5%", "min RMSE@5%"],
            rows,
            title="Ablation: surrogate family driving PWU (Section II-B claim)",
        ),
    )

    for t in traces.values():
        assert np.isfinite(t.rmse_mean["0.05"]).all()

    # The paper's claim holds on the mixed numerical space: the forest
    # clearly beats the GP on the kernel.  (On hypre the *log-target* GP —
    # a fix the paper's plain-GP framing does not consider — is actually
    # competitive; a plain GP fails outright there with negative predicted
    # times.  Both facts are recorded in EXPERIMENTS.md.)
    assert (
        traces[("atax", "forest")].min_rmse("0.05")
        < traces[("atax", "gp")].min_rmse("0.05")
    )
