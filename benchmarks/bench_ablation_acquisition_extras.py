"""Ablation: acquisition extensions beyond the paper's six strategies.

* ``pwu-cost`` — Equation 1 divided by the predicted labeling cost
  (σ/μ^(2-α)): the greedy policy for the paper's CC metric.
* ``ei`` — SMAC-style Expected Improvement (optimisation-oriented
  acquisition, from the paper's related work).

Both are compared against plain PWU on one kernel at matched budgets.
"""

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace

KERNEL = "gemver"
STRATEGIES = ("pwu", "pwu-cost", "ei")


def test_ablation_acquisition_extras(benchmark, scale, output_dir):
    def run_all():
        return {
            s: strategy_trace(KERNEL, s, scale, seed=env_seed(), alpha=0.05)
            for s in STRATEGIES
        }

    traces = once(benchmark, run_all)
    rows = [
        [
            s,
            f"{t.rmse_mean['0.05'][-1]:.4f}",
            f"{t.rmse_mean['0.05'].min():.4f}",
            f"{t.cc_mean[-1]:.1f}",
        ]
        for s, t in traces.items()
    ]
    write_panel(
        output_dir,
        "ablation_acquisition_extras",
        format_table(
            ["strategy", "final RMSE@5%", "min RMSE@5%", "final CC (s)"],
            rows,
            title=f"Ablation: acquisition extensions on {KERNEL}",
        ),
    )

    for t in traces.values():
        assert np.isfinite(t.rmse_mean["0.05"]).all()
        assert t.n_train[-1] == scale.n_max

    # The cost-aware variant must actually be cheaper per run than plain
    # PWU — that is its entire point.
    assert traces["pwu-cost"].cc_mean[-1] <= traces["pwu"].cc_mean[-1] * 1.1
