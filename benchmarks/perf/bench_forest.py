#!/usr/bin/env python
"""Surrogate microbenchmarks: presorted growth, packed inference, pool cache.

Times the three layers of the packed-forest optimisation against the
pre-optimisation reference at paper scale (500 training rows, a 7000-row
pool, 30 trees — Section III-D) and writes the results to
``BENCH_forest.json``:

* ``fit`` — growing the full forest: presorted (one argsort per tree,
  C split kernel) vs the per-node argsort reference.
* ``pool_scoring`` — scoring the whole pool with uncertainty: packed
  all-tree traversal vs the per-tree Python prediction loop.
* ``cached_partial_rescore`` — re-scoring the pool after a partial
  ``update()``: the generation-stamped cache re-traverses only the
  refreshed trees.
* ``combined_fit_plus_pool`` — one fit plus one cold pool scoring, the
  per-iteration cycle of Algorithm 1.  The acceptance bar for this PR is
  a >= 3x speedup here.

Every optimised path is bit-identical to its reference (enforced by
``tests/test_trace_equivalence.py``), so these numbers are pure speed.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_forest.py [--quick] \
        [--output BENCH_forest.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.forest import RandomForestRegressor, _cgrower
from repro.forest.uncertainty import across_tree_std

PAPER_SCALE = dict(n_train=500, n_pool=7000, n_features=7, n_trees=30, repeats=5)
QUICK_SCALE = dict(n_train=150, n_pool=1200, n_features=7, n_trees=10, repeats=2)


def best_of(fn, repeats: int, warmup: int = 1) -> float:
    """Best-of-N wall time — robust to the run-to-run jitter that a mean
    would fold in (observed spread on the reference fit is ~40%)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def best_of_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Best-of-N for two functions, *interleaved* so drifting background
    load hits both sides of a speedup ratio equally."""
    fn_a(), fn_b()  # warmup
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def _problem(scale):
    r = np.random.default_rng(7)
    X = r.random((scale["n_train"], scale["n_features"]))
    y = np.abs(r.normal(size=scale["n_train"])) + 0.1
    pool_X = r.random((scale["n_pool"], scale["n_features"]))
    rows = np.arange(scale["n_pool"], dtype=np.intp)
    return X, y, pool_X, rows


def _forest(scale, presort: bool) -> RandomForestRegressor:
    return RandomForestRegressor(
        n_estimators=scale["n_trees"], seed=11, presort=presort
    )


def bench(scale) -> dict:
    X, y, pool_X, rows = _problem(scale)
    repeats = scale["repeats"]
    t = {}

    # -- layer 1: forest growth -------------------------------------------
    t["fit_reference"], t["fit_presorted"] = best_of_pair(
        lambda: _forest(scale, presort=False).fit(X, y),
        lambda: _forest(scale, presort=True).fit(X, y),
        repeats,
    )

    # -- layer 2: pool scoring (cold — no cache) --------------------------
    model = _forest(scale, presort=True).fit(X, y)

    def score_reference():
        P = np.stack([tree.predict(pool_X) for tree in model.trees_], axis=0)
        return P.mean(axis=0), across_tree_std(P)

    def score_packed_cold():
        model._pool_cache = None  # force a full packed traversal
        return model.predict_with_uncertainty_pool(pool_X, rows)

    t["pool_scoring_reference"], t["pool_scoring_packed"] = best_of_pair(
        score_reference, score_packed_cold, repeats
    )

    # -- layer 3: cached re-score after a partial update ------------------
    upd = np.random.default_rng(13)

    def rescore(clear_cache: bool) -> float:
        Xn = upd.random((1, scale["n_features"]))
        yn = np.abs(upd.normal(size=1)) + 0.1
        model.update(Xn, yn, refresh_fraction=0.3)
        if clear_cache:
            model._pool_cache = None
        t0 = time.perf_counter()
        model.predict_with_uncertainty_pool(pool_X, rows)
        return time.perf_counter() - t0

    model.predict_with_uncertainty_pool(pool_X, rows)  # warm the cache
    t["partial_rescore_cold"] = min(rescore(True) for _ in range(repeats + 1))
    t["partial_rescore_cached"] = min(rescore(False) for _ in range(repeats + 1))

    speedups = {
        "fit": t["fit_reference"] / t["fit_presorted"],
        "pool_scoring": t["pool_scoring_reference"] / t["pool_scoring_packed"],
        "cached_partial_rescore": (
            t["partial_rescore_cold"] / t["partial_rescore_cached"]
        ),
        "combined_fit_plus_pool": (
            (t["fit_reference"] + t["pool_scoring_reference"])
            / (t["fit_presorted"] + t["pool_scoring_packed"])
        ),
    }
    return {
        "schema": "repro.bench_forest/v1",
        "kernel": "c" if _cgrower.load() is not None else "numpy",
        "scale": {k: v for k, v in scale.items() if k != "repeats"},
        "repeats": scale["repeats"],
        "timings_sec": {k: round(v, 6) for k, v in t.items()},
        "speedups": {k: round(v, 3) for k, v in speedups.items()},
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help="small scale for CI smoke runs (no speedup threshold check)",
    )
    ap.add_argument("--output", default="BENCH_forest.json")
    ap.add_argument(
        "--min-combined-speedup", type=float, default=3.0,
        help="fail (exit 1) below this combined fit+pool speedup "
        "at paper scale; ignored with --quick",
    )
    args = ap.parse_args(argv)

    scale = QUICK_SCALE if args.quick else PAPER_SCALE
    result = bench(scale)
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"kernel: {result['kernel']}   scale: {result['scale']}")
    for name, sec in sorted(result["timings_sec"].items()):
        print(f"  {name:<28} {sec * 1e3:10.2f} ms")
    for name, x in sorted(result["speedups"].items()):
        print(f"  speedup {name:<28} {x:6.2f}x")
    print(f"wrote {args.output}")

    if not args.quick:
        combined = result["speedups"]["combined_fit_plus_pool"]
        if combined < args.min_combined_speedup:
            print(
                f"FAIL: combined speedup {combined:.2f}x is below the "
                f"{args.min_combined_speedup:.1f}x bar",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
