#!/usr/bin/env python
"""Distilled-workload microbenchmarks: frozen-surface evaluation cost.

Times what distillation (DESIGN.md §2j) buys and writes the results to
``BENCH_distill.json``:

* ``oracle`` — wall-clock of one pool-sized
  :meth:`~repro.workloads.base.Benchmark.evaluate_batch` call on the
  source benchmark vs its distilled envelope.  Both are cheap in this
  reproduction (the source "kernels" are closed-form cost models), so
  this ratio is reported honestly in whichever direction it falls — the
  distilled path pays a forest traversal where the source pays its
  closed form plus a 35x larger noise draw.
* ``modeled`` — the number that motivates distillation in the first
  place: the execution time the source *protocol models* for the same
  campaign (true seconds per configuration x ``n_repeats`` actual runs,
  which is what the paper's tuner spends on real hardware) vs the
  wall-clock of evaluating the frozen envelope.  Distilled workloads
  replace measured executions with model lookups; the acceptance bar is
  >= 20x here, and in practice the ratio is many orders of magnitude.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_distill.py [--quick] \
        [--output BENCH_distill.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.workloads import distill_workload, get_benchmark

PAPER = dict(benchmark="atax", n_configs=7000, budget=1000, trees=16, repeats=5)
QUICK = dict(benchmark="atax", n_configs=1200, budget=200, trees=8, repeats=2)


def _best_wall(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench(params: dict) -> dict:
    source = get_benchmark(params["benchmark"])
    frozen = distill_workload(
        source,
        budget=params["budget"],
        seed=0,
        n_estimators=params["trees"],
    )
    X = source.space.sample_encoded(
        np.random.default_rng(0), params["n_configs"]
    )

    source_wall = _best_wall(
        lambda: source.evaluate_batch(X, np.random.default_rng(1)),
        params["repeats"],
    )
    frozen_wall = _best_wall(
        lambda: frozen.evaluate_batch(X, np.random.default_rng(1)),
        params["repeats"],
    )
    # What the source protocol *models*: n_repeats real executions per
    # configuration, each taking its true time on the machine.
    modeled_source_sec = float(
        source.true_times_encoded(X).sum() * source.protocol.n_repeats
    )
    return {
        "benchmark": params["benchmark"],
        "n_configs": params["n_configs"],
        "distill_budget": params["budget"],
        "oracle": {
            "source_sec": source_wall,
            "distilled_sec": frozen_wall,
            "ratio_source_over_distilled": source_wall / frozen_wall,
        },
        "modeled": {
            "modeled_source_sec": modeled_source_sec,
            "distilled_wall_sec": frozen_wall,
            "speedup": modeled_source_sec / frozen_wall,
        },
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small scale for CI smoke runs (the modeled floor still applies)",
    )
    ap.add_argument("--output", default="BENCH_distill.json")
    ap.add_argument(
        "--min-modeled-speedup", type=float, default=20.0,
        help="fail (exit 1) below this modeled-measurement vs frozen-"
        "envelope speedup",
    )
    args = ap.parse_args(argv)

    result = {
        "schema": "repro.bench_distill/v1",
        **bench(QUICK if args.quick else PAPER),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")

    oracle = result["oracle"]
    modeled = result["modeled"]
    print(
        f"oracle: {result['benchmark']} x{result['n_configs']}   "
        f"source {oracle['source_sec'] * 1e3:.2f} ms   "
        f"distilled {oracle['distilled_sec'] * 1e3:.2f} ms   "
        f"ratio {oracle['ratio_source_over_distilled']:.2f}x"
    )
    print(
        f"modeled: {modeled['modeled_source_sec']:.1f} s of modeled "
        f"execution replaced by {modeled['distilled_wall_sec'] * 1e3:.2f} ms "
        f"of envelope evaluation ({modeled['speedup']:.0f}x)"
    )
    print(f"wrote {args.output}")

    if modeled["speedup"] < args.min_modeled_speedup:
        print(
            f"FAIL: modeled speedup {modeled['speedup']:.2f}x is below the "
            f"{args.min_modeled_speedup:.1f}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
