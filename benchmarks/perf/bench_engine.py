#!/usr/bin/env python
"""Engine hot-path microbenchmarks: fused batch evaluation, batch dispatch.

Times the two layers of the batched-engine optimisation (DESIGN.md §2h)
and writes the results to ``BENCH_engine.json``:

* ``oracle`` — measuring a pool-sized batch of configurations: one fused
  :meth:`~repro.workloads.base.Benchmark.evaluate_batch` call vs the
  per-configuration evaluation loop the learner and service used before.
  The cost models are closed-form numpy, so the fused call amortises the
  parameter-space bookkeeping across the whole batch.  The acceptance bar
  for this PR is a >= 5x configs/sec speedup here at paper pool scale.
* ``dispatch`` — whole trial jobs through :func:`repro.engine.run_jobs`
  at ``--jobs 1/2/4``, chunked dispatch (``batch_size`` pinned so chunks
  have members) vs the historical one-future-per-trial dispatch
  (``batch_size=1``).  Batching amortises future scheduling, pickling,
  and telemetry drains; the shared-memory transport replaces per-worker
  data preparation with one attach per (benchmark, scale, seed).

Chunked dispatch is bit-identical to per-trial dispatch at any worker
count (enforced by ``tests/test_batch_dispatch.py``), so these numbers
are pure speed.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_engine.py [--quick] \
        [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.engine import EngineConfig, run_jobs, trial_jobs
from repro.experiments.config import ExperimentScale
from repro.workloads import get_benchmark

#: Oracle section: paper pool size (7000 configurations, Section III-D).
PAPER_ORACLE = dict(benchmark="mvt", n_configs=7000, repeats=5)
QUICK_ORACLE = dict(benchmark="mvt", n_configs=1200, repeats=2)

#: Dispatch section: small-but-real trials so run_jobs overhead is visible.
PAPER_DISPATCH = dict(
    jobs=(1, 2, 4), n_trials_per_strategy=8, batch_size=4, repeats=3
)
QUICK_DISPATCH = dict(
    jobs=(1, 2), n_trials_per_strategy=2, batch_size=2, repeats=1
)

DISPATCH_SCALE = ExperimentScale(
    name="bench-dispatch",
    pool_size=300,
    test_size=150,
    n_init=8,
    n_batch=1,
    n_max=16,
    n_trials=1,  # overridden per section below
    eval_every=4,
    n_estimators=8,
)


def best_of_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    """Best-of-N for two functions, *interleaved* so drifting background
    load hits both sides of a speedup ratio equally."""
    fn_a(), fn_b()  # warmup
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def bench_oracle(scale) -> dict:
    """Pool-sized fused evaluate_batch vs the per-configuration loop."""
    benchmark = get_benchmark(scale["benchmark"])
    X = benchmark.space.sample_encoded(
        np.random.default_rng(7), scale["n_configs"]
    )

    def fused():
        benchmark.evaluate_batch(X, np.random.default_rng(11))

    def per_config():
        rng = np.random.default_rng(11)
        for row in X:
            benchmark.evaluate_batch(row[None, :], rng)

    per_config_sec, fused_sec = best_of_pair(
        per_config, fused, scale["repeats"]
    )
    n = scale["n_configs"]
    return {
        "benchmark": scale["benchmark"],
        "n_configs": n,
        "fused_sec": round(fused_sec, 6),
        "per_config_sec": round(per_config_sec, 6),
        "configs_per_sec_fused": round(n / fused_sec, 1),
        "configs_per_sec_per_config": round(n / per_config_sec, 1),
        "speedup": round(per_config_sec / fused_sec, 3),
    }


def bench_dispatch(scale) -> dict:
    """Trials/sec through run_jobs: chunked dispatch vs one-future-per-trial."""
    import dataclasses

    trial_scale = dataclasses.replace(
        DISPATCH_SCALE, n_trials=scale["n_trials_per_strategy"]
    )
    jobs = trial_jobs("mvt", "pwu", trial_scale, seed=0) + trial_jobs(
        "mvt", "random", trial_scale, seed=0
    )

    def run(n_workers: int, batch_size: int) -> None:
        config = EngineConfig(
            jobs=n_workers,
            batch_size=batch_size,
            progress=False,
            retry_backoff=0.01,
        )
        results, _ = run_jobs(jobs, config=config)
        if not all(r.ok for r in results.values()):
            raise RuntimeError(f"dispatch benchmark trial failed at jobs={n_workers}")

    per_jobs = {}
    for n_workers in scale["jobs"]:
        per_trial_sec, batched_sec = best_of_pair(
            lambda: run(n_workers, batch_size=1),
            lambda: run(n_workers, batch_size=scale["batch_size"]),
            scale["repeats"],
        )
        per_jobs[str(n_workers)] = {
            "per_trial_sec": round(per_trial_sec, 4),
            "batched_sec": round(batched_sec, 4),
            "per_trial_trials_per_sec": round(len(jobs) / per_trial_sec, 3),
            "batched_trials_per_sec": round(len(jobs) / batched_sec, 3),
            "speedup": round(per_trial_sec / batched_sec, 3),
        }
    return {
        "n_trials": len(jobs),
        "batch_size": scale["batch_size"],
        "scale": {"pool_size": trial_scale.pool_size, "n_max": trial_scale.n_max},
        "jobs": per_jobs,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick", action="store_true",
        help="small scale for CI smoke runs (the speedup floor still applies)",
    )
    ap.add_argument("--output", default="BENCH_engine.json")
    ap.add_argument(
        "--min-batch-speedup", type=float, default=5.0,
        help="fail (exit 1) below this fused-vs-per-config speedup on "
        "pool-sized batches (the oracle ratio is stable enough to gate "
        "even at --quick scale)",
    )
    args = ap.parse_args(argv)

    oracle_scale = QUICK_ORACLE if args.quick else PAPER_ORACLE
    dispatch_scale = QUICK_DISPATCH if args.quick else PAPER_DISPATCH
    oracle = bench_oracle(oracle_scale)
    dispatch = bench_dispatch(dispatch_scale)
    result = {
        "schema": "repro.bench_engine/v1",
        "oracle": oracle,
        "dispatch": dispatch,
        "speedups": {
            "pool_batch_eval": oracle["speedup"],
            **{
                f"dispatch_jobs{j}": row["speedup"]
                for j, row in dispatch["jobs"].items()
            },
        },
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    with open(args.output, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(
        f"oracle: {oracle['benchmark']} x{oracle['n_configs']}   "
        f"fused {oracle['fused_sec'] * 1e3:.2f} ms   "
        f"per-config {oracle['per_config_sec'] * 1e3:.2f} ms   "
        f"speedup {oracle['speedup']:.1f}x"
    )
    for j, row in sorted(dispatch["jobs"].items()):
        print(
            f"dispatch jobs={j}: batched {row['batched_trials_per_sec']:.2f} "
            f"trials/s   per-trial {row['per_trial_trials_per_sec']:.2f} "
            f"trials/s   speedup {row['speedup']:.2f}x"
        )
    print(f"wrote {args.output}")

    speedup = oracle["speedup"]
    if speedup < args.min_batch_speedup:
        print(
            f"FAIL: pool-batch speedup {speedup:.2f}x is below the "
            f"{args.min_batch_speedup:.1f}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
