"""Ablation: the PWU combination rule itself.

Equation 1 divides σ by μ^(1-α).  Variants bracketing that choice:
``cv`` (σ/μ, the α→0 limit), ``pwu-rank`` (rank-weighted σ — invariant to
monotone time rescaling), and ``maxu`` (σ alone, the α→1 limit).
"""

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace

KERNEL = "jacobi"
VARIANTS = ("pwu", "cv", "pwu-rank", "maxu")


def test_ablation_pwu_variants(benchmark, scale, output_dir):
    def run_all():
        return {
            v: strategy_trace(KERNEL, v, scale, seed=env_seed(), alpha=0.05)
            for v in VARIANTS
        }

    traces = once(benchmark, run_all)
    rows = [
        [
            v,
            f"{t.rmse_mean['0.05'][-1]:.4f}",
            f"{t.rmse_mean['0.05'].min():.4f}",
            f"{t.cc_mean[-1]:.1f}",
        ]
        for v, t in traces.items()
    ]
    write_panel(
        output_dir,
        "ablation_pwu_variants",
        format_table(
            ["variant", "final RMSE@5%", "min RMSE@5%", "final CC (s)"],
            rows,
            title=f"Ablation: PWU scoring variants on {KERNEL}",
        ),
    )

    for t in traces.values():
        assert np.isfinite(t.rmse_mean["0.05"]).all()

    # Performance-weighted variants spend less labeling time than pure
    # uncertainty sampling (they prefer fast = cheap configurations).
    assert traces["pwu"].cc_mean[-1] < traces["maxu"].cc_mean[-1]
    assert traces["cv"].cc_mean[-1] < traces["maxu"].cc_mean[-1]
