"""Ablation: retrain-from-scratch vs warm partial update.

Algorithm 1's line 9 allows either constructing the forest from scratch or
updating it partially (Fig. 1 step 5).  The paper defaults to scratch; the
partial update refreshes only a fraction of trees on each iteration,
trading staleness for speed.
"""

import time

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace

KERNEL = "mvt"
SETTINGS = (
    ("scratch", {"retrain": "scratch"}),
    ("partial-50%", {"retrain": "partial", "refresh_fraction": 0.5}),
    ("partial-20%", {"retrain": "partial", "refresh_fraction": 0.2}),
)


def test_ablation_warm_update(benchmark, scale, output_dir):
    def run_all():
        out = {}
        for name, overrides in SETTINGS:
            t0 = time.perf_counter()
            trace = strategy_trace(
                KERNEL,
                "pwu",
                scale,
                seed=env_seed(),
                alpha=0.05,
                config_overrides=overrides,
                label=f"pwu/{name}",
            )
            out[name] = (trace, time.perf_counter() - t0)
        return out

    results = once(benchmark, run_all)
    rows = [
        [
            name,
            f"{trace.rmse_mean['0.05'][-1]:.4f}",
            f"{trace.rmse_mean['0.05'].min():.4f}",
            f"{wall:.1f}",
        ]
        for name, (trace, wall) in results.items()
    ]
    write_panel(
        output_dir,
        "ablation_warm",
        format_table(
            ["retrain mode", "final RMSE@5%", "min RMSE@5%", "harness wall (s)"],
            rows,
            title=f"Ablation: forest retraining mode on {KERNEL}",
        ),
    )

    for trace, _ in results.values():
        assert np.isfinite(trace.rmse_mean["0.05"]).all()
        assert trace.n_train[-1] == scale.n_max

    # Partial updates must not catastrophically break learning: final error
    # stays within a small factor of the scratch baseline.
    scratch_final = results["scratch"][0].rmse_mean["0.05"][-1]
    for name, (trace, _) in results.items():
        assert trace.rmse_mean["0.05"][-1] < 5.0 * scratch_final + 1e-6, name
