"""Sensitivity: PBUS's candidate fraction (an unspecified baseline knob).

Neither this paper nor Balaprakash et al. (2013) fully specifies how large
the performance-biased candidate set is.  The PWU-vs-PBUS speedup (Fig. 7)
depends on it: a tiny candidate set makes PBUS maximally redundant (the
paper's narrative); a large one makes PBUS approach MaxU.  This bench
sweeps the fraction and records how the comparison moves — the honest
context for EXPERIMENTS.md's Fig. 7 numbers.
"""

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace
from repro.metrics import speedup_at_level
from repro.sampling.pbus import PBUSampling

KERNEL = "atax"
FRACTIONS = (0.02, 0.05, 0.10, 0.25)


def test_sensitivity_pbus_candidate_fraction(benchmark, scale, output_dir):
    def run_all():
        pwu = strategy_trace(KERNEL, "pwu", scale, seed=env_seed(), alpha=0.01)
        pbus = {
            f: strategy_trace(
                KERNEL,
                PBUSampling(candidate_fraction=f),
                scale,
                seed=env_seed(),
                alpha=0.01,
                label=f"pbus/{f:g}",
            )
            for f in FRACTIONS
        }
        return pwu, pbus

    pwu, pbus = once(benchmark, run_all)
    rows = []
    for f, trace in pbus.items():
        sp, level = speedup_at_level(
            trace.cc_mean,
            trace.rmse_mean["0.01"],
            pwu.cc_mean,
            pwu.rmse_mean["0.01"],
        )
        rows.append(
            [
                f"fraction={f:g}",
                f"{trace.rmse_mean['0.01'][-1]:.4f}",
                f"{trace.cc_mean[-1]:.1f}",
                f"{sp:.2f}x" if np.isfinite(sp) else "n/a",
            ]
        )
    rows.append(
        ["pwu (ref)", f"{pwu.rmse_mean['0.01'][-1]:.4f}", f"{pwu.cc_mean[-1]:.1f}", "1.00x"]
    )
    write_panel(
        output_dir,
        "ablation_pbus_fraction",
        format_table(
            ["PBUS setting", "final RMSE@1%", "final CC (s)", "PWU speedup vs it"],
            rows,
            title=f"Sensitivity: PBUS candidate fraction on {KERNEL}",
        ),
    )

    for trace in pbus.values():
        assert np.isfinite(trace.rmse_mean["0.01"]).all()
        assert trace.n_train[-1] == scale.n_max
