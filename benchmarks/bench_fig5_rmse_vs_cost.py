"""Fig. 5: RMSE vs cumulative time cost for the applications.

Fig. 4's series re-plotted against labeling cost: the paper's point is
that even where PWU spends more per sample, its error *per second of
measurement* remains competitive or better.
"""

import numpy as np
import pytest
from conftest import cached_comparison, env_seed, once, write_panel

from repro.experiments.report import format_table, sparkline
from repro.metrics import cost_to_reach
from repro.sampling import STRATEGY_NAMES

ALPHA = 0.01
APPS = ("kripke", "hypre")


@pytest.mark.parametrize("app", APPS)
def test_fig5_app(benchmark, scale, output_dir, app):
    traces = once(
        benchmark,
        lambda: cached_comparison(
            app, STRATEGY_NAMES, scale, seed=env_seed(), alpha=ALPHA
        ),
    )
    key = f"{ALPHA:g}"

    # Tabulate cost-to-reach a shared error level for every strategy.
    level = max(t.rmse_mean[key].min() for t in traces.values()) * 1.05
    rows = []
    for s, t in traces.items():
        cost = cost_to_reach(t.cc_mean, t.rmse_mean[key], level)
        rows.append(
            [
                s,
                f"{t.cc_mean[-1]:.0f}",
                f"{t.rmse_mean[key][-1]:.4f}",
                "n/a" if np.isnan(cost) else f"{cost:.0f}",
                sparkline(t.rmse_mean[key]),
            ]
        )
    panel = format_table(
        ["strategy", "final CC (s)", "final RMSE", f"CC to reach {level:.3f}", "trend"],
        rows,
        title=f"Fig.5 [{app}] RMSE vs cumulative cost",
    )
    write_panel(output_dir, f"fig5_{app}", panel)

    # The chosen level must be reachable by at least one strategy, and the
    # strategy that reaches it defines a finite cost.
    costs = [
        cost_to_reach(t.cc_mean, t.rmse_mean[key], level) for t in traces.values()
    ]
    assert any(np.isfinite(c) for c in costs)
