"""Fig. 9: where PBUS and PWU spend their selections in the (μ, σ) plane.

Paper shape: PBUS "puts too much weight into the low uncertainty area";
PWU's selections sit at higher uncertainty while staying biased toward
high predicted performance — the better exploration/exploitation balance.
"""

from conftest import env_seed, once, write_panel

from repro.experiments.figures import fig9


def test_fig9_selection_distribution(benchmark, scale, output_dir):
    result = once(
        benchmark, lambda: fig9(scale, benchmark_name="atax", seed=env_seed())
    )
    write_panel(output_dir, "fig9_selection_map", result.render())

    pbus = result.data["pbus"]
    pwu = result.data["pwu"]
    assert pbus["n_selected"] == pwu["n_selected"] > 0

    # The paper's qualitative claim, quantified: PWU's selections carry
    # more model uncertainty than PBUS's.
    assert pwu["mean_selection_sigma"] > pbus["mean_selection_sigma"]
