"""Fig. 4: RMSE and CC vs #samples for kripke and hypre.

The application spaces are small (2304 / 3150 configurations) and heavily
categorical — the regime the paper argues random forests handle well.
"""

import numpy as np
import pytest
from conftest import cached_comparison, env_seed, once, write_panel

from repro.experiments.figures import _comparison_panels
from repro.sampling import STRATEGY_NAMES

ALPHA = 0.01
APPS = ("kripke", "hypre")


@pytest.mark.parametrize("app", APPS)
def test_fig4_app(benchmark, scale, output_dir, app):
    traces = once(
        benchmark,
        lambda: cached_comparison(
            app, STRATEGY_NAMES, scale, seed=env_seed(), alpha=ALPHA
        ),
    )
    rmse_panel, cc_panel = _comparison_panels(traces, f"{ALPHA:g}")
    write_panel(
        output_dir,
        f"fig4_{app}",
        f"Fig.4 [{app}] (a) RMSE\n{rmse_panel}\n\n(b) CC\n{cc_panel}",
    )

    for name, trace in traces.items():
        assert np.isfinite(trace.rmse_mean[f"{ALPHA:g}"]).all(), name
        assert trace.cc_mean[-1] > 0

    # Application labeling is expensive (seconds to minutes per sample):
    # final CC must dwarf the kernels' (which are sub-second per sample).
    assert traces["random"].cc_mean[-1] > 10.0

    # Learning happens: best informed strategy beats its own cold start.
    pwu = traces["pwu"].rmse_mean[f"{ALPHA:g}"]
    assert pwu.min() < pwu[0]
