"""Ablation: forest uncertainty estimator.

DESIGN.md design choice: the paper uses the std of per-tree predictions as
σ (citing Hutter et al.); the same reference derives a law-of-total-variance
estimator that adds within-leaf variance.  Does PWU's behaviour depend on
which one drives it?
"""

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace

KERNEL = "atax"


def test_ablation_uncertainty_estimator(benchmark, scale, output_dir):
    def run_both():
        return {
            estimator: strategy_trace(
                KERNEL,
                "pwu",
                scale,
                seed=env_seed(),
                alpha=0.05,
                config_overrides={"uncertainty": estimator},
                label=f"pwu/{estimator}",
            )
            for estimator in ("across_trees", "total_variance")
        }

    traces = once(benchmark, run_both)
    rows = [
        [
            name,
            f"{t.rmse_mean['0.05'][-1]:.4f}",
            f"{t.rmse_mean['0.05'].min():.4f}",
            f"{t.cc_mean[-1]:.1f}",
        ]
        for name, t in traces.items()
    ]
    write_panel(
        output_dir,
        "ablation_uncertainty",
        format_table(
            ["estimator", "final RMSE@5%", "min RMSE@5%", "final CC (s)"],
            rows,
            title="Ablation: uncertainty estimator driving PWU",
        ),
    )

    for t in traces.values():
        assert np.isfinite(t.rmse_mean["0.05"]).all()
    # Both estimators must produce a learning curve, not a flat line.
    for t in traces.values():
        assert t.rmse_mean["0.05"].min() < t.rmse_mean["0.05"][0] * 1.05
