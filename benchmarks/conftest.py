"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one ``bench_*`` file.  Heavy experiment runs
are memoised per session (Fig. 2 and Fig. 3 plot the *same* runs; Fig. 7
reuses them too), and every regenerated panel is written to
``benchmarks/_output/`` so the evidence survives the pytest run.

Scale selection: set ``REPRO_SCALE`` to ``smoke`` (default here; minutes
for the full suite), ``quick`` (tens of minutes) or ``paper`` (the full
Section III-D protocol).

Execution: every driver routes its trials through :mod:`repro.engine`, so
``REPRO_JOBS=8`` fans them over 8 worker processes (bit-identical results)
and ``REPRO_CACHE_DIR=...`` persists completed trials — re-running the
harness, or any figure CLI sharing the directory, skips finished work.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine import engine_from_env, use_engine
from repro.experiments.aggregate import AveragedTrace
from repro.experiments.config import ExperimentScale, scale_from_env
from repro.experiments.runner import comparison_traces

OUTPUT_DIR = Path(__file__).parent / "_output"

_COMPARISON_CACHE: dict[tuple, dict[str, AveragedTrace]] = {}


@pytest.fixture(scope="session", autouse=True)
def engine_context():
    """Install the env-configured engine (REPRO_JOBS / REPRO_CACHE_DIR)."""
    with use_engine(engine_from_env()) as config:
        yield config


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return scale_from_env(default="smoke")


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def cached_comparison(
    benchmark_name: str,
    strategies: tuple[str, ...],
    scale: ExperimentScale,
    seed: int = 0,
    alpha: float = 0.01,
) -> dict[str, AveragedTrace]:
    """Memoised comparison_traces: figures that share runs share the cost."""
    key = (benchmark_name, strategies, scale.name, seed, alpha)
    if key not in _COMPARISON_CACHE:
        # repro: allow[SPAWN001] single-process pytest session memo; benchmarks never run in pool workers
        _COMPARISON_CACHE[key] = comparison_traces(
            benchmark_name, strategies, scale, seed=seed, alpha=alpha
        )
    return _COMPARISON_CACHE[key]


def write_panel(output_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated panel under benchmarks/_output/."""
    path = output_dir / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are far too heavy for statistical repetition; a single
    timed round still lands the wall-time in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def env_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))
