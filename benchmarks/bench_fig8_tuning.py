"""Fig. 8: direct tuning vs tuning with the surrogate as annotator (atax).

Paper shape: the surrogate-annotated tuner's best-found-so-far curve
tracks (is "comparative to, even better than") the ground-truth tuner —
while spending no measurement time during the search.
"""

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.figures import fig8


def test_fig8_surrogate_tuning(benchmark, scale, output_dir):
    result = once(
        benchmark,
        lambda: fig8(
            scale, benchmark_name="atax", n_tuning_iterations=30, seed=env_seed()
        ),
    )
    write_panel(output_dir, "fig8_tuning", result.render())

    direct = np.asarray(result.data["direct"])
    surrogate = np.asarray(result.data["surrogate"])

    # Best-so-far curves are non-increasing by construction.
    assert (np.diff(direct) <= 1e-12).all()
    assert (np.diff(surrogate) <= 1e-12).all()

    # The surrogate-driven tuner must land in the same ballpark as direct
    # tuning (paper: comparable or better), not an order of magnitude off.
    assert result.data["surrogate_final"] <= 3.0 * result.data["direct_final"]

    # And both tuners actually tune: the end beats the starting point.
    assert direct[-1] <= direct[0]
    assert surrogate[-1] <= surrogate[0]
