"""Extension: cross-platform model portability (paper's future work).

Section VI closes with "investigate ... the portability of performance
models to avoid building models from scratch when encountering new kernels
or platforms".  This bench measures the two prerequisites on our substrate:
the cross-platform surface correlation, and the learning-curve effect of a
transfer-seeded cold start.
"""

import numpy as np
from conftest import env_seed, once, write_panel

from repro.active import LearnerConfig
from repro.experiments.report import format_table
from repro.kernels import KERNEL_DESCRIPTORS, SpaptKernel
from repro.machine import PLATFORM_A, PLATFORM_B
from repro.space import DataPool
from repro.transfer import run_transfer_experiment, surface_correlation

KERNELS = ("atax", "mvt", "jacobi")


def test_extension_cross_platform_correlation(benchmark, output_dir):
    def probe():
        rows = {}
        for name in KERNELS:
            a = SpaptKernel(KERNEL_DESCRIPTORS[name], machine=PLATFORM_A)
            b = SpaptKernel(KERNEL_DESCRIPTORS[name], machine=PLATFORM_B)
            rows[name] = surface_correlation(a, b, n_probe=400, seed=env_seed())
        return rows

    rows = once(benchmark, probe)
    write_panel(
        output_dir,
        "extension_correlation",
        format_table(
            ["kernel", "Spearman rho (A vs B)"],
            [[k, f"{v:.3f}"] for k, v in rows.items()],
            title="Extension: cross-platform surface correlation",
        ),
    )
    # Same kernel on sibling Xeons: strongly rank-correlated surfaces.
    assert all(v > 0.7 for v in rows.values())


def test_extension_transfer_seeding(benchmark, scale, output_dir):
    def run():
        source = SpaptKernel(KERNEL_DESCRIPTORS["atax"], machine=PLATFORM_A)
        target = SpaptKernel(KERNEL_DESCRIPTORS["atax"], machine=PLATFORM_B)
        rng = np.random.default_rng(env_seed())
        n_pool = min(scale.pool_size, 600)
        n_test = min(scale.test_size, 300)
        X = target.space.sample_unique_encoded(rng, n_pool + n_test)
        pool, X_test = DataPool(X[:n_pool]), X[n_pool:]
        y_test = target.measure_encoded(X_test, rng)
        return run_transfer_experiment(
            source=source,
            target=target,
            pool=pool,
            X_test=X_test,
            y_test=y_test,
            config=LearnerConfig(
                n_init=scale.n_init,
                n_max=min(scale.n_max, n_pool),
                eval_every=scale.eval_every,
                n_estimators=scale.n_estimators,
                alphas=(0.05,),
            ),
            seed=env_seed(),
        )

    result = once(benchmark, run)
    ratios = result.improvement("0.05")
    write_panel(
        output_dir,
        "extension_transfer",
        format_table(
            ["#samples", "scratch RMSE@5%", "transfer RMSE@5%", "ratio"],
            [
                [
                    int(n),
                    f"{s:.4f}",
                    f"{t:.4f}",
                    f"{r:.2f}",
                ]
                for n, s, t, r in zip(
                    result.scratch.n_train,
                    result.scratch.rmse_series("0.05"),
                    result.transferred.rmse_series("0.05"),
                    ratios,
                )
            ],
            title=f"Extension: transfer-seeded cold start "
            f"(surface rho={result.surface_rho:.3f})",
        ),
    )
    assert np.isfinite(ratios).all()
    assert result.surface_rho > 0.7
