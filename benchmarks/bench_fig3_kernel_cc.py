"""Fig. 3: cumulative labeling cost (CC) vs #samples, 12 kernels.

Shares the Fig. 2 runs via the session cache — the paper draws both
figures from the same experiments.

Paper shape being checked: BestPerf and BRS accumulate the *least* cost
(they chase predicted-fast = cheap-to-measure configurations), MaxU the
most (it chases uncertain, often slow, configurations); PWU sits between.
"""

import numpy as np
import pytest
from conftest import cached_comparison, env_seed, once, write_panel

from repro.experiments.figures import _comparison_panels
from repro.kernels import SPAPT_KERNEL_NAMES
from repro.sampling import STRATEGY_NAMES

ALPHA = 0.01


@pytest.mark.parametrize("kernel", SPAPT_KERNEL_NAMES)
def test_fig3_kernel(benchmark, scale, output_dir, kernel):
    traces = once(
        benchmark,
        lambda: cached_comparison(
            kernel, STRATEGY_NAMES, scale, seed=env_seed(), alpha=ALPHA
        ),
    )
    _, cc_panel = _comparison_panels(traces, f"{ALPHA:g}")
    write_panel(output_dir, f"fig3_{kernel}", f"Fig.3 [{kernel}]\n{cc_panel}")

    for name, trace in traces.items():
        cc = trace.cc_mean
        assert (np.diff(cc) >= -1e-9).all(), f"{name}: CC must be non-decreasing"
        assert cc[-1] > 0

    # Exploitation-biased samplers label cheap configurations: their final
    # cost must undercut pure uncertainty sampling.
    assert traces["bestperf"].cc_mean[-1] < traces["maxu"].cc_mean[-1]


def test_fig3_cost_ordering_summary(scale, output_dir):
    """Aggregate check across three representative kernels."""
    cheaper_than_maxu = 0
    rows = []
    for kernel in ("atax", "mm", "gesummv"):
        traces = cached_comparison(
            kernel, STRATEGY_NAMES, scale, seed=env_seed(), alpha=ALPHA
        )
        final = {s: t.cc_mean[-1] for s, t in traces.items()}
        rows.append(f"{kernel}: " + "  ".join(f"{s}={v:.1f}s" for s, v in final.items()))
        if final["bestperf"] <= min(final["maxu"], final["random"]):
            cheaper_than_maxu += 1
    write_panel(output_dir, "fig3_summary", "\n".join(rows))
    assert cheaper_than_maxu >= 2
