"""Fig. 2: RMSE@1% vs #samples for the 12 SPAPT kernels, 6 strategies.

One pytest-benchmark per kernel; each regenerates the corresponding panel
of Fig. 2 (the series of top-1% RMSE against training-set size for every
sampling strategy) and writes it to ``benchmarks/_output/``.

Paper shape being checked: informed strategies end below uniform random,
and the exploration-blind baselines (BestPerf/BRS) do not dominate the
accuracy ranking everywhere.
"""

import numpy as np
import pytest
from conftest import cached_comparison, env_seed, once, write_panel

from repro.experiments.figures import _comparison_panels
from repro.kernels import SPAPT_KERNEL_NAMES
from repro.sampling import STRATEGY_NAMES

ALPHA = 0.01


@pytest.mark.parametrize("kernel", SPAPT_KERNEL_NAMES)
def test_fig2_kernel(benchmark, scale, output_dir, kernel):
    traces = once(
        benchmark,
        lambda: cached_comparison(
            kernel, STRATEGY_NAMES, scale, seed=env_seed(), alpha=ALPHA
        ),
    )
    rmse_panel, _ = _comparison_panels(traces, f"{ALPHA:g}")
    write_panel(output_dir, f"fig2_{kernel}", f"Fig.2 [{kernel}]\n{rmse_panel}")

    # Structural checks on the regenerated series.
    for name, trace in traces.items():
        r = trace.rmse_mean[f"{ALPHA:g}"]
        assert np.isfinite(r).all() and (r >= 0).all(), name
        assert trace.n_train[-1] == scale.n_max

    # The model must actually learn: the best informed strategy improves
    # substantially over its cold-start error.
    informed = [traces[s] for s in ("pwu", "pbus", "maxu")]
    best_drop = max(
        t.rmse_mean[f"{ALPHA:g}"][0] - t.rmse_mean[f"{ALPHA:g}"].min()
        for t in informed
    )
    assert best_drop > 0
