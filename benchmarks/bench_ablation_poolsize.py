"""Ablation: pool-size sufficiency.

Section III-D claims 10,000 uniform samples suffice to represent the
parameter space ("later experiments have shown its sufficiency").  We
sweep the pool size at fixed budget and check the final accuracy
stabilises as the pool grows — the signature of a sufficient pool.
"""

import dataclasses

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace

KERNEL = "bicgkernel"


def test_ablation_pool_size(benchmark, scale, output_dir):
    factors = (0.5, 1.0, 2.0)

    def run_all():
        out = {}
        for f in factors:
            sized = dataclasses.replace(
                scale,
                name=f"{scale.name}-pool{f:g}x",
                pool_size=max(int(scale.pool_size * f), scale.n_max),
            )
            out[f] = strategy_trace(
                KERNEL, "pwu", sized, seed=env_seed(), alpha=0.05, label=f"pwu/{f:g}x"
            )
        return out

    traces = once(benchmark, run_all)
    rows = [
        [
            f"pool {f:g}x ({max(int(scale.pool_size * f), scale.n_max)})",
            f"{t.rmse_mean['0.05'][-1]:.4f}",
            f"{t.rmse_mean['0.05'].min():.4f}",
        ]
        for f, t in traces.items()
    ]
    write_panel(
        output_dir,
        "ablation_poolsize",
        format_table(
            ["pool size", "final RMSE@5%", "min RMSE@5%"],
            rows,
            title=f"Ablation: pool-size sufficiency on {KERNEL}",
        ),
    )

    finals = [t.rmse_mean["0.05"][-1] for t in traces.values()]
    assert all(np.isfinite(v) for v in finals)
    # Doubling the pool must not change the reachable error regime by an
    # order of magnitude — i.e. the default pool is not undersized.
    assert max(finals) < 10.0 * min(finals) + 1e-6
