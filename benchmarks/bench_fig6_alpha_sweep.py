"""Fig. 6: PBUS vs PWU at α ∈ {0.01, 0.05, 0.10} on atax.

The paper's robustness claim: PWU's advantage is not an artifact of one α
setting.  The strategy's α and the evaluation metric's α are linked, as
in Section III-D.
"""

import numpy as np
import pytest
from conftest import env_seed, once, write_panel

from repro.experiments.figures import fig6

ALPHAS = (0.01, 0.05, 0.10)


def test_fig6_alpha_sweep(benchmark, scale, output_dir):
    result = once(
        benchmark, lambda: fig6(scale, benchmark="atax", alphas=ALPHAS, seed=env_seed())
    )
    write_panel(output_dir, "fig6_alpha_sweep", result.render())

    for a in ALPHAS:
        key = f"{a:g}"
        assert key in result.data
        d = result.data[key]
        assert set(d) == {"pbus", "pwu"}
        for s in ("pbus", "pwu"):
            series = np.asarray(d[s]["rmse_mean"][key])
            assert np.isfinite(series).all()
            # Both methods must learn at every α (improve on cold start).
            assert series.min() < series[0] * 1.01


def test_fig6_alpha_changes_the_metric(scale):
    """RMSE@1% and RMSE@10% measure genuinely different slices."""
    result = fig6(scale, benchmark="atax", alphas=(0.01, 0.10), seed=env_seed())
    pwu_001 = np.asarray(result.data["0.01"]["pwu"]["rmse_mean"]["0.01"])
    pwu_010 = np.asarray(result.data["0.1"]["pwu"]["rmse_mean"]["0.1"])
    assert not np.allclose(pwu_001, pwu_010)
