"""Supplementary: how the PWU-vs-PBUS comparison depends on the budget.

PWU spends early samples exploring (high-σ picks); PBUS exploits from the
start.  At tiny budgets exploitation wins by construction; the paper's
protocol (n_max = 500) sits deep in the regime where exploration has paid
off.  This sweep measures the crossover on our substrate, which is the
context needed to read the Fig. 7 numbers at reduced scales.
"""

import dataclasses

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import comparison_traces
from repro.metrics import speedup_at_level

KERNEL = "atax"
BUDGETS = (60, 120, 240, 400)


def test_budget_sweep(benchmark, scale, output_dir):
    def run_all():
        rows = {}
        for n_max in BUDGETS:
            sized = dataclasses.replace(
                scale,
                name=f"{scale.name}-n{n_max}",
                n_max=n_max,
                pool_size=max(scale.pool_size, n_max * 3),
                n_trials=min(scale.n_trials, 2),
            )
            traces = comparison_traces(
                KERNEL, ("pbus", "pwu"), sized, seed=env_seed(), alpha=0.01
            )
            sp, level = speedup_at_level(
                traces["pbus"].cc_mean,
                traces["pbus"].rmse_mean["0.01"],
                traces["pwu"].cc_mean,
                traces["pwu"].rmse_mean["0.01"],
            )
            rows[n_max] = (
                sp,
                level,
                traces["pbus"].rmse_mean["0.01"][-1],
                traces["pwu"].rmse_mean["0.01"][-1],
            )
        return rows

    rows = once(benchmark, run_all)
    write_panel(
        output_dir,
        "budget_sweep",
        format_table(
            ["budget n_max", "PWU/PBUS speedup", "level", "PBUS final", "PWU final"],
            [
                [
                    n,
                    f"{sp:.2f}x" if np.isfinite(sp) else "n/a",
                    f"{lv:.4f}",
                    f"{pb:.4f}",
                    f"{pw:.4f}",
                ]
                for n, (sp, lv, pb, pw) in rows.items()
            ],
            title=f"Budget dependence of the PWU-vs-PBUS comparison ({KERNEL})",
        ),
    )
    assert all(np.isfinite(v[2]) and np.isfinite(v[3]) for v in rows.values())
