"""Ablation: batch size.

The paper fixes n_batch = 1 (Section III-D): refit after every sample.
Larger batches amortise training cost but select on staler models.  This
ablation measures what that staleness costs in accuracy.
"""

import time

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import strategy_trace

KERNEL = "gesummv"
BATCHES = (1, 5, 10)


def test_ablation_batch_size(benchmark, scale, output_dir):
    def run_all():
        out = {}
        for b in BATCHES:
            t0 = time.perf_counter()
            trace = strategy_trace(
                KERNEL,
                "pwu",
                scale,
                seed=env_seed(),
                alpha=0.05,
                config_overrides={"n_batch": b},
                label=f"pwu/b{b}",
            )
            out[b] = (trace, time.perf_counter() - t0)
        return out

    results = once(benchmark, run_all)
    rows = [
        [
            f"n_batch={b}",
            f"{trace.rmse_mean['0.05'][-1]:.4f}",
            f"{trace.cc_mean[-1]:.1f}",
            f"{wall:.1f}",
        ]
        for b, (trace, wall) in results.items()
    ]
    write_panel(
        output_dir,
        "ablation_batch",
        format_table(
            ["setting", "final RMSE@5%", "final CC (s)", "harness wall (s)"],
            rows,
            title=f"Ablation: batch size on {KERNEL} (paper uses 1)",
        ),
    )

    for trace, _ in results.values():
        assert trace.n_train[-1] == scale.n_max
        assert np.isfinite(trace.rmse_mean["0.05"]).all()

    # Bigger batches refit the forest fewer times: harness time must drop.
    walls = [results[b][1] for b in BATCHES]
    assert walls[-1] < walls[0]
