"""Fig. 7 at a budget closer to the paper's protocol.

The main Fig. 7 bench runs at the harness scale (REPRO_SCALE); PWU's
exploration premium only amortises with enough samples (see
``bench_budget_sweep``).  This bench re-measures the PWU-vs-PBUS speedup
for a representative benchmark subset at n_max = 300 — below the paper's
500 but in the same regime — with 2 trials to bound runtime.
"""

import dataclasses

import numpy as np
from conftest import env_seed, once, write_panel

from repro.experiments.report import format_table
from repro.experiments.runner import comparison_traces
from repro.metrics import speedup_at_level

BENCHMARKS = ("atax", "jacobi", "kripke")
N_MAX = 300


def test_fig7_larger_budget(benchmark, scale, output_dir):
    sized = dataclasses.replace(
        scale,
        name=f"{scale.name}-n{N_MAX}",
        n_max=N_MAX,
        pool_size=max(scale.pool_size, 3 * N_MAX),
        n_trials=2,
        eval_every=10,
    )

    def run_all():
        out = {}
        for bench_name in BENCHMARKS:
            traces = comparison_traces(
                bench_name, ("pbus", "pwu"), sized, seed=env_seed(), alpha=0.01
            )
            sp, level = speedup_at_level(
                traces["pbus"].cc_mean,
                traces["pbus"].rmse_mean["0.01"],
                traces["pwu"].cc_mean,
                traces["pwu"].rmse_mean["0.01"],
            )
            out[bench_name] = (
                sp,
                level,
                traces["pbus"].rmse_mean["0.01"][-1],
                traces["pwu"].rmse_mean["0.01"][-1],
            )
        return out

    rows_data = once(benchmark, run_all)
    speedups = [v[0] for v in rows_data.values() if np.isfinite(v[0])]
    geo = float(np.exp(np.mean(np.log(speedups)))) if speedups else float("nan")
    rows = [
        [
            b,
            f"{sp:.2f}x" if np.isfinite(sp) else "n/a",
            f"{lv:.4f}",
            f"{pb:.4f}",
            f"{pw:.4f}",
        ]
        for b, (sp, lv, pb, pw) in rows_data.items()
    ]
    rows.append(["(geo-mean)", f"{geo:.2f}x", "", "", ""])
    write_panel(
        output_dir,
        "fig7_larger_budget",
        format_table(
            ["benchmark", "PWU/PBUS speedup", "level", "PBUS final", "PWU final"],
            rows,
            title=f"Fig. 7 at n_max={N_MAX} (paper regime)",
        ),
    )
    assert all(np.isfinite(v[2]) and np.isfinite(v[3]) for v in rows_data.values())
