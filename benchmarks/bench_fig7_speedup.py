"""Fig. 7: cumulative-cost speedup of PWU over PBUS, all 14 benchmarks.

The paper's headline: PWU reaches the common low error level up to 21x
cheaper than PBUS, 3x on average.  Our substrate is a simulator, so the
absolute ratios differ; what this bench regenerates is the per-benchmark
speedup table and its geometric mean, and EXPERIMENTS.md records the
paper-vs-measured comparison (including benchmarks where the advantage
does not replicate — see the PBUS-fraction sensitivity ablation).
"""

import numpy as np
from conftest import cached_comparison, env_seed, once, write_panel

from repro.experiments.figures import fig7
from repro.kernels import SPAPT_KERNEL_NAMES
from repro.sampling import STRATEGY_NAMES

ALPHA = 0.01
ALL_BENCHMARKS = SPAPT_KERNEL_NAMES + ("kripke", "hypre")


def test_fig7_speedup_table(benchmark, scale, output_dir):
    # Reuse the Fig. 2 / Fig. 4 runs (cached) instead of re-running.
    pre = {
        b: cached_comparison(b, STRATEGY_NAMES, scale, seed=env_seed(), alpha=ALPHA)
        for b in ALL_BENCHMARKS
    }
    result = once(
        benchmark,
        lambda: fig7(scale, benchmarks=ALL_BENCHMARKS, alpha=ALPHA, precomputed=pre),
    )
    write_panel(output_dir, "fig7_speedup", result.render())

    speedups = result.data["speedups"]
    assert set(speedups) == set(ALL_BENCHMARKS)
    finite = [v for v in speedups.values() if np.isfinite(v)]
    # The common level is defined so both methods reach it; a speedup must
    # be computable on most benchmarks.
    assert len(finite) >= len(ALL_BENCHMARKS) // 2
    assert all(v > 0 for v in finite)
    assert np.isfinite(result.data["geo_mean"])
