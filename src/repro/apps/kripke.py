"""Performance model of the kripke transport proxy (Table II parameters).

kripke (Kunen, Bailey & Brown, LLNL 2015) sweeps a discrete-ordinates
transport problem over a 3-D zone mesh.  Its performance-only knobs:

* ``layout`` — nesting order of the Direction/Group/Zone loops (six
  permutations).  The innermost dimension determines SIMD and cache
  behaviour, interacting with how many groups/directions one block holds.
* ``gset``/``dset`` — the energy groups and directions are blocked into
  sets; a sweep processes one (group-set, direction-set) block at a time.
  Many small blocks pipeline better across processes but pay more message
  and loop overhead; few large blocks vectorise better but idle the
  pipeline.
* ``pmethod`` — ``sweep`` (KBA wavefront pipeline, exact) versus ``bj``
  (block-Jacobi: fully parallel sub-domain sweeps but several iterations to
  propagate the solution).
* ``#process`` — MPI ranks over the Platform B α-β network.

The model composes per-block compute (layout- and block-size-dependent
efficiency on the machine model) with a KBA pipeline fill / block-Jacobi
iteration term and α-β message costs.  Magnitudes are representative of a
16M-unknown problem; the reproduction relies on the surface's *shape*.
"""

from __future__ import annotations

import numpy as np

from repro.machine import PLATFORM_B, MachineModel
from repro.noise import APP_PROTOCOL, MeasurementProtocol
from repro.space import CategoricalParameter, OrdinalParameter, ParameterSpace
from repro.workloads.base import Benchmark

__all__ = ["KripkeBenchmark", "LAYOUTS"]

LAYOUTS = ("DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD")
GSET_VALUES = (1, 2, 4, 8, 16, 32, 64, 128)
DSET_VALUES = (8, 16, 32)
PMETHODS = ("sweep", "bj")
PROCESS_VALUES = (1, 2, 4, 8, 16, 32, 64, 128)

#: Problem shape: zones × groups × directions, and flops per unknown-angle.
N_ZONES = 8192.0
N_GROUPS = 128.0
N_DIRECTIONS = 96.0
FLOPS_PER_ELEMENT = 25.0

#: Relative compute cost of each loop nesting (innermost letter dominates:
#: long stride-1 zone loops vectorise best; direction-innermost thrashes).
_LAYOUT_BASE_COST = {
    "DGZ": 1.00,  # zones innermost: best SIMD over the mesh
    "GZD": 1.30,
    "ZGD": 1.42,  # directions innermost: short, gather-heavy loops
    "GDZ": 1.05,
    "ZDG": 1.28,  # groups innermost
    "DZG": 1.22,
}
#: Which quantity sits innermost for each layout (drives block-size coupling).
_INNERMOST = {
    "DGZ": "Z",
    "GDZ": "Z",
    "DZG": "G",
    "ZDG": "G",
    "GZD": "D",
    "ZGD": "D",
}

#: Block-Jacobi needs several passes to propagate incident fluxes.
_BJ_ITERATIONS = 3.5
#: Idle-pipeline residue constant for the KBA sweep.
_SWEEP_SURFACE_FRACTION = 0.18
#: Global scale: the paper's kripke runs take tens of seconds per sample.
_TIME_SCALE = 40.0


class KripkeBenchmark(Benchmark):
    """kripke on Platform B.  Parameter order: layout, gset, dset, pmethod, #process."""

    name = "kripke"

    def __init__(
        self,
        machine: MachineModel = PLATFORM_B,
        protocol: MeasurementProtocol = APP_PROTOCOL,
    ) -> None:
        if machine.network is None:
            raise ValueError("kripke needs a machine model with a network")
        space = ParameterSpace(
            [
                CategoricalParameter("layout", LAYOUTS),
                OrdinalParameter("gset", GSET_VALUES),
                OrdinalParameter("dset", DSET_VALUES),
                CategoricalParameter("pmethod", PMETHODS),
                OrdinalParameter("#process", PROCESS_VALUES),
            ]
        )
        super().__init__(space, protocol)
        self.machine = machine
        # Single-core effective flop rate for this (memory-heavy) sweep code.
        self._core_flops = machine.frequency_hz * machine.flops_per_cycle
        # Precomputed per-layout gather tables: the batched evaluation
        # contract makes true_times_encoded the hot loop, and a Python
        # dict lookup per *row* would dominate a pool-sized batch.  The
        # gathered values are the identical floats/strings the per-row
        # lookups produced, so results are bit-identical.
        self._layout_cost_table = np.asarray(
            [_LAYOUT_BASE_COST[layout] for layout in LAYOUTS]
        )
        self._innermost_table = np.asarray(
            [_INNERMOST[layout] for layout in LAYOUTS]
        )

    def true_times_encoded(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        layout_idx = np.round(X[:, 0]).astype(np.intp)
        gset = X[:, 1]
        dset = X[:, 2]
        bj = np.round(X[:, 3]).astype(np.intp) == 1  # PMETHODS index 1 == "bj"
        procs = X[:, 4]

        layout_cost = self._layout_cost_table[layout_idx]
        innermost = self._innermost_table[layout_idx]

        # Block geometry: one block holds (groups/gset) × (directions/dset)
        # group-angle pairs over all local zones.
        groups_per_set = N_GROUPS / gset
        dirs_per_set = N_DIRECTIONS / dset
        n_blocks = gset * dset

        # --- per-element compute efficiency --------------------------------
        # The innermost loop length decides vectorisation: zone-innermost is
        # always long; group-/direction-innermost need fat sets.
        inner_len = np.where(
            innermost == "Z",
            N_ZONES,
            np.where(innermost == "G", groups_per_set, dirs_per_set),
        )
        simd_eff = np.minimum(1.0, inner_len / 16.0) * 0.55 + 0.45
        elem_cycles = FLOPS_PER_ELEMENT * layout_cost / simd_eff
        # Small blocks add loop/bookkeeping overhead per element.
        block_elems = groups_per_set * dirs_per_set
        overhead = 1.0 + 6.0 / block_elems

        total_elems = N_ZONES * N_GROUPS * N_DIRECTIONS
        serial_compute_s = total_elems * elem_cycles * overhead / (
            self.machine.frequency_hz * self.machine.flops_per_cycle
        )

        # --- parallel structure --------------------------------------------
        net = self.machine.network
        # 3-D decomposition: pipeline depth scales with the process-grid
        # diameter; local surface is the message payload per block-stage.
        grid_diameter = 3.0 * np.cbrt(procs)
        local_zones = N_ZONES / procs
        surface_zones = np.maximum(local_zones ** (2.0 / 3.0), 1.0)
        msg_bytes = surface_zones * groups_per_set * dirs_per_set * 8.0

        compute_per_proc = serial_compute_s / procs

        # KBA sweep: fill/drain idles ~diameter/(diameter+#blocks) of the
        # pipeline; each block-stage pays one α-β message per face.
        fill_factor = 1.0 + grid_diameter / np.maximum(n_blocks, 1.0)
        sweep_msgs = n_blocks * grid_diameter
        sweep_comm = sweep_msgs * (net.alpha_s + net.beta_s_per_byte * msg_bytes)
        sweep_comm = sweep_comm * _SWEEP_SURFACE_FRACTION * 6.0
        t_sweep = compute_per_proc * fill_factor + sweep_comm

        # Block-Jacobi: no pipeline, but several full iterations; each
        # iteration exchanges all faces at once plus a small allreduce.
        bj_comm_per_iter = 6.0 * (net.alpha_s + net.beta_s_per_byte * msg_bytes) + (
            net.alpha_s * np.log2(np.maximum(procs, 2.0))
        )
        t_bj = _BJ_ITERATIONS * (compute_per_proc + bj_comm_per_iter)

        t = np.where(bj, t_bj, t_sweep)
        # Single process: both methods degenerate to one serial sweep.
        t = np.where(procs <= 1.0, serial_compute_s, t)
        return t * _TIME_SCALE
