"""The two parallel applications of the paper's evaluation.

* :mod:`repro.apps.kripke` — the LLNL discrete-ordinates transport proxy;
  tunables are the data layout, group/direction set blocking, the parallel
  sweep method and the process count (Table II).
* :mod:`repro.apps.hypre` — the hypre ``new_ij`` driver solving a 27-point
  3-D Laplacian; tunables are the solver id, AMG coarsening, smoother type
  and process count (Table III).

Both run on Platform B's machine model (E5-2680 v4 nodes, 100 Gbps OPA) via
first-order performance models; see DESIGN.md for the substitution argument.
"""

from repro.apps.kripke import KripkeBenchmark
from repro.apps.hypre import HypreBenchmark
from repro.workloads.registry import register_benchmark

__all__ = ["KripkeBenchmark", "HypreBenchmark"]

register_benchmark("kripke", KripkeBenchmark)
register_benchmark("hypre", HypreBenchmark)
