"""Performance model of hypre's ``new_ij`` driver (Table III parameters).

The paper solves a 27-point 3-D Laplacian with hypre's ``new_ij`` test
driver, tuning the solver id, the AMG coarsening (PMIS/HMIS), the smoother
(``smtype``) and the process count.  Our model decomposes runtime the way an
AMG practitioner would:

    time = setup(coarsening, n/P, network)
         + iterations(solver, smoother, coarsening) × cycle_cost(smoother, n/P, network)

* Each solver id has a characteristic convergence factor ρ and
  per-iteration cost (Krylov wrapping, AMG-preconditioned or not),
  assigned from a table of solver families.
* Smoothers multiply ρ (strong smoothers converge in fewer sweeps but cost
  more per cycle); *incompatible* solver/smoother pairs (non-symmetric
  smoother inside CG) diverge and hit the iteration cap — the heavy right
  tail real hypre tuning exhibits.
* HMIS coarsening yields slightly better ρ but a costlier setup than PMIS.
* Strong scaling saturates: per-cycle surface exchange and the coarse-level
  serial bottleneck grow with ``log2 P`` on the α-β network.

All magnitudes are representative of n = 128³ unknowns on Platform B.
"""

from __future__ import annotations

import numpy as np

from repro.machine import PLATFORM_B, MachineModel
from repro.noise import APP_PROTOCOL, MeasurementProtocol
from repro.rng import derive
from repro.space import CategoricalParameter, OrdinalParameter, ParameterSpace
from repro.workloads.base import Benchmark

__all__ = ["HypreBenchmark", "SOLVER_IDS", "COARSENINGS", "SMOOTHER_TYPES"]

#: Table III solver ids: 0-15, 18, 20, 43-45, 50-51, 60-61.
SOLVER_IDS = tuple(list(range(16)) + [18, 20, 43, 44, 45, 50, 51, 60, 61])
COARSENINGS = ("pmis", "hmis")
SMOOTHER_TYPES = tuple(range(9))
PROCESS_VALUES = (8, 16, 32, 64, 128, 256, 512)

#: Unknowns: 128^3 grid, 27-point stencil.
N_UNKNOWNS = float(128**3)
STENCIL_POINTS = 27.0
TOLERANCE = 1e-8
MAX_ITERATIONS = 500.0
#: Global scale: the paper's hypre solves take seconds to minutes per sample.
_TIME_SCALE = 20.0

# Solver families: (family, base convergence factor, per-iteration cost
# multiplier, requires a symmetric smoother?).  Families follow hypre's
# new_ij numbering: low ids are AMG/AMG-PCG variants, 18/20 are bare Krylov,
# 43-45 hybrid, 50s GMRES flavours, 60s BiCGSTAB flavours.
_SOLVER_TABLE: dict[int, tuple[str, float, float, bool]] = {
    0: ("amg", 0.28, 1.00, False),
    1: ("amg", 0.32, 0.95, False),
    2: ("amg", 0.40, 0.85, False),
    3: ("amg-pcg", 0.20, 1.15, True),
    4: ("amg-pcg", 0.24, 1.10, True),
    5: ("amg-pcg", 0.22, 1.20, True),
    6: ("amg-gmres", 0.26, 1.30, False),
    7: ("amg-gmres", 0.30, 1.25, False),
    8: ("amg-bicgstab", 0.27, 1.40, False),
    9: ("amg-bicgstab", 0.31, 1.35, False),
    10: ("amg-pcg", 0.21, 1.12, True),
    11: ("amg-gmres", 0.33, 1.22, False),
    12: ("amg", 0.45, 0.80, False),
    13: ("amg-pcg", 0.25, 1.18, True),
    14: ("amg-gmres", 0.35, 1.28, False),
    15: ("amg", 0.38, 0.90, False),
    18: ("krylov", 0.88, 0.45, True),  # bare CG: slow on Laplacian
    20: ("krylov", 0.90, 0.55, False),  # bare GMRES
    43: ("hybrid", 0.50, 0.75, False),
    44: ("hybrid", 0.55, 0.70, False),
    45: ("hybrid", 0.60, 0.65, False),
    50: ("gmres-ilu", 0.70, 0.85, False),
    51: ("gmres-ilu", 0.74, 0.80, False),
    60: ("bicgstab-ilu", 0.72, 0.95, False),
    61: ("bicgstab-ilu", 0.76, 0.90, False),
}

# Smoothers: (convergence multiplier on (1-ρ), cost multiplier, symmetric?).
# smtype 6 (symmetric hybrid Gauss-Seidel) is hypre's strong default.
_SMOOTHER_TABLE: dict[int, tuple[float, float, bool]] = {
    0: (0.80, 0.90, False),  # Jacobi: cheap, weak
    1: (1.00, 1.00, False),  # sequential GS
    2: (0.95, 1.00, False),
    3: (1.05, 1.05, False),  # hybrid forward GS
    4: (1.05, 1.05, False),  # hybrid backward GS
    5: (1.10, 1.15, False),  # chaotic GS
    6: (1.25, 1.20, True),  # symmetric hybrid GS: strong
    7: (0.90, 1.30, True),  # Jacobi w/ matvec: symmetric but costly
    8: (1.30, 1.45, True),  # l1-symmetric GS: strongest, dearest
}


class HypreBenchmark(Benchmark):
    """hypre/new_ij on Platform B.  Parameter order: solver, coarsening, smtype, #process."""

    name = "hypre"

    def __init__(
        self,
        machine: MachineModel = PLATFORM_B,
        protocol: MeasurementProtocol = APP_PROTOCOL,
    ) -> None:
        if machine.network is None:
            raise ValueError("hypre needs a machine model with a network")
        space = ParameterSpace(
            [
                CategoricalParameter("solver", SOLVER_IDS),
                CategoricalParameter("coarsening", COARSENINGS),
                CategoricalParameter("smtype", SMOOTHER_TYPES),
                OrdinalParameter("#process", PROCESS_VALUES),
            ]
        )
        super().__init__(space, protocol)
        self.machine = machine
        self._build_tables()
        # Hoisted out of the batched hot loop (true_times_encoded runs
        # over pool-sized matrices under the evaluate_batch contract):
        # both are constants of the machine/problem, and reusing the same
        # float keeps batched evaluation bit-identical to the old per-call
        # recomputation.
        self._eff_rate = machine.frequency_hz * machine.flops_per_cycle * 0.5
        self._levels = np.log2(np.maximum(N_UNKNOWNS, 2.0)) / 3.0  # ~7 levels

    def _build_tables(self) -> None:
        """Precompute per-solver-id vectors (with deterministic jitter)."""
        rng = derive(0xA11CE, "hypre-tables")
        rho, cost, needs_sym = [], [], []
        for sid in SOLVER_IDS:
            family, r, c, sym = _SOLVER_TABLE[sid]
            # Small deterministic per-id jitter so ids within a family differ.
            r = float(np.clip(r * (1.0 + 0.08 * rng.standard_normal()), 0.05, 0.97))
            c = float(c * (1.0 + 0.05 * rng.standard_normal()))
            rho.append(r)
            cost.append(c)
            needs_sym.append(sym)
        self._rho = np.asarray(rho)
        self._iter_cost = np.asarray(cost)
        self._needs_sym = np.asarray(needs_sym, dtype=bool)
        self._smoother_strength = np.asarray(
            [_SMOOTHER_TABLE[s][0] for s in SMOOTHER_TYPES]
        )
        self._smoother_cost = np.asarray(
            [_SMOOTHER_TABLE[s][1] for s in SMOOTHER_TYPES]
        )
        self._smoother_sym = np.asarray(
            [_SMOOTHER_TABLE[s][2] for s in SMOOTHER_TYPES], dtype=bool
        )

    def true_times_encoded(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        solver_idx = np.round(X[:, 0]).astype(np.intp)
        hmis = np.round(X[:, 1]).astype(np.intp) == 1  # COARSENINGS index 1
        smtype = np.round(X[:, 2]).astype(np.intp)
        procs = X[:, 3]

        rho = self._rho[solver_idx]
        iter_cost = self._iter_cost[solver_idx]
        needs_sym = self._needs_sym[solver_idx]
        strength = self._smoother_strength[smtype]
        sm_cost = self._smoother_cost[smtype]
        sm_sym = self._smoother_sym[smtype]

        # --- convergence -------------------------------------------------
        # A stronger smoother widens the per-cycle error reduction (1-ρ).
        reduction = np.clip((1.0 - rho) * strength, 1e-3, 0.999)
        # HMIS builds a slightly better hierarchy.
        reduction = np.where(hmis, np.minimum(reduction * 1.06, 0.999), reduction)
        rho_eff = 1.0 - reduction
        iters = np.ceil(np.log(TOLERANCE) / np.log(rho_eff))
        # Incompatible pairs diverge: CG-family solvers with a non-symmetric
        # smoother stall at the iteration cap.
        diverged = needs_sym & ~sm_sym
        iters = np.where(diverged, MAX_ITERATIONS, np.minimum(iters, MAX_ITERATIONS))

        # --- per-cycle cost ------------------------------------------------
        net = self.machine.network
        local_n = N_UNKNOWNS / procs
        # V-cycle visits ~2x the fine grid; smoother dominates the work.
        flops_per_cycle_local = 2.0 * local_n * STENCIL_POINTS * 4.0 * sm_cost
        eff_rate = self._eff_rate
        compute_s = flops_per_cycle_local * iter_cost / eff_rate

        levels = self._levels
        surface = np.maximum(local_n ** (2.0 / 3.0), 1.0)
        msg_bytes = surface * 8.0 * 3.0
        logp = np.log2(np.maximum(procs, 2.0))
        # Coarse levels keep full message latency while their work vanishes,
        # and their stencils densify — neighbour counts grow with the
        # process count.  This is what kills AMG strong scaling in practice.
        msgs_per_cycle = levels * 6.0 * (1.0 + logp)
        cycle_comm = (
            msgs_per_cycle * net.alpha_s
            + levels * net.beta_s_per_byte * msg_bytes
            + 2.0 * net.alpha_s * logp  # Krylov dot-product allreduces
        )
        per_cycle_s = compute_s + cycle_comm

        # --- setup -----------------------------------------------------------
        setup_flops = N_UNKNOWNS / procs * STENCIL_POINTS * 30.0
        setup_s = setup_flops / eff_rate
        setup_s = np.where(hmis, setup_s * 1.35, setup_s)
        setup_s = setup_s + levels * net.alpha_s * np.log2(np.maximum(procs, 2.0)) * 8.0
        # Bare Krylov solvers skip hierarchy setup.
        bare = rho > 0.85
        setup_s = np.where(bare, setup_s * 0.05, setup_s)

        return (setup_s + iters * per_cycle_s) * _TIME_SCALE
