"""Shared-memory transport for prepared benchmark data.

Before dispatching a batch, the parent prepares each unique
(benchmark, scale, seed) split once — the pool matrix, the test matrix,
and the pre-measured test labels — and publishes the three arrays into
``multiprocessing.shared_memory`` segments.  Workers rebuild the prepared
tuple by attaching to the segments instead of re-running the split and
re-measuring ``y_test`` per process; because the published bytes *are*
the parent's arrays, the rebuilt tuple is bit-identical to what the
worker would have computed itself.

Lifecycle contract (enforced by the ``SHM001`` lint rule):

* **Segments are owned by the parent.**  :class:`SegmentRegistry` holds
  every ``SharedMemory`` it creates and the engine unlinks them all on
  its ``finally`` path (:func:`SegmentRegistry.unlink_all`, idempotent).
  A publish that fails midway cleans up its own segment in a ``finally``
  block before re-raising.
* **Workers attach, copy, and close immediately.**  The prepared arrays
  are small (megabytes); copying on attach frees us from reasoning about
  segment lifetime inside :class:`~repro.space.DataPool` and keeps the
  worker correct even if the parent unlinks early.  The copied tuple
  lands in the executor's per-process prepared cache, so each worker
  pays one copy per (benchmark, scale, seed), not one per trial.

The worker-side manifest (segment names, shapes, dtypes) is installed by
the pool initializer; :func:`lookup` returns the entry for a prepared key
or ``None`` when the data must be computed locally (serial path, spawn
without a manifest, or a publish that was skipped because preparation
failed in the parent — the failure then surfaces per-trial, exactly as it
did before shared memory existed).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro import telemetry

__all__ = [
    "SegmentRegistry",
    "install_manifest",
    "lookup",
    "attach_entry",
]

#: Worker-side manifest: prepared key -> {field: (segment, shape, dtype)}.
#: Installed once per process by the pool initializer; empty in the parent
#: and on the serial path.
_MANIFEST: "dict[tuple, dict[str, tuple[str, tuple, str]]]" = {}


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without registering it for cleanup.

    On Python < 3.13 (no ``track=False``) attaching registers the segment
    with the resource tracker, which would unlink it (and warn) at
    interpreter exit even though the parent owns the name — and under a
    forking pool, where every worker shares the parent's tracker process,
    the duplicate registrations collapse into one set entry and any
    attempt to unregister them back floods the tracker with unbalanced
    messages.  Suppressing registration for the duration of the attach
    restores the contract that only the creating process owns the name.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    # repro: allow[EXC001] best-effort workaround for the stdlib tracker double-unlink; failure only risks a shutdown warning
    except (ImportError, AttributeError):
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _publish_array(arr: np.ndarray) -> "tuple[shared_memory.SharedMemory, tuple]":
    """Copy one array into a fresh segment; returns ``(segment, meta)``.

    The caller (the registry) owns the returned segment.  If the copy
    fails the segment is closed *and unlinked* here so a half-published
    batch cannot leak shared memory.
    """
    arr = np.ascontiguousarray(arr)
    if arr.dtype.hasobject:
        # An object array's buffer holds pointers that mean nothing in
        # another process; publishing one would be silent corruption.
        raise ValueError(
            f"cannot publish object-dtype array (dtype {arr.dtype}) to "
            "shared memory"
        )
    segment = None
    published = False
    try:
        segment = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
        view[...] = arr
        published = True
        return segment, (segment.name, arr.shape, str(arr.dtype))
    finally:
        if segment is not None and not published:
            segment.close()
            segment.unlink()


class SegmentRegistry:
    """Parent-side owner of every segment published for one engine run."""

    def __init__(self) -> None:
        self._segments: "list[shared_memory.SharedMemory]" = []
        self._manifest: "dict[tuple, dict[str, tuple[str, tuple, str]]]" = {}

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def manifest(self) -> "dict[tuple, dict[str, tuple[str, tuple, str]]]":
        """Picklable {prepared key -> {field -> (name, shape, dtype)}}."""
        return dict(self._manifest)

    def publish(self, key: tuple, arrays: "dict[str, np.ndarray]") -> None:
        """Publish one prepared entry's arrays under ``key``."""
        metas: "dict[str, tuple[str, tuple, str]]" = {}
        for field, arr in arrays.items():
            segment, meta = _publish_array(arr)
            self._segments.append(segment)
            metas[field] = meta
        self._manifest[key] = metas
        telemetry.inc("engine.shm.segments", len(arrays))

    def unlink_all(self) -> None:
        """Close and unlink every published segment (idempotent).

        Runs on the engine's ``finally`` path; a segment that is already
        gone (double close, external cleanup) is not an error.
        """
        segments, self._segments = self._segments, []
        self._manifest.clear()
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            # repro: allow[EXC001] idempotent teardown: an already-removed segment is the desired end state
            except (FileNotFoundError, OSError):
                pass


def install_manifest(
    manifest: "dict[tuple, dict[str, tuple[str, tuple, str]]] | None",
) -> None:
    """Replace this process's manifest (pool-worker initializer hook)."""
    _MANIFEST.clear()
    if manifest:
        _MANIFEST.update(manifest)


def lookup(key: tuple) -> "dict[str, tuple[str, tuple, str]] | None":
    """The manifest entry for a prepared key, or ``None`` to compute locally."""
    return _MANIFEST.get(key)


def _attach_array(meta: "tuple[str, tuple, str]") -> np.ndarray:
    """Attach one segment, copy its array out, and close immediately."""
    name, shape, dtype = meta
    segment = _attach_untracked(name)
    try:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        return view.copy()
    finally:
        segment.close()


def attach_entry(
    metas: "dict[str, tuple[str, tuple, str]]",
) -> "dict[str, np.ndarray]":
    """Materialise a published entry as plain process-local arrays.

    The caller caches the result (the executor's per-process prepared
    cache), so each worker attaches each entry at most once.
    """
    arrays = {field: _attach_array(meta) for field, meta in metas.items()}
    telemetry.inc("engine.shm.attaches")
    return arrays
