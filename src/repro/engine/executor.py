"""The trial scheduler: fan jobs out, reuse cached traces, survive faults.

:func:`run_jobs` is the engine's single entry point.  It deduplicates the
requested :class:`~repro.engine.jobs.TrialJob` list by content key, satisfies
whatever it can from the :class:`~repro.engine.store.ResultStore`, and
executes the remainder — serially for ``jobs=1``, otherwise over a
``ProcessPoolExecutor``.  Because every trial's randomness is derived from
its job key (see :mod:`repro.engine.jobs`), the traces are bit-identical
regardless of worker count, scheduling order, retries, or whether a trial
was executed now or loaded from a previous run.

Fault tolerance (the production posture — worker crashes, hung
evaluations, and flaky jobs are routine at campaign scale):

* **Per-attempt timeouts.**  When ``EngineConfig.job_timeout`` is set,
  each attempt runs under a ``SIGALRM`` wall-clock limit in the process
  that executes it (worker or serial).  A timed-out attempt is a
  retryable failure, not a wedged campaign.  (Platforms without
  ``SIGALRM`` run without the limit.)
* **Retries with exponential backoff.**  Failed attempts (job exception,
  timeout, or a crash-lost worker) are retried up to
  ``EngineConfig.max_retries`` times.  The backoff for attempt *k* is
  ``retry_backoff * 2**(k-1)`` scaled by a deterministic jitter in
  ``[0.5, 1.5)`` derived from the job key — reproducible, but decorrelated
  across jobs.  A job that exhausts its retries is recorded as a failed
  :class:`~repro.engine.jobs.TrialResult`; the rest of the batch is
  unaffected.
* **Pool-death recovery.**  A worker dying hard (segfault, OOM kill, the
  ``crash`` chaos fault) breaks the whole ``ProcessPoolExecutor``.  The
  scheduler salvages every result that completed before the death,
  counts one attempt against each in-flight job, rebuilds the pool, and
  resubmits.  After :data:`_POOL_RESTART_LIMIT` rebuilds it degrades to
  the serial path instead of thrashing.

Worker-side, :func:`execute_job` memoises the per-benchmark data
preparation (pool/test split and the pre-labeled ``y_test``) in a small
per-process cache, so the split — which the paper's protocol shares across
all strategies and trials of a benchmark — is paid once per process rather
than once per trial.

The batched hot path (see DESIGN.md §2h): instead of one pool future per
trial, the parallel scheduler dispatches *chunks* of trials per future
(``EngineConfig.batch_size``; 0 sizes chunks from the queue depth, 1
restores per-trial futures), amortising pickling and executor scheduling
overhead.  Inside a chunk every trial is still guarded individually —
per-attempt timeout, fault injection, and error capture are per-trial —
and failures travel back as data, so retries and fault tolerance are
exactly the per-future semantics.  Before dispatch the parent prepares
each unique (benchmark, scale, seed) split once and publishes the arrays
into shared memory (:mod:`repro.engine.shm`); workers attach instead of
recomputing, and the parent unlinks every segment on the engine's
``finally`` path.  Because all randomness is key-derived, chunking and
shared-memory transport change *nothing* about the results: histories are
bit-identical at any ``--jobs N`` and any batch size.

The pool prefers the ``fork`` start method (cheap, inherits the prepared
caches' code pages) and falls back to ``spawn`` where fork is unavailable;
if process pools cannot be created at all (restricted sandboxes), execution
degrades gracefully to the serial path with identical results.
"""

from __future__ import annotations

import hashlib
import signal
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError

import multiprocessing

from repro import telemetry
from repro.active import LearningHistory
from repro.engine import faults as faults_mod
from repro.engine import shm as shm_mod
from repro.engine.context import EngineConfig, current_engine
from repro.engine.jobs import TrialJob, TrialResult
from repro.engine.progress import EngineStats, ProgressReporter
from repro.engine.store import ResultStore
from repro.telemetry.sink import run_id_for_keys

__all__ = [
    "run_jobs",
    "execute_job",
    "JobTimeout",
    "backoff_seconds",
    "chunk_size",
]

#: Per-process cache of prepared (benchmark, pool, X_test, y_test) tuples.
#: Small and LRU-bounded: entries hold the pool matrix and measured test
#: labels, which is exactly the state worth amortising across trials.
_PREPARED: "OrderedDict[tuple, tuple]" = OrderedDict()
_PREPARED_MAX = 4

#: Ceiling on any single retry backoff sleep, seconds.
_RETRY_BACKOFF_CAP = 30.0

#: Pool rebuilds tolerated per batch before degrading to serial execution.
_POOL_RESTART_LIMIT = 2

#: Ceiling on the automatic dispatch chunk size.  Large chunks amortise
#: more overhead but coarsen the unit a pool death loses; 16 trials is
#: past the knee of the pickling-overhead curve (see BENCH_engine.json).
_BATCH_CAP = 16

#: Per-process cache of parsed fault plans, keyed by spec string.
_PLANS: "dict[str | None, faults_mod.FaultPlan]" = {}


class JobTimeout(TimeoutError):
    """An attempt exceeded ``EngineConfig.job_timeout`` wall-clock seconds."""


def _prepared(benchmark_name: str, scale, seed: int) -> tuple:
    """Benchmark object plus pool/test split, memoised per process.

    The derivation mirrors the historical runner exactly
    (``derive(seed, "data", benchmark)`` feeding ``prepare_data``), so the
    split for a given (benchmark, scale, seed) is identical in every
    process and to what the serial code produced.  Pool workers holding a
    shared-memory manifest (see :mod:`repro.engine.shm`) rebuild the entry
    from the parent's published arrays instead — one attach-and-copy per
    process rather than a full re-preparation (which re-measures the whole
    ``y_test`` set) — with bit-identical contents either way.
    """
    from repro.experiments.runner import prepare_data
    from repro.rng import derive
    from repro.space import DataPool
    from repro.workloads import get_benchmark

    key = (benchmark_name, scale, int(seed))
    entry = _PREPARED.get(key)
    if entry is None:
        published = shm_mod.lookup(key)
        if published is not None:
            with telemetry.span("engine.attach", benchmark=benchmark_name):
                arrays = shm_mod.attach_entry(published)
                entry = (
                    get_benchmark(benchmark_name),
                    DataPool(arrays["pool_X"]),
                    arrays["X_test"],
                    arrays["y_test"],
                )
        else:
            with telemetry.span("engine.prepare", benchmark=benchmark_name):
                benchmark = get_benchmark(benchmark_name)
                data_rng = derive(seed, "data", benchmark_name)
                pool, X_test, y_test = prepare_data(benchmark, scale, data_rng)
            entry = (benchmark, pool, X_test, y_test)
        telemetry.inc("engine.prepared_benchmarks")
        # repro: allow[SPAWN001] per-process memo: pool workers are processes, not threads; no cross-process sharing
        _PREPARED[key] = entry
        while len(_PREPARED) > _PREPARED_MAX:
            # repro: allow[SPAWN001] per-process memo eviction, same as above
            _PREPARED.popitem(last=False)
    else:
        # repro: allow[SPAWN001] per-process memo LRU touch, same as above
        _PREPARED.move_to_end(key)
    return entry


def execute_job(job: TrialJob) -> LearningHistory:  # repro: worker-entry
    """Run one trial job to completion in the current process."""
    from repro.experiments.runner import run_single

    benchmark, pool, X_test, y_test = _prepared(
        job.benchmark, job.scale, job.seed
    )
    return run_single(
        benchmark,
        job.build_strategy(),
        job.scale,
        pool,
        X_test,
        y_test,
        job.rng(),
        alpha=job.alpha,
        alphas=job.alphas,
        config_overrides=job.overrides_dict(),
    )


def _traced_execute(
    key: str, job: TrialJob, submit_ts: float, attempt: int = 0
) -> LearningHistory:
    """Run one job under its ``engine.job`` span (queue wait annotated)."""
    with telemetry.span(
        "engine.job",
        key=key[:12],
        job=job.describe(),
        # repro: allow[DET002] queue-wait is a telemetry attribute; never enters results
        queue_wait=time.time() - submit_ts,
        attempt=attempt,
    ):
        return execute_job(job)


def _plan(spec: "str | None") -> faults_mod.FaultPlan:
    """Parsed fault plan for ``spec``, memoised per process."""
    plan = _PLANS.get(spec)
    if plan is None:
        plan = faults_mod.plan_from_spec(spec)
        # repro: allow[SPAWN001] per-process memo of a parse result; workers are processes, not threads
        _PLANS[spec] = plan
    return plan


def _with_timeout(fn, seconds: "float | None"):
    """Run ``fn()`` under a ``SIGALRM`` wall-clock limit when possible.

    Timeouts need a real asynchronous interrupt to unstick a hung job, so
    they only engage where ``SIGALRM`` exists and we are on the main
    thread (always true for pool workers and the CLI's serial path).
    Elsewhere ``fn`` runs unlimited rather than pretending.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return fn()

    def _on_alarm(signum, frame):
        raise JobTimeout(f"attempt exceeded {seconds}s wall-clock limit")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def backoff_seconds(key: str, attempt: int, base: float) -> float:
    """Deterministic exponential backoff with per-job jitter.

    ``attempt`` is 1-based (the attempt about to run).  The jitter factor
    in ``[0.5, 1.5)`` is derived from (key, attempt), so chaos runs are
    reproducible while concurrent retries stay decorrelated.
    """
    if base <= 0 or attempt <= 0:
        return 0.0
    digest = hashlib.sha256(f"backoff:{attempt}:{key}".encode()).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
    return min(base * (2 ** (attempt - 1)) * jitter, _RETRY_BACKOFF_CAP)


def _attempt(
    key: str,
    job: TrialJob,
    submit_ts: float,
    attempt: int,
    plan: faults_mod.FaultPlan,
    timeout: "float | None",
) -> "tuple[str, object]":
    """One guarded execution attempt in the current process.

    Returns ``("ok", history)``, ``("timeout", message)``, or
    ``("error", message)``.  Interrupts (``KeyboardInterrupt``,
    ``SystemExit``) propagate — they end the run, not the job.
    """

    def run() -> LearningHistory:
        if plan:
            plan.apply(key, attempt)
        return _traced_execute(key, job, submit_ts, attempt)

    try:
        return "ok", _with_timeout(run, timeout)
    except JobTimeout as exc:
        telemetry.inc("engine.jobs.timeouts")
        return "timeout", str(exc)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return "error", f"{type(exc).__name__}: {exc}"


def _execute_keyed(  # repro: worker-entry
    item: "tuple[str, TrialJob, float, int, float | None, str | None]",
) -> "tuple[str, str, object, list, dict]":
    """Pool-friendly wrapper: runs one guarded attempt in a worker process.

    Besides the outcome it ships the worker's telemetry for this attempt
    back through the result channel — the span events drained from the
    local ring buffer (empty when tracing is off) and the counter deltas —
    so the parent can merge them and ``--jobs N`` traces stay complete.
    Job failures travel as data (``outcome != "ok"``), never as raised
    exceptions: an exception escaping here would be indistinguishable from
    pool infrastructure trouble on the parent side.
    """
    key, job, submit_ts, attempt, timeout, faults_spec = item
    outcome, payload = _attempt(
        key, job, submit_ts, attempt, _plan(faults_spec), timeout
    )
    return key, outcome, payload, telemetry.drain_events(), telemetry.drain()


def chunk_size(batch_size: int, queued: int, n_workers: int) -> int:
    """Trials to pack into the next worker future.

    A pinned ``batch_size`` wins.  The automatic policy (``batch_size=0``)
    aims for about four chunks per worker — large enough to amortise
    pickling and scheduling, small enough that a crashed worker loses a
    sliver of the campaign and stragglers still balance — recomputed per
    chunk so dispatch self-tapers as the queue drains (guided
    scheduling), capped at :data:`_BATCH_CAP`.
    """
    if batch_size:
        return batch_size
    if queued <= n_workers:
        return 1
    return max(1, min(_BATCH_CAP, -(-queued // (n_workers * 4))))


def _execute_chunk(  # repro: worker-entry
    chunk: "list[tuple[str, TrialJob, float, int, float | None, str | None]]",
) -> "tuple[list[tuple[str, str, object]], list, dict]":
    """Run a chunk of trial attempts sequentially in one worker process.

    Each trial keeps the full per-attempt guard rail — its own ``SIGALRM``
    timeout, its own fault-plan rolls, its own error capture — so a
    timeout or error on one trial never contaminates its chunk-mates; only
    a hard crash (which kills the process) loses the chunk's unfinished
    remainder, and the parent requeues those bit-identically.  Telemetry
    is drained once per chunk rather than once per trial — the merged
    stream the parent absorbs is the same either way.
    """
    outcomes = []
    for key, job, submit_ts, attempt, timeout, faults_spec in chunk:
        outcome, payload = _attempt(
            key, job, submit_ts, attempt, _plan(faults_spec), timeout
        )
        outcomes.append((key, outcome, payload))
    return outcomes, telemetry.drain_events(), telemetry.drain()


def _worker_init(trace_on: bool, manifest=None) -> None:  # repro: worker-entry
    """Reset fork-inherited state in a fresh pool worker.

    A forked worker inherits the parent's ring buffer and counters; left
    alone they would be drained and re-absorbed by the parent, double
    counting everything recorded before the pool started.  The prepared
    cache is cleared too: workers rebuild entries from the shared-memory
    ``manifest`` (one attach per process) so behaviour is identical under
    fork and spawn instead of silently depending on copy-on-write
    inheritance.  Also marks the process as an expendable pool worker so
    the ``crash`` chaos fault dies hard (``os._exit``) instead of raising.
    """
    telemetry.clear()
    telemetry.reset()
    if trace_on:
        telemetry.enable()
    else:
        telemetry.disable()
    # repro: allow[SPAWN001] pool-initializer reset of the per-process prepared cache, before any job runs in this process
    _PREPARED.clear()
    shm_mod.install_manifest(manifest)
    faults_mod.IN_POOL_WORKER = True


def _mp_context():
    """Prefer fork (fast, no re-import) but run anywhere spawn exists."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _record_success(
    key: str,
    job: TrialJob,
    attempt: int,
    history: LearningHistory,
    results: "dict[str, TrialResult]",
    store: "ResultStore | None",
    reporter: ProgressReporter,
) -> None:
    """Commit one completed trace: results dict, store, progress — in order.

    The store write happens before the progress event so a crash between
    the two can only under-report completed work, never lose it.
    """
    results[key] = TrialResult(key=key, history=history, attempts=attempt + 1)
    if store is not None:
        store.put(job, history)
    reporter.job_finished(job.describe())


def _run_serial(
    pending: "list[tuple[str, TrialJob, int]]",
    results: "dict[str, TrialResult]",
    store: "ResultStore | None",
    reporter: ProgressReporter,
    config: EngineConfig,
) -> None:
    """In-process execution with the same retry policy as the pool path."""
    plan = _plan(config.faults)
    for key, job, start_attempt in pending:
        attempt = start_attempt
        while True:
            reporter.job_started(job.describe())
            outcome, payload = _attempt(
                # repro: allow[DET002] submit timestamp feeds the queue-wait telemetry attribute only
                key, job, time.time(), attempt, plan, config.job_timeout
            )
            if outcome == "ok":
                _record_success(
                    key, job, attempt, payload, results, store, reporter
                )
                break
            if attempt < config.max_retries:
                attempt += 1
                telemetry.inc("engine.jobs.retried")
                reporter.job_retried(f"{job.describe()} ({outcome})")
                time.sleep(
                    backoff_seconds(key, attempt, config.retry_backoff)
                )
                continue
            telemetry.inc("engine.jobs.failed")
            results[key] = TrialResult(
                key=key, history=None, attempts=attempt + 1, error=str(payload)
            )
            reporter.job_failed(f"{job.describe()}: {payload}")
            break


def _run_parallel(
    pending: "list[tuple[str, TrialJob, int]]",
    results: "dict[str, TrialResult]",
    store: "ResultStore | None",
    reporter: ProgressReporter,
    n_workers: int,
    config: EngineConfig,
    manifest: "dict | None" = None,
) -> "list[tuple[str, TrialJob, int]]":
    """Execute over a process pool; returns jobs that still need running.

    Dispatch is chunked: each future carries :func:`chunk_size` trials
    (``manifest`` ships the shared-memory locations of the prepared data
    to every worker via the pool initializer).  Jobs come back for the
    caller's serial fallback when pools cannot be created at all, when
    job payloads turn out unpicklable, or when the pool has died more
    than :data:`_POOL_RESTART_LIMIT` times.  Everything else — job
    errors, timeouts, single pool deaths — is absorbed here: completed
    results are committed the moment their future resolves (and salvaged
    from a broken pool's already-done futures), in-flight trials lost to
    a pool death are charged one attempt and requeued, and the pool is
    rebuilt.  A crash mid-chunk loses only that chunk's unfinished
    trials to the requeue; trials the worker completed before dying come
    back through the salvage probe or, failing that, are recomputed
    bit-identically on retry.
    """
    todo: "deque[tuple[str, TrialJob, int]]" = deque(pending)
    deferred: "list[tuple[float, str, TrialJob, int]]" = []  # (ready_at, ...)
    restarts = 0

    def leftover() -> "list[tuple[str, TrialJob, int]]":
        reporter.running = 0
        return list(todo) + [(k, j, a) for _, k, j, a in deferred]

    def attempt_failed(key: str, job: TrialJob, attempt: int, error: str, why: str) -> None:
        """Parent-side verdict on one failed attempt: defer a retry or fail."""
        if attempt < config.max_retries:
            telemetry.inc("engine.jobs.retried")
            reporter.job_retried(f"{job.describe()} ({why})")
            delay = backoff_seconds(key, attempt + 1, config.retry_backoff)
            # repro: allow[DET002] retry-backoff scheduling clock; results are key-derived regardless of timing
            deferred.append((time.monotonic() + delay, key, job, attempt + 1))
        else:
            telemetry.inc("engine.jobs.failed")
            results[key] = TrialResult(
                key=key, history=None, attempts=attempt + 1, error=error
            )
            reporter.job_failed(f"{job.describe()}: {error}")

    def absorb_chunk(
        members: "list[tuple[str, TrialJob, int]]", chunk_payload
    ) -> None:
        """Fan a chunk future's result back to its per-trial bookkeeping."""
        outcomes, events, counter_delta = chunk_payload
        telemetry.absorb_events(events)
        telemetry.absorb(counter_delta)
        by_key = {key: (job, attempt) for key, job, attempt in members}
        for key, outcome, payload in outcomes:
            job, attempt = by_key.pop(key)
            if outcome == "ok":
                _record_success(
                    key, job, attempt, payload, results, store, reporter
                )
            else:
                attempt_failed(key, job, attempt, str(payload), outcome)
        # _execute_chunk reports every member (failures travel as data),
        # so leftovers mean a worker-side bug — charge an attempt rather
        # than silently dropping the trial.
        for key, (job, attempt) in by_key.items():
            attempt_failed(
                key, job, attempt, "missing from chunk result", "channel error"
            )

    while todo or deferred:
        try:
            pool = ProcessPoolExecutor(
                max_workers=n_workers,
                mp_context=_mp_context(),
                initializer=_worker_init,
                initargs=(telemetry.enabled(), manifest),
            )
        except (OSError, PermissionError, BrokenProcessPool, PicklingError):
            # Pools unavailable here (restricted sandbox) — run serially.
            return leftover()
        broken = False
        unpicklable = False
        futures: "dict[object, list[tuple[str, TrialJob, int]]]" = {}
        try:
            while (todo or deferred or futures) and not broken:
                # repro: allow[DET002] backoff readiness check; scheduling only, never in results
                now = time.monotonic()
                still = []
                for ready_at, key, job, attempt in deferred:
                    if ready_at <= now:
                        todo.append((key, job, attempt))
                    else:
                        still.append((ready_at, key, job, attempt))
                deferred[:] = still
                while todo:
                    size = min(
                        chunk_size(config.batch_size, len(todo), n_workers),
                        len(todo),
                    )
                    members = [todo.popleft() for _ in range(size)]
                    items = [
                        (
                            key,
                            job,
                            # repro: allow[DET002] submit timestamp feeds the queue-wait telemetry attribute only
                            time.time(),
                            attempt,
                            config.job_timeout,
                            config.faults,
                        )
                        for key, job, attempt in members
                    ]
                    try:
                        fut = pool.submit(_execute_chunk, items)
                    except (BrokenProcessPool, RuntimeError):
                        todo.extendleft(reversed(members))
                        broken = True
                        break
                    futures[fut] = members
                    reporter.batch_dispatched(len(members))
                    for key, job, attempt in members:
                        reporter.job_started(job.describe())
                if broken:
                    break
                if not futures:
                    # Everything is backing off: sleep until the earliest.
                    if deferred:
                        earliest = min(r for r, *_ in deferred)
                        # repro: allow[DET002] sleep until the earliest backoff deadline; scheduling only
                        time.sleep(max(0.0, earliest - time.monotonic()))
                    continue
                wait_timeout = None
                if deferred:
                    earliest = min(r for r, *_ in deferred)
                    # repro: allow[DET002] wait timeout from the backoff deadline; scheduling only
                    wait_timeout = max(0.0, earliest - time.monotonic())
                done, _ = wait(
                    set(futures),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for fut in done:
                    members = futures.pop(fut)
                    try:
                        chunk_payload = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        for key, job, attempt in members:
                            attempt_failed(
                                key, job, attempt,
                                "worker process died", "worker died",
                            )
                    except PicklingError:
                        todo.extendleft(reversed(members))
                        unpicklable = True
                        broken = True
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as exc:
                        # Result-channel trouble for this one future; treat
                        # as failed attempts, not pool death.
                        for key, job, attempt in members:
                            attempt_failed(
                                key, job, attempt,
                                f"{type(exc).__name__}: {exc}", "channel error",
                            )
                    else:
                        absorb_chunk(members, chunk_payload)
        except (KeyboardInterrupt, SystemExit):
            # Don't leave orphaned workers grinding after a Ctrl-C: the
            # shutdown below won't wait, so kill them explicitly.
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                proc.terminate()
            raise
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if not broken:
            return []
        if unpicklable:
            # Deterministic serialization failure: retrying through the
            # pool cannot help, so hand everything to the serial path.
            for fut, members in futures.items():
                todo.extend(members)
            return leftover()
        # The pool died.  Salvage futures that completed before the death
        # (their results are real — losing them was the old data-loss bug),
        # charge one attempt to every trial genuinely in flight, then
        # rebuild and resubmit.
        restarts += 1
        telemetry.inc("engine.pool.restarts")
        reporter.pool_restarted(restarts)
        for fut, members in list(futures.items()):
            salvaged = False
            if fut.done() and not fut.cancelled():
                try:
                    chunk_payload = fut.result()
                # repro: allow[EXC001] salvage probe on a dead pool's future; unsalvaged jobs are charged an attempt below
                except BaseException:
                    pass
                else:
                    absorb_chunk(members, chunk_payload)
                    salvaged = True
            if not salvaged:
                for key, job, attempt in members:
                    attempt_failed(
                        key, job, attempt,
                        "worker process died", "worker died",
                    )
        if restarts > _POOL_RESTART_LIMIT:
            telemetry.inc("engine.pool.degraded_serial")
            return leftover()
    return []


def _publish_prepared(
    pending: "list[tuple[str, TrialJob, int]]",
    registry: shm_mod.SegmentRegistry,
) -> None:
    """Prepare each unique (benchmark, scale, seed) once; publish to shm.

    Runs in the parent immediately before parallel dispatch.  A
    preparation or publish failure (unknown benchmark, shared memory
    unavailable) is not fatal here: the entry is simply not published, and
    the affected trials hit the same failure — or prepare locally — in
    their workers, with the per-trial retry policy, exactly as they did
    before shared memory existed.
    """
    seen: set = set()
    for _key, job, _attempt in pending:
        pkey = (job.benchmark, job.scale, int(job.seed))
        if pkey in seen:
            continue
        seen.add(pkey)
        try:
            _benchmark, pool, X_test, y_test = _prepared(*pkey)
            registry.publish(
                pkey, {"pool_X": pool.X, "X_test": X_test, "y_test": y_test}
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        # repro: allow[EXC001] publish is an optimisation; failures fall back to per-worker preparation with full retry semantics
        except BaseException:
            telemetry.inc("engine.shm.publish_skipped")


def run_jobs(
    jobs: "list[TrialJob]",
    config: "EngineConfig | None" = None,
    reporter: "ProgressReporter | None" = None,
) -> "tuple[dict[str, TrialResult], EngineStats]":
    """Execute (or load) every job; returns ``(key → TrialResult, stats)``.

    Duplicate specs in ``jobs`` are executed once.  ``config`` defaults to
    the ambient :func:`~repro.engine.context.current_engine`; ``stats``
    reports how many traces were freshly executed versus served from the
    store, plus retry/failure counts (the resume/fault-tolerance telemetry
    the CLI and tests assert on).  A job that fails permanently — its
    error, timeout, or worker crash survived ``config.max_retries``
    retries — yields a failed :class:`~repro.engine.jobs.TrialResult`
    rather than an exception, so one bad trial cannot abort a campaign.

    Completed results are committed to the store as they finish, and the
    ``finally`` path restores the progress line and sweeps temp files, so
    an interrupt (Ctrl-C) loses neither finished work nor the terminal.
    """
    config = config if config is not None else current_engine()
    unique: "OrderedDict[str, TrialJob]" = OrderedDict()
    for job in jobs:
        unique.setdefault(job.key(), job)
    store = ResultStore(config.cache_dir) if config.cache_dir else None
    own_reporter = reporter is None
    if own_reporter:
        reporter = ProgressReporter(
            total=len(unique),
            enabled=config.progress,
            force=config.progress_force,
        )

    results: "dict[str, TrialResult]" = {}
    registry: "shm_mod.SegmentRegistry | None" = None
    try:
        with telemetry.span(
            "engine.run",
            run_id=run_id_for_keys(list(unique)),
            total=len(unique),
            workers=config.jobs,
        ):
            pending: "list[tuple[str, TrialJob, int]]" = []
            for key, job in unique.items():
                cached = store.get(key) if store is not None else None
                if cached is not None:
                    results[key] = TrialResult(
                        key=key, history=cached, attempts=0, cached=True
                    )
                    reporter.job_cached(job.describe())
                else:
                    pending.append((key, job, 0))

            n_workers = min(config.jobs, len(pending))
            if pending and n_workers > 1:
                registry = shm_mod.SegmentRegistry()
                _publish_prepared(pending, registry)
                pending = _run_parallel(
                    pending, results, store, reporter, n_workers, config,
                    manifest=registry.manifest,
                )
            if pending:
                _run_serial(pending, results, store, reporter, config)
    finally:
        # Segment teardown first: workers are gone by now, and the parent
        # is the sole owner of every published name.
        if registry is not None:
            registry.unlink_all()
        if store is not None:
            store.cleanup_tmp()
        if own_reporter:
            reporter.close()

    stats = EngineStats(
        total=len(unique),
        executed=reporter.executed,
        cached=reporter.cached,
        wall_time=reporter.elapsed(),
        failed=reporter.failed,
        retried=reporter.retried,
    )
    return results, stats
