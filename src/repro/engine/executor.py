"""The trial scheduler: fan jobs out, reuse cached traces, stay bit-exact.

:func:`run_jobs` is the engine's single entry point.  It deduplicates the
requested :class:`~repro.engine.jobs.TrialJob` list by content key, satisfies
whatever it can from the :class:`~repro.engine.store.ResultStore`, and
executes the remainder — serially for ``jobs=1``, otherwise over a
``ProcessPoolExecutor``.  Because every trial's randomness is derived from
its job key (see :mod:`repro.engine.jobs`), the traces are bit-identical
regardless of worker count, scheduling order, or whether a trial was
executed now or loaded from a previous run.

Worker-side, :func:`execute_job` memoises the per-benchmark data preparation
(pool/test split and the pre-labeled ``y_test``) in a small per-process
cache, so the split — which the paper's protocol shares across all
strategies and trials of a benchmark — is paid once per process rather than
once per trial.

The pool prefers the ``fork`` start method (cheap, inherits the prepared
caches' code pages) and falls back to ``spawn`` where fork is unavailable;
if process pools cannot be created at all (restricted sandboxes), execution
degrades gracefully to the serial path with identical results.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError

import multiprocessing

from repro import telemetry
from repro.active import LearningHistory
from repro.engine.context import EngineConfig, current_engine
from repro.engine.jobs import TrialJob
from repro.engine.progress import EngineStats, ProgressReporter
from repro.engine.store import ResultStore
from repro.telemetry.sink import run_id_for_keys

__all__ = ["run_jobs", "execute_job"]

#: Per-process cache of prepared (benchmark, pool, X_test, y_test) tuples.
#: Small and LRU-bounded: entries hold the pool matrix and measured test
#: labels, which is exactly the state worth amortising across trials.
_PREPARED: "OrderedDict[tuple, tuple]" = OrderedDict()
_PREPARED_MAX = 4


def _prepared(benchmark_name: str, scale, seed: int) -> tuple:
    """Benchmark object plus pool/test split, memoised per process.

    The derivation mirrors the historical runner exactly
    (``derive(seed, "data", benchmark)`` feeding ``prepare_data``), so the
    split for a given (benchmark, scale, seed) is identical in every
    process and to what the serial code produced.
    """
    from repro.experiments.runner import prepare_data
    from repro.rng import derive
    from repro.workloads import get_benchmark

    key = (benchmark_name, scale, int(seed))
    entry = _PREPARED.get(key)
    if entry is None:
        with telemetry.span("engine.prepare", benchmark=benchmark_name):
            benchmark = get_benchmark(benchmark_name)
            data_rng = derive(seed, "data", benchmark_name)
            pool, X_test, y_test = prepare_data(benchmark, scale, data_rng)
        telemetry.inc("engine.prepared_benchmarks")
        entry = (benchmark, pool, X_test, y_test)
        _PREPARED[key] = entry
        while len(_PREPARED) > _PREPARED_MAX:
            _PREPARED.popitem(last=False)
    else:
        _PREPARED.move_to_end(key)
    return entry


def execute_job(job: TrialJob) -> LearningHistory:
    """Run one trial job to completion in the current process."""
    from repro.experiments.runner import run_single

    benchmark, pool, X_test, y_test = _prepared(
        job.benchmark, job.scale, job.seed
    )
    return run_single(
        benchmark,
        job.build_strategy(),
        job.scale,
        pool,
        X_test,
        y_test,
        job.rng(),
        alpha=job.alpha,
        alphas=job.alphas,
        config_overrides=job.overrides_dict(),
    )


def _traced_execute(key: str, job: TrialJob, submit_ts: float) -> LearningHistory:
    """Run one job under its ``engine.job`` span (queue wait annotated)."""
    with telemetry.span(
        "engine.job",
        key=key[:12],
        job=job.describe(),
        queue_wait=time.time() - submit_ts,
    ):
        return execute_job(job)


def _execute_keyed(
    item: "tuple[str, TrialJob, float]",
) -> "tuple[str, LearningHistory, list, dict]":
    """Pool-friendly wrapper: runs one job in a worker process.

    Besides the history it ships the worker's telemetry for this job back
    through the result channel — the span events drained from the local
    ring buffer (empty when tracing is off) and the counter deltas — so
    the parent can merge them and ``--jobs N`` traces stay complete.
    """
    key, job, submit_ts = item
    history = _traced_execute(key, job, submit_ts)
    return key, history, telemetry.drain_events(), telemetry.drain()


def _worker_init(trace_on: bool) -> None:
    """Reset fork-inherited telemetry state in a fresh pool worker.

    A forked worker inherits the parent's ring buffer and counters; left
    alone they would be drained and re-absorbed by the parent, double
    counting everything recorded before the pool started.
    """
    telemetry.clear()
    telemetry.reset()
    if trace_on:
        telemetry.enable()
    else:
        telemetry.disable()


def _mp_context():
    """Prefer fork (fast, no re-import) but run anywhere spawn exists."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _run_serial(
    pending: "list[tuple[str, TrialJob]]",
    results: "dict[str, LearningHistory]",
    store: "ResultStore | None",
    reporter: ProgressReporter,
) -> None:
    for key, job in pending:
        reporter.job_started(job.describe())
        history = _traced_execute(key, job, time.time())
        results[key] = history
        if store is not None:
            store.put(job, history)
        reporter.job_finished(job.describe())


def _run_parallel(
    pending: "list[tuple[str, TrialJob]]",
    results: "dict[str, LearningHistory]",
    store: "ResultStore | None",
    reporter: ProgressReporter,
    n_workers: int,
) -> "list[tuple[str, TrialJob]]":
    """Execute over a process pool; returns jobs that still need running.

    A pool that cannot be created or breaks mid-flight (sandboxed
    semaphores, OOM-killed worker) leaves the unfinished jobs to the
    caller's serial fallback instead of failing the experiment.
    """
    by_key = dict(pending)
    remaining = dict(pending)
    try:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=_mp_context(),
            initializer=_worker_init,
            initargs=(telemetry.enabled(),),
        ) as pool:
            futures = {}
            for key, job in pending:
                futures[pool.submit(_execute_keyed, (key, job, time.time()))] = key
                reporter.job_started(job.describe())
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    key, history, events, counter_delta = fut.result()
                    telemetry.absorb_events(events)
                    telemetry.absorb(counter_delta)
                    results[key] = history
                    remaining.pop(key, None)
                    if store is not None:
                        store.put(by_key[key], history)
                    reporter.job_finished(by_key[key].describe())
    except (OSError, PermissionError, BrokenProcessPool, PicklingError):
        # Pool infrastructure failed — not a job error.  Hand the
        # unfinished jobs back for serial execution.
        reporter.running = 0
        return list(remaining.items())
    return []


def run_jobs(
    jobs: "list[TrialJob]",
    config: "EngineConfig | None" = None,
    reporter: "ProgressReporter | None" = None,
) -> "tuple[dict[str, LearningHistory], EngineStats]":
    """Execute (or load) every job; returns ``(key → history, stats)``.

    Duplicate specs in ``jobs`` are executed once.  ``config`` defaults to
    the ambient :func:`~repro.engine.context.current_engine`; ``stats``
    reports how many traces were freshly executed versus served from the
    store (the resume/caching telemetry the CLI and tests assert on).
    """
    config = config if config is not None else current_engine()
    unique: "OrderedDict[str, TrialJob]" = OrderedDict()
    for job in jobs:
        unique.setdefault(job.key(), job)
    store = ResultStore(config.cache_dir) if config.cache_dir else None
    own_reporter = reporter is None
    if own_reporter:
        reporter = ProgressReporter(total=len(unique), enabled=config.progress)

    results: "dict[str, LearningHistory]" = {}
    pending: "list[tuple[str, TrialJob]]" = []
    with telemetry.span(
        "engine.run",
        run_id=run_id_for_keys(list(unique)),
        total=len(unique),
        workers=config.jobs,
    ):
        for key, job in unique.items():
            cached = store.get(key) if store is not None else None
            if cached is not None:
                results[key] = cached
                reporter.job_cached(job.describe())
            else:
                pending.append((key, job))

        n_workers = min(config.jobs, len(pending))
        if pending and n_workers > 1:
            pending = _run_parallel(pending, results, store, reporter, n_workers)
        if pending:
            _run_serial(pending, results, store, reporter)

    stats = EngineStats(
        total=len(unique),
        executed=reporter.executed,
        cached=reporter.cached,
        wall_time=reporter.elapsed(),
    )
    if own_reporter:
        reporter.close()
    return results, stats
