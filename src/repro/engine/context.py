"""Ambient engine configuration.

The experiment layer is called from many entry points (CLI subcommands, the
pytest benchmark harness, examples, library users), and threading
``--jobs``/``--cache-dir`` through every figure-driver signature would leak
scheduling concerns into the science code.  Instead, an
:class:`EngineConfig` is installed as ambient context: entry points wrap
their work in :func:`use_engine`, and :func:`~repro.experiments.runner`
picks up :func:`current_engine` automatically.  A :mod:`contextvars` var
keeps the setting task/thread-local, and the fallback reads the
``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` environment variables so the benchmark
harness scales without code changes.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from dataclasses import dataclass

__all__ = ["EngineConfig", "engine_from_env", "current_engine", "use_engine"]


@dataclass(frozen=True)
class EngineConfig:
    """How the engine schedules, persists, and fault-protects trial jobs.

    ``jobs`` is the worker-process count (1 = serial in-process execution);
    ``cache_dir`` enables the persistent result store; ``progress`` controls
    stderr telemetry.

    The fault-tolerance knobs: ``max_retries`` is how many times a failed
    (errored, timed-out, or crash-lost) job is re-attempted before it is
    recorded as a failed :class:`~repro.engine.jobs.TrialResult`;
    ``job_timeout`` is the per-attempt wall-clock limit in seconds (``None``
    disables it); ``retry_backoff`` is the base of the exponential
    backoff between attempts (the delay for attempt *k* is
    ``retry_backoff * 2**(k-1)`` scaled by a deterministic jitter in
    ``[0.5, 1.5)`` derived from the job key); ``faults`` is the chaos
    spec injected into every attempt (see :mod:`repro.engine.faults`).
    """

    jobs: int = 1
    cache_dir: "str | None" = None
    progress: bool = True
    #: Emit per-update progress lines even on a non-TTY stderr (by default
    #: non-TTY runs print only the final summary; see engine/progress.py).
    progress_force: bool = False
    max_retries: int = 2
    job_timeout: "float | None" = None
    retry_backoff: float = 0.1
    faults: "str | None" = None
    #: Trial jobs dispatched per worker future.  ``0`` (the default) sizes
    #: chunks automatically from the queue depth and worker count; ``1``
    #: restores the historical one-future-per-trial dispatch; ``N > 1``
    #: pins the chunk size.  Results are bit-identical at any setting —
    #: batching only amortises pickling and scheduling overhead (see
    #: DESIGN.md §2h).
    batch_size: int = 0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch_size < 0:
            raise ValueError(
                f"batch_size must be >= 0 (0 = auto), got {self.batch_size}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError(
                f"job_timeout must be positive or None, got {self.job_timeout}"
            )
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )


_CONTEXT: contextvars.ContextVar["EngineConfig | None"] = contextvars.ContextVar(
    "repro_engine_config", default=None
)


def engine_from_env() -> EngineConfig:
    """Engine settings from the ``REPRO_*`` environment variables.

    ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_PROGRESS`` configure
    scheduling and persistence (``REPRO_PROGRESS=0`` silences stderr
    telemetry; ``REPRO_PROGRESS=force`` emits per-update lines even when
    stderr is not a TTY); ``REPRO_MAX_RETRIES`` / ``REPRO_JOB_TIMEOUT`` /
    ``REPRO_RETRY_BACKOFF`` configure fault tolerance; ``REPRO_FAULTS``
    injects deterministic chaos faults (see :mod:`repro.engine.faults`);
    ``REPRO_BATCH_SIZE`` pins the dispatch chunk size (0 = auto,
    1 = per-trial futures).  Unset variables fall back to the dataclass
    defaults.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    progress_raw = os.environ.get("REPRO_PROGRESS", "1")
    progress = progress_raw != "0"
    progress_force = progress_raw == "force"
    max_retries = int(os.environ.get("REPRO_MAX_RETRIES", "2"))
    timeout_raw = os.environ.get("REPRO_JOB_TIMEOUT") or None
    job_timeout = float(timeout_raw) if timeout_raw else None
    retry_backoff = float(os.environ.get("REPRO_RETRY_BACKOFF", "0.1"))
    faults = os.environ.get("REPRO_FAULTS") or None
    batch_size = int(os.environ.get("REPRO_BATCH_SIZE", "0"))
    return EngineConfig(
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        progress_force=progress_force,
        max_retries=max_retries,
        job_timeout=job_timeout,
        retry_backoff=retry_backoff,
        faults=faults,
        batch_size=batch_size,
    )


def current_engine() -> EngineConfig:
    """The ambient engine config: the innermost :func:`use_engine`, else env."""
    config = _CONTEXT.get()
    return config if config is not None else engine_from_env()


@contextlib.contextmanager
def use_engine(config: EngineConfig):
    """Install ``config`` as the ambient engine for the enclosed block."""
    token = _CONTEXT.set(config)
    try:
        yield config
    finally:
        _CONTEXT.reset(token)
