"""Ambient engine configuration.

The experiment layer is called from many entry points (CLI subcommands, the
pytest benchmark harness, examples, library users), and threading
``--jobs``/``--cache-dir`` through every figure-driver signature would leak
scheduling concerns into the science code.  Instead, an
:class:`EngineConfig` is installed as ambient context: entry points wrap
their work in :func:`use_engine`, and :func:`~repro.experiments.runner`
picks up :func:`current_engine` automatically.  A :mod:`contextvars` var
keeps the setting task/thread-local, and the fallback reads the
``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` environment variables so the benchmark
harness scales without code changes.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from dataclasses import dataclass

__all__ = ["EngineConfig", "engine_from_env", "current_engine", "use_engine"]


@dataclass(frozen=True)
class EngineConfig:
    """How the engine schedules and persists trial jobs.

    ``jobs`` is the worker-process count (1 = serial in-process execution);
    ``cache_dir`` enables the persistent result store; ``progress`` controls
    stderr telemetry.
    """

    jobs: int = 1
    cache_dir: "str | None" = None
    progress: bool = True

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")


_CONTEXT: contextvars.ContextVar["EngineConfig | None"] = contextvars.ContextVar(
    "repro_engine_config", default=None
)


def engine_from_env() -> EngineConfig:
    """Engine settings from ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_PROGRESS``.

    Unset variables fall back to the serial, store-less, telemetry-on
    defaults; ``REPRO_PROGRESS=0`` silences stderr telemetry.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    progress = os.environ.get("REPRO_PROGRESS", "1") != "0"
    return EngineConfig(jobs=jobs, cache_dir=cache_dir, progress=progress)


def current_engine() -> EngineConfig:
    """The ambient engine config: the innermost :func:`use_engine`, else env."""
    config = _CONTEXT.get()
    return config if config is not None else engine_from_env()


@contextlib.contextmanager
def use_engine(config: EngineConfig):
    """Install ``config`` as the ambient engine for the enclosed block."""
    token = _CONTEXT.set(config)
    try:
        yield config
    finally:
        _CONTEXT.reset(token)
