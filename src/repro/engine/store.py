"""On-disk artifact store for completed trial traces.

Each finished :class:`~repro.engine.jobs.TrialJob` persists its
:class:`~repro.active.LearningHistory` as one JSON file named by the job's
content-address key.  Because the key covers the entire job spec (benchmark,
strategy, scale, seed, trial, α, overrides), a lookup can never return a
stale or mismatched trace; re-running any figure with the same ``--cache-dir``
skips every already-completed trial, and a killed run resumes where it
stopped — whatever finished before the kill is on disk.

Writes go through a temp-file + :func:`os.replace` rename so a crash mid-write
leaves no corrupt entry; unreadable or schema-mismatched files are treated as
cache misses rather than errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.active import LearningHistory
from repro.engine.jobs import JOB_SCHEMA_VERSION, TrialJob

__all__ = ["ResultStore", "STORE_SCHEMA_VERSION"]

#: Version of the artifact layout; mismatched files are ignored (cache miss).
STORE_SCHEMA_VERSION = 1


class ResultStore:
    """A directory of ``<job-key>.json`` trace artifacts."""

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """Artifact path for a job key."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> "LearningHistory | None":
        """Load the stored trace for ``key``; ``None`` on miss or bad file."""
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        try:
            if payload.get("store_schema") != STORE_SCHEMA_VERSION:
                return None
            if payload.get("job", {}).get("schema") != JOB_SCHEMA_VERSION:
                return None
            return LearningHistory.from_dict(payload["history"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, job: TrialJob, history: LearningHistory) -> Path:
        """Persist one completed trial atomically and return its path.

        The artifact embeds the job spec alongside the trace, so a store
        directory is self-describing (auditable without the producing code).
        """
        payload = {
            "store_schema": STORE_SCHEMA_VERSION,
            "key": job.key(),
            "job": job.spec(),
            "history": history.to_dict(),
        }
        path = self.path(job.key())
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> "list[str]":
        """Keys of every stored artifact (sorted, excludes temp files)."""
        return sorted(
            p.stem for p in self.root.glob("*.json")
            if not p.name.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        """Cheap existence probe (does not validate the artifact)."""
        return self.path(key).exists()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, {len(self)} artifacts)"
