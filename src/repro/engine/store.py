"""Crash-safe on-disk store for completed trial traces.

Each finished :class:`~repro.engine.jobs.TrialJob` persists its
:class:`~repro.active.LearningHistory` under the job's content-address key.
Because the key covers the entire job spec (benchmark, strategy, scale,
seed, trial, α, overrides), a lookup can never return a stale or mismatched
trace; re-running any figure with the same ``--cache-dir`` skips every
already-completed trial, and a killed run resumes where it stopped —
whatever committed before the kill is on disk.

Durability model (the fault-tolerant engine's contract):

* **Append-only journal.**  Results live in ``journal.jsonl`` — one JSON
  payload per line, appended with ``flush`` + ``os.fsync`` before the
  write is considered committed.  A ``kill -9`` (or power loss) mid-append
  can only truncate the *last, uncommitted* line; replay detects the torn
  tail and drops it, never losing a previously committed result.
* **fsync-before-replace compaction.**  :meth:`compact` rewrites the
  journal with one live line per key (dead lines accumulate when jobs are
  re-stored) via a temp file that is flushed and fsynced *before*
  ``os.replace``, then fsyncs the directory — so the rename is never
  visible before its contents are durable and a crash at any instant
  leaves either the old journal or the complete new one.
* **Transparent migration.**  Stores written by the previous layout (one
  ``<job-key>.json`` file per trace) are absorbed into the journal the
  first time the directory is opened; each legacy file is removed only
  after its line has been durably appended.

Unreadable or schema-mismatched entries are treated as cache misses rather
than errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.active import LearningHistory
from repro.engine.jobs import JOB_SCHEMA_VERSION, TrialJob
from repro.telemetry import counters

__all__ = [
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "JOURNAL_NAME",
    "atomic_write_text",
    "append_jsonl",
    "iter_jsonl",
    "replace_jsonl",
]

#: Version of the artifact payload; mismatched entries are ignored (cache
#: miss).  The journal stores the same payload the legacy per-key files
#: held, which is what makes migration a pure container change.
STORE_SCHEMA_VERSION = 1

#: File name of the append-only journal inside the store directory.
JOURNAL_NAME = "journal.jsonl"

#: Auto-compact at open when dead lines outnumber live ones this many
#: times over (plus a small absolute slack so tiny stores never bother).
_COMPACT_DEAD_RATIO = 2
_COMPACT_MIN_DEAD = 16


def _fsync_dir(path: Path) -> None:
    """Flush directory metadata (new/renamed files) to disk, best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover  # repro: allow[EXC001] directory fsync is best-effort durability; unsupported on some filesystems
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: "str | os.PathLike", text: str) -> None:
    """Crash-safe whole-file write: temp file, flush+fsync, ``os.replace``.

    The blessed write path for every artifact in ``src/`` that is not a
    journal append (the static lint's IO001 rule points here): a reader
    can never observe a torn file, only the old content or the new.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".txt")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover  # repro: allow[EXC001] best-effort temp cleanup; the original error re-raises
            pass
        raise
    _fsync_dir(directory)


def append_jsonl(path: "str | os.PathLike", payload: dict) -> "tuple[int, int]":
    """Durably append one JSON payload line; returns its ``(offset, length)``.

    The blessed journal-append primitive shared by the engine's
    :class:`ResultStore` and the service layer's per-session journals:
    one compact JSON document per line, committed by ``flush`` +
    ``os.fsync`` before the call returns.  A ``kill -9`` mid-append can
    only produce a torn *last* line, which :func:`iter_jsonl` detects
    and drops — a previously committed line is never lost.
    """
    target = Path(path)
    line = (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")
    created = not target.exists()
    with open(target, "ab") as fh:
        offset = fh.tell()
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())
    if created:
        _fsync_dir(target.parent if str(target.parent) else Path("."))
    return offset, len(line)


def iter_jsonl(path: "str | os.PathLike"):
    """Replay a journal written by :func:`append_jsonl`, tolerating damage.

    Yields ``(offset, length, payload_or_None)`` per line: ``None`` marks
    a corrupt (but newline-terminated) line the caller should count and
    skip.  A torn tail — the final line missing its newline, the
    signature of a mid-append kill — terminates the iteration silently:
    by the append protocol that line was never acknowledged as committed.
    A missing file yields nothing.
    """
    try:
        fh = open(Path(path), "rb")
    except OSError:
        return
    with fh:
        offset = 0
        for raw in fh:
            length = len(raw)
            line_offset = offset
            offset += length
            if not raw.endswith(b"\n"):
                counters.inc("engine.store.torn_tail_dropped")
                return
            try:
                payload = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                counters.inc("engine.store.corrupt_lines")
                payload = None
            yield line_offset, length, payload


def replace_jsonl(path: "str | os.PathLike", payloads) -> "list[tuple[int, int]]":
    """Crash-safely rewrite a journal with exactly ``payloads``, in order.

    The compaction primitive: the new journal is staged in a sibling temp
    file that is flushed and fsynced *before* ``os.replace`` publishes it,
    then the directory entry is fsynced — so a reader observes either the
    old journal or the complete new one, never a torn in-between.  Returns
    the ``(offset, length)`` locator of each written line.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".jsonl")
    locators: "list[tuple[int, int]]" = []
    try:
        with os.fdopen(fd, "wb") as fh:
            for payload in payloads:
                line = (
                    json.dumps(payload, sort_keys=True, separators=(",", ":"))
                    + "\n"
                ).encode("utf-8")
                locators.append((fh.tell(), len(line)))
                fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: allow[EXC001] best-effort temp cleanup; the original error re-raises
            pass
        raise
    _fsync_dir(directory)
    return locators


class ResultStore:
    """A journaled directory of trace artifacts, keyed by job hash."""

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / JOURNAL_NAME
        #: key → ("journal", offset, length) or ("file", Path) locator.
        self._index: "dict[str, tuple]" = {}
        self._dead_lines = 0
        self._replay()
        self._migrate_legacy()
        if (
            self._dead_lines >= _COMPACT_MIN_DEAD
            and self._dead_lines >= _COMPACT_DEAD_RATIO * max(len(self._index), 1)
        ):
            self.compact()

    # -- journal plumbing ---------------------------------------------------
    def _replay(self) -> None:
        """Rebuild the in-memory index from the journal, tolerating a torn tail.

        Later lines win (a re-stored key supersedes its old line).  Corrupt
        lines — a truncated tail from a mid-write kill, or garbage from a
        partial sector write — are skipped and counted, never fatal.
        """
        self._index.clear()
        self._dead_lines = 0
        for line_offset, length, payload in iter_jsonl(self.journal_path):
            try:
                key = (payload or {})["key"]
            except (KeyError, TypeError):
                if payload is not None:
                    # Parsable JSON without a key is corrupt for this
                    # store's schema (iter_jsonl already counted raw
                    # JSON damage as corrupt).
                    counters.inc("engine.store.corrupt_lines")
                self._dead_lines += 1
                continue
            if key in self._index:
                self._dead_lines += 1
            self._index[key] = ("journal", line_offset, length)

    def _append(self, payload: dict) -> "tuple[int, int]":
        """Durably append one payload line; returns its (offset, length).

        The line is not considered committed until ``flush`` + ``fsync``
        have returned — the invariant the torn-tail replay relies on.
        """
        return append_jsonl(self.journal_path, payload)

    def _read_at(self, offset: int, length: int) -> "dict | None":
        try:
            with open(self.journal_path, "rb") as fh:
                fh.seek(offset)
                raw = fh.read(length)
            return json.loads(raw)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def _migrate_legacy(self) -> None:
        """Absorb per-key ``<job-key>.json`` files (the pre-journal layout).

        Each readable legacy artifact is appended to the journal and then
        unlinked; unreadable ones are left in place and ignored.  Files
        whose key already has a journal entry are simply dropped — the
        journal is authoritative.
        """
        for path in sorted(self.root.glob("*.json")):
            if path.name.startswith(".tmp-"):
                continue
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                key = payload["key"]
            # repro: allow[EXC001] unreadable legacy artifact is deliberately a cache miss, per the durability model
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
            if key not in self._index:
                offset, length = self._append(payload)
                self._index[key] = ("journal", offset, length)
                counters.inc("engine.store.migrated_artifacts")
            try:
                path.unlink()
            except OSError:  # pragma: no cover  # repro: allow[EXC001] read-only store: leaving the migrated legacy file is harmless
                pass

    @staticmethod
    def _decode(payload: "dict | None") -> "LearningHistory | None":
        """Validate a payload's schema stack and decode the trace."""
        if payload is None:
            return None
        try:
            if payload.get("store_schema") != STORE_SCHEMA_VERSION:
                return None
            if payload.get("job", {}).get("schema") != JOB_SCHEMA_VERSION:
                return None
            return LearningHistory.from_dict(payload["history"])
        except (KeyError, TypeError, ValueError):
            return None

    # -- public API ---------------------------------------------------------
    def path(self, key: str) -> Path:
        """Legacy per-key artifact path (pre-journal layout)."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> "LearningHistory | None":
        """Load the stored trace for ``key``; ``None`` on miss or bad entry."""
        locator = self._index.get(key)
        if locator is None:
            return None
        if locator[0] == "journal":
            payload = self._read_at(locator[1], locator[2])
            if payload is not None and payload.get("key") != key:
                # Another process appended to the journal since we
                # indexed it; rebuild the index once and retry.
                self._replay()
                locator = self._index.get(key)
                if locator is None or locator[0] != "journal":
                    return None
                payload = self._read_at(locator[1], locator[2])
            return self._decode(payload)
        try:  # pragma: no cover - only after a failed migration
            payload = json.loads(Path(locator[1]).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return self._decode(payload)

    def put(self, job: TrialJob, history: LearningHistory) -> Path:
        """Durably persist one completed trial; returns the journal path.

        The artifact embeds the job spec alongside the trace, so a store
        is self-describing (auditable without the producing code).  The
        append is fsynced before returning — once ``put`` returns, a
        ``kill -9`` cannot lose the entry.
        """
        payload = {
            "store_schema": STORE_SCHEMA_VERSION,
            "key": job.key(),
            "job": job.spec(),
            "history": history.to_dict(),
        }
        if job.key() in self._index:
            self._dead_lines += 1
        offset, length = self._append(payload)
        self._index[job.key()] = ("journal", offset, length)
        return self.journal_path

    def compact(self) -> None:
        """Rewrite the journal with only live entries, crash-safely.

        The replacement is staged in a temp file that is flushed and
        fsynced *before* ``os.replace`` publishes it — the write-then-
        rename ordering that guarantees the visible journal is always
        complete — and the directory entry is fsynced after.
        """
        live: "list[tuple[str, dict]]" = []
        new_index: "dict[str, tuple]" = {}
        for key, locator in self._index.items():
            if locator[0] == "journal":
                payload = self._read_at(locator[1], locator[2])
                if payload is not None:
                    live.append((key, payload))
            else:
                new_index[key] = locator
        locators = replace_jsonl(
            self.journal_path, (payload for _, payload in live)
        )
        for (key, _), (offset, length) in zip(live, locators):
            new_index[key] = ("journal", offset, length)
        self._index = new_index
        self._dead_lines = 0
        counters.inc("engine.store.compactions")

    def cleanup_tmp(self) -> int:
        """Remove stray ``.tmp-*`` staging files; returns how many.

        Runs on the engine's ``finally`` path so an interrupt mid-write
        cannot leak temp files into the store directory.
        """
        removed = 0
        for path in self.root.glob(".tmp-*"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover  # repro: allow[EXC001] another run may sweep the same temp file first
                pass
        return removed

    def keys(self) -> "list[str]":
        """Keys of every stored artifact (sorted)."""
        return sorted(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        """Cheap existence probe (does not validate the artifact)."""
        return key in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r}, {len(self)} artifacts)"
