"""Trial job specifications with stable content-address keys.

A :class:`TrialJob` is the unit of work the execution engine schedules: one
Algorithm 1 run of one strategy on one benchmark at one scale, for one trial
index.  The job carries everything needed to execute the trial in *any*
process — benchmark name, strategy (name or pre-built instance), scale,
root seed, α settings and learner-config overrides — and exposes a
content-address :meth:`TrialJob.key` over that specification.

The key serves two roles:

* **cache identity** — the result store files completed traces under it, so
  a re-run (or a resumed run after a kill) recognises finished work;
* **randomness identity** — :meth:`TrialJob.rng` derives the trial's root
  generator from the key via SHA-256, so a trial's random stream depends
  only on *what* is being run, never on scheduling order or worker
  placement.  Serial and parallel execution therefore produce bit-identical
  traces.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.experiments.config import ExperimentScale
from repro.sampling import make_strategy
from repro.sampling.base import SamplingStrategy

__all__ = [
    "TrialJob",
    "TrialResult",
    "EngineJobError",
    "trial_jobs",
    "JOB_SCHEMA_VERSION",
]

#: Bumped whenever the job spec or the trial RNG derivation changes in a way
#: that invalidates previously stored results.
JOB_SCHEMA_VERSION = 1

#: Default α grid, mirroring ``repro.experiments.runner.DEFAULT_ALPHAS``
#: (duplicated here to keep this module import-light for worker processes).
_DEFAULT_ALPHAS: tuple[float, ...] = (0.01, 0.05, 0.10)


def _strategy_spec(strategy: "str | SamplingStrategy") -> str:
    """Canonical string identity of a strategy (name or instance).

    Named strategies are keyed by name (their construction is owned by
    :func:`repro.sampling.make_strategy` plus the job's ``alpha``).  Instances
    — used by the ablation drivers to sweep hyper-parameters — are keyed by
    class path plus their sorted public attributes, which is stable across
    processes (unlike ``id()``-based default reprs).
    """
    if isinstance(strategy, str):
        return f"name:{strategy}"
    cls = type(strategy)
    params = ",".join(
        f"{k}={v!r}" for k, v in sorted(vars(strategy).items())
        if not k.startswith("_")
    )
    return f"{cls.__module__}.{cls.__qualname__}({params})"


@dataclass(frozen=True)
class TrialJob:
    """Immutable spec of one active-learning trial.

    ``config_overrides`` is stored as a sorted tuple of ``(field, value)``
    pairs so the job stays hashable-by-content and its canonical form is
    order-independent.
    """

    benchmark: str
    strategy: "str | SamplingStrategy"
    scale: ExperimentScale
    seed: int
    trial: int
    alpha: float = 0.05
    alphas: tuple[float, ...] = _DEFAULT_ALPHAS
    config_overrides: tuple = ()
    #: Cached hex key (content-derived, excluded from equality).
    _key: "str | None" = field(default=None, compare=False, repr=False)

    def spec(self) -> dict:
        """JSON-serialisable canonical form of the job (what the key hashes).

        The scale's cosmetic ``name`` is excluded: a custom scale with the
        same knobs as ``smoke`` must share cache entries with it.  Floats are
        rendered with ``repr`` so the form is exact and platform-stable.
        """
        scale = {k: v for k, v in asdict(self.scale).items() if k != "name"}
        return {
            "schema": JOB_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "strategy": _strategy_spec(self.strategy),
            "scale": scale,
            "seed": int(self.seed),
            "trial": int(self.trial),
            "alpha": repr(float(self.alpha)),
            "alphas": [repr(float(a)) for a in self.alphas],
            "config_overrides": {
                str(k): repr(v) for k, v in self.config_overrides
            },
        }

    def key(self) -> str:
        """SHA-256 content address of :meth:`spec` (64 hex chars)."""
        if self._key is None:
            payload = json.dumps(
                self.spec(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            digest = hashlib.sha256(payload).hexdigest()
            object.__setattr__(self, "_key", digest)
        return self._key

    def rng(self) -> np.random.Generator:
        """The trial's root generator, derived from the job key.

        Hashing the key (rather than seeding from loop order) makes the
        stream a pure function of the job spec: any process executing this
        job — serially, in a pool worker, or in a resumed run — draws the
        identical sequence.
        """
        digest = hashlib.sha256(f"trial-rng:{self.key()}".encode()).digest()
        words = [
            int.from_bytes(digest[i: i + 8], "big") for i in range(0, 32, 8)
        ]
        return np.random.default_rng(np.random.SeedSequence(words))

    def build_strategy(self) -> SamplingStrategy:
        """Instantiate the strategy for one execution of this job.

        Instances are deep-copied so trials sharing a job template can never
        leak state through a common strategy object.
        """
        if isinstance(self.strategy, str):
            return make_strategy(self.strategy, alpha=self.alpha)
        return copy.deepcopy(self.strategy)

    def overrides_dict(self) -> "dict | None":
        """``config_overrides`` as the dict :class:`LearnerConfig` patching expects."""
        return dict(self.config_overrides) if self.config_overrides else None

    def describe(self) -> str:
        """Short human-readable label for progress displays."""
        s = self.strategy if isinstance(self.strategy, str) else type(self.strategy).__name__
        return f"{self.benchmark}/{s}#{self.trial}"


@dataclass(frozen=True)
class TrialResult:
    """Terminal outcome of one scheduled job: a trace, or a recorded failure.

    The engine returns one of these per job key instead of raising when a
    job exhausts its retries, so a single pathological trial cannot abort
    a campaign and discard its siblings' completed work.  ``history`` is
    the trace on success and ``None`` on failure; ``error`` is the
    one-line failure description (exception repr or timeout note) of the
    *last* attempt; ``attempts`` counts executions including retries
    (0 for store hits); ``cached`` marks results served from the store.
    """

    key: str
    history: "LearningHistory | None"
    attempts: int = 1
    error: "str | None" = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        """Whether the job produced a usable trace."""
        return self.history is not None

    def unwrap(self) -> "LearningHistory":
        """The trace, or :class:`EngineJobError` if the job failed."""
        if self.history is None:
            raise EngineJobError(
                f"job {self.key[:12]} failed after {self.attempts} "
                f"attempt(s): {self.error}"
            )
        return self.history


class EngineJobError(RuntimeError):
    """One or more jobs failed permanently (retries exhausted)."""

    def __init__(self, message: str, failures: "tuple[TrialResult, ...]" = ()):
        super().__init__(message)
        self.failures = failures


def trial_jobs(
    benchmark_name: str,
    strategy: "str | SamplingStrategy",
    scale: ExperimentScale,
    seed: int = 0,
    alpha: float = 0.05,
    alphas: tuple[float, ...] = _DEFAULT_ALPHAS,
    config_overrides: "dict | None" = None,
) -> "list[TrialJob]":
    """The ``scale.n_trials`` jobs of one (benchmark, strategy) experiment."""
    overrides = tuple(sorted((config_overrides or {}).items()))
    return [
        TrialJob(
            benchmark=benchmark_name,
            strategy=strategy,
            scale=scale,
            seed=seed,
            trial=trial,
            alpha=alpha,
            alphas=tuple(alphas),
            config_overrides=overrides,
        )
        for trial in range(scale.n_trials)
    ]
