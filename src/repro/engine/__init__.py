"""Parallel experiment execution engine with a persistent result store.

The paper's protocol is embarrassingly parallel — every figure averages
``n_trials`` independent active-learning runs per (benchmark, strategy) —
and this subsystem turns that structure into throughput:

* :mod:`repro.engine.jobs` — frozen :class:`TrialJob` specs with stable
  content-address keys; each trial's RNG derives from its key, so results
  are independent of scheduling order and worker placement;
* :mod:`repro.engine.executor` — :func:`run_jobs` fans jobs over a process
  pool (serial fallback for ``jobs=1`` and fork-less platforms) with
  bit-identical traces either way;
* :mod:`repro.engine.store` — :class:`ResultStore`, an on-disk JSON
  artifact store keyed by job hash: re-runs skip completed trials and a
  killed run resumes where it stopped;
* :mod:`repro.engine.progress` — job/cache-hit telemetry on stderr;
* :mod:`repro.engine.context` — ambient :class:`EngineConfig`
  (``--jobs``/``--cache-dir`` from the CLI, ``REPRO_JOBS``/
  ``REPRO_CACHE_DIR`` for the benchmark harness).

The experiment runner (:mod:`repro.experiments.runner`) routes every
trial through :func:`run_jobs`, so all CLI figures, benchmarks, and
library callers get scheduling and caching for free.
"""

from repro.engine.context import (
    EngineConfig,
    current_engine,
    engine_from_env,
    use_engine,
)
from repro.engine.executor import execute_job, run_jobs
from repro.engine.jobs import JOB_SCHEMA_VERSION, TrialJob, trial_jobs
from repro.engine.progress import EngineStats, ProgressReporter
from repro.engine.store import STORE_SCHEMA_VERSION, ResultStore

__all__ = [
    "EngineConfig",
    "EngineStats",
    "ProgressReporter",
    "ResultStore",
    "TrialJob",
    "JOB_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "current_engine",
    "engine_from_env",
    "execute_job",
    "run_jobs",
    "trial_jobs",
    "use_engine",
]
