"""Fault-tolerant parallel experiment engine with a journaled result store.

The paper's protocol is embarrassingly parallel — every figure averages
``n_trials`` independent active-learning runs per (benchmark, strategy) —
and this subsystem turns that structure into throughput that survives the
faults a production campaign actually hits (hung evaluations, flaky jobs,
worker crashes, kills mid-write):

* :mod:`repro.engine.jobs` — frozen :class:`TrialJob` specs with stable
  content-address keys; each trial's RNG derives from its key, so results
  are independent of scheduling order, worker placement, and retries.
  :class:`TrialResult` is the per-job terminal outcome: a trace, or a
  recorded failure once retries are exhausted;
* :mod:`repro.engine.executor` — :func:`run_jobs` fans jobs over a process
  pool (serial fallback for ``jobs=1`` and fork-less platforms) with
  bit-identical traces either way, batched dispatch (each future carries
  a chunk of trials; ``EngineConfig.batch_size``), per-attempt
  ``SIGALRM`` timeouts, retries with deterministic exponential backoff,
  and mid-run ``BrokenProcessPool`` recovery (salvage completed results,
  requeue in-flight trials, rebuild the pool, degrade to serial after
  repeated deaths);
* :mod:`repro.engine.shm` — shared-memory publication of the prepared
  pool/test arrays: the parent prepares each split once, workers attach
  and copy instead of recomputing, segments are unlinked on the engine's
  ``finally`` path;
* :mod:`repro.engine.store` — :class:`ResultStore`, an append-only JSONL
  journal with fsync-on-commit and fsync-before-replace compaction: a
  ``kill -9`` mid-write never loses a committed trial, re-runs skip
  completed trials, and killed runs resume where they stopped;
* :mod:`repro.engine.faults` — deterministic chaos injection
  (crash/hang/exception/slow, keyed off the job key) so fault-tolerance
  behaviour is testable and reproducible at any ``--jobs N``;
* :mod:`repro.engine.progress` — job/cache-hit/retry/failure telemetry on
  stderr, transient on TTYs and restored on the ``finally`` path;
* :mod:`repro.engine.context` — ambient :class:`EngineConfig`
  (``--jobs``/``--cache-dir``/``--max-retries``/``--job-timeout``/
  ``--batch-size`` from the CLI; ``REPRO_JOBS``/``REPRO_CACHE_DIR``/
  ``REPRO_MAX_RETRIES``/``REPRO_JOB_TIMEOUT``/``REPRO_FAULTS``/
  ``REPRO_BATCH_SIZE`` for harnesses).

The experiment runner (:mod:`repro.experiments.runner`) routes every
trial through :func:`run_jobs`, so all CLI figures, benchmarks, and
library callers get scheduling, caching, and fault tolerance for free.
"""

from repro.engine.context import (
    EngineConfig,
    current_engine,
    engine_from_env,
    use_engine,
)
from repro.engine.executor import JobTimeout, chunk_size, execute_job, run_jobs
from repro.engine.faults import FaultPlan, FaultRule, plan_from_spec
from repro.engine.jobs import (
    JOB_SCHEMA_VERSION,
    EngineJobError,
    TrialJob,
    TrialResult,
    trial_jobs,
)
from repro.engine.progress import EngineStats, ProgressReporter
from repro.engine.store import JOURNAL_NAME, STORE_SCHEMA_VERSION, ResultStore

__all__ = [
    "EngineConfig",
    "EngineJobError",
    "EngineStats",
    "FaultPlan",
    "FaultRule",
    "JobTimeout",
    "ProgressReporter",
    "ResultStore",
    "TrialJob",
    "TrialResult",
    "JOB_SCHEMA_VERSION",
    "JOURNAL_NAME",
    "STORE_SCHEMA_VERSION",
    "chunk_size",
    "current_engine",
    "engine_from_env",
    "execute_job",
    "plan_from_spec",
    "run_jobs",
    "trial_jobs",
    "use_engine",
]
