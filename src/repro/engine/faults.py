"""Deterministic fault injection for chaos-testing the engine.

A fault plan is parsed from a compact spec string (the ``REPRO_FAULTS``
environment variable or ``EngineConfig.faults``)::

    crash:0.2,hang:0.1:1:30,exc:0.5:2,slow:1.0

Each comma-separated entry is ``kind:rate[:times[:seconds]]``:

* ``kind`` — one of :data:`FAULT_KINDS`:

  - ``crash`` — the worker process dies hard (``os._exit``), breaking the
    process pool exactly like a segfaulted or OOM-killed worker.  In the
    serial path (where exiting would kill the experiment itself) it raises
    :class:`SimulatedCrash` instead, which the scheduler treats as a
    retryable failure.
  - ``hang``  — the job sleeps for ``seconds`` (default 3600), simulating a
    wedged evaluation; only a per-job timeout gets it unstuck.
  - ``exc``   — raises :class:`InjectedFault`, a transient job error.
  - ``slow``  — sleeps ``seconds`` (default 0.05) and then proceeds
    normally; perturbs scheduling without failing anything.

* ``rate`` — probability in ``[0, 1]`` that a given *job* is afflicted.
* ``times`` — how many attempts the fault fires on (default 1: only the
  first attempt fails, so a retried job succeeds).
* ``seconds`` — sleep duration for ``hang``/``slow``.

Determinism is the point: whether a fault fires for a job is a pure
function of ``(fault kind, job key, attempt)`` — a SHA-256 hash mapped to
``[0, 1)`` and compared against ``rate`` — never of wall clock, scheduling
order, or worker count.  A chaos run at ``--jobs 8`` afflicts exactly the
same jobs as at ``--jobs 1``, so the chaos suite can assert that retried
runs produce bit-identical results to fault-free runs.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from repro.telemetry import counters

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "SimulatedCrash",
    "fault_roll",
    "plan_from_spec",
]

#: Recognised fault kinds (see module docstring for semantics).
FAULT_KINDS = ("crash", "hang", "exc", "slow")

#: Default sleep durations, per kind, for the sleeping faults.
_DEFAULT_SECONDS = {"hang": 3600.0, "slow": 0.05}

#: Exit status used by the ``crash`` fault (mirrors a SIGSEGV death).
CRASH_EXIT_CODE = 139

#: Set True by the pool-worker initializer; selects ``os._exit`` crashes
#: (pool workers are expendable) over :class:`SimulatedCrash` (the serial
#: path runs in the experiment's own process).
IN_POOL_WORKER = False


class InjectedFault(RuntimeError):
    """Transient error raised by the ``exc`` fault."""


class SimulatedCrash(RuntimeError):
    """Serial-path stand-in for a worker process dying hard."""


def fault_roll(kind: str, key: str) -> float:
    """The deterministic uniform draw in ``[0, 1)`` for ``(kind, key)``."""
    digest = hashlib.sha256(f"fault:{kind}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``kind:rate[:times[:seconds]]`` entry."""

    kind: str
    rate: float
    times: int = 1
    seconds: "float | None" = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.times < 1:
            raise ValueError(f"fault times must be >= 1, got {self.times}")

    def fires(self, key: str, attempt: int) -> bool:
        """Whether this fault afflicts ``key`` on the given (0-based) attempt."""
        if attempt >= self.times:
            return False
        return fault_roll(self.kind, key) < self.rate

    @property
    def sleep_seconds(self) -> float:
        return (
            self.seconds
            if self.seconds is not None
            else _DEFAULT_SECONDS.get(self.kind, 0.0)
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules applied to every job attempt."""

    rules: "tuple[FaultRule, ...]" = ()

    def __bool__(self) -> bool:
        return bool(self.rules)

    def apply(self, key: str, attempt: int) -> None:
        """Inject whatever faults fire for ``(key, attempt)``.

        Rules are evaluated in spec order; the first *fatal* rule (crash,
        hang beyond any timeout, exc) ends the attempt.  ``slow`` sleeps
        and falls through so it can compose with the others.
        """
        for rule in self.rules:
            if not rule.fires(key, attempt):
                continue
            # repro: allow[TEL001] kind is from the literal crash/hang/exc/slow set validated at parse time; the four names are documented in counters.py
            counters.inc(f"engine.faults.{rule.kind}")
            if rule.kind == "slow":
                time.sleep(rule.sleep_seconds)
            elif rule.kind == "hang":
                time.sleep(rule.sleep_seconds)
                raise InjectedFault(
                    f"injected hang ({rule.sleep_seconds}s) elapsed"
                )
            elif rule.kind == "exc":
                raise InjectedFault(f"injected exception for job {key[:12]}")
            elif rule.kind == "crash":
                if IN_POOL_WORKER:
                    os._exit(CRASH_EXIT_CODE)
                raise SimulatedCrash(f"injected crash for job {key[:12]}")


def plan_from_spec(spec: "str | None") -> FaultPlan:
    """Parse a ``kind:rate[:times[:seconds]]`` comma list into a plan.

    ``None``/empty/whitespace specs yield the empty (no-op) plan.  Raises
    ``ValueError`` on malformed entries so a typo'd chaos knob fails fast
    instead of silently testing nothing.
    """
    if not spec or not spec.strip():
        return FaultPlan()
    rules = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(
                f"malformed fault entry {entry!r}; "
                "expected kind:rate[:times[:seconds]]"
            )
        kind = parts[0].strip()
        try:
            rate = float(parts[1])
            times = int(parts[2]) if len(parts) > 2 else 1
            seconds = float(parts[3]) if len(parts) > 3 else None
        except ValueError:
            raise ValueError(
                f"malformed fault entry {entry!r}; "
                "expected kind:rate[:times[:seconds]]"
            ) from None
        rules.append(FaultRule(kind=kind, rate=rate, times=times, seconds=seconds))
    return FaultPlan(rules=tuple(rules))
