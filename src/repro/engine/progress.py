"""Lightweight progress and telemetry for engine runs.

The reporter counts job lifecycle events (queued → running → done, plus
cache hits, retries, permanent failures, and pool restarts) and renders a
throttled one-line status to stderr::

    [engine] 12/40 done (3 cached, 4 running) | 2.1 jobs/s

It is deliberately dependency-free and cheap: a handful of integer counters
and a monotonic clock, so it can wrap the hot scheduling loop without
perturbing timings.  The final summary line always prints (even with
throttling), making cache-hit and failure counts visible in CI logs — the
acceptance signal for resume and fault-tolerance semantics.

On a TTY the status line is transient: updates redraw in place with a
carriage return and the line is erased-and-finalised by :meth:`close`,
which runs on the engine's ``finally`` path — so a Ctrl-C mid-run cannot
leave a half-drawn status line under the user's prompt.  When the stream
is *not* a TTY (CI logs, daemon stderr, pytest capture) the per-update
lines are suppressed entirely — a long-running daemon must not flood its
log with redraw spam — and only the final summary prints.  Pass
``force=True`` (CLI ``--progress``, ``REPRO_PROGRESS=force``) to restore
plain full per-update lines on a non-TTY stream.

The lifecycle events also feed the unified metric namespace in
:mod:`repro.telemetry.counters` (``engine.jobs.executed``,
``engine.store.resume_hits``), so engine accounting lands in the same
export as the forest/learner counters instead of living only in this
reporter's private integers.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.telemetry import counters

__all__ = ["ProgressReporter", "EngineStats"]


@dataclass(frozen=True)
class EngineStats:
    """Summary telemetry of one :func:`~repro.engine.executor.run_jobs` call."""

    total: int
    executed: int
    cached: int
    wall_time: float
    #: Jobs that exhausted retries and were recorded as failed TrialResults.
    failed: int = 0
    #: Attempt-level retries performed across all jobs.
    retried: int = 0

    @property
    def jobs_per_sec(self) -> float:
        """Completed jobs (executed + cached) per wall-clock second."""
        if self.wall_time <= 0:
            return float("inf") if self.total else 0.0
        return self.total / self.wall_time


@dataclass
class ProgressReporter:
    """Counts engine events and renders throttled status lines to stderr."""

    total: int = 0
    enabled: bool = True
    stream: object = None
    #: Minimum seconds between status lines (the summary is never throttled).
    min_interval: float = 0.5
    #: Emit per-update lines even when the stream is not a TTY (daemon and
    #: CI logs stay summary-only by default).
    force: bool = False

    done: int = field(default=0, init=False)
    cached: int = field(default=0, init=False)
    executed: int = field(default=0, init=False)
    running: int = field(default=0, init=False)
    failed: int = field(default=0, init=False)
    retried: int = field(default=0, init=False)
    pool_restarts: int = field(default=0, init=False)
    #: Size of the most recently dispatched chunk (0 = per-trial dispatch
    #: or nothing dispatched yet); shown in the status line.
    batch_size: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.stream is None:
            self.stream = sys.stderr
        self._t0 = time.monotonic()
        self._last_emit = 0.0
        self._closed = False
        #: True while a transient (carriage-return) line is on screen.
        self._line_dirty = False
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    # -- events ------------------------------------------------------------
    def job_started(self, label: str = "") -> None:
        """A job attempt was handed to a worker (or the serial loop)."""
        self.running += 1
        self._emit(f"running {label}" if label else None)

    def job_cached(self, label: str = "") -> None:
        """A job was satisfied from the result store without executing."""
        self.done += 1
        self.cached += 1
        counters.inc("engine.store.resume_hits")
        self._emit(f"cache hit {label}" if label else None)

    def job_finished(self, label: str = "") -> None:
        """A job finished executing (its trace is now available)."""
        self.running = max(0, self.running - 1)
        self.done += 1
        self.executed += 1
        counters.inc("engine.jobs.executed")
        self._emit(f"finished {label}" if label else None)

    def job_retried(self, label: str = "") -> None:
        """An attempt failed (error/timeout/crash) and will be retried."""
        self.running = max(0, self.running - 1)
        self.retried += 1
        self._emit(f"retrying {label}" if label else "retrying")

    def job_failed(self, label: str = "") -> None:
        """A job exhausted its retries; a failed TrialResult was recorded."""
        self.running = max(0, self.running - 1)
        self.done += 1
        self.failed += 1
        self._emit(f"FAILED {label}" if label else "FAILED", force=True)

    def pool_restarted(self, count: int) -> None:
        """The worker pool died and was rebuilt (in-flight jobs requeued)."""
        self.pool_restarts = count
        self._emit(f"worker pool died, rebuilding (restart {count})", force=True)

    def batch_dispatched(self, size: int) -> None:
        """A chunk of ``size`` trial jobs was handed to one worker future.

        Feeds the ``engine.jobs.batched`` counter (trials that travelled
        in a multi-trial chunk) and the ``engine.batch.size`` gauge, and
        keeps the status line's ``batch=N`` current.  Per-trial dispatch
        (``size == 1``) only updates the gauge.
        """
        self.batch_size = size
        counters.gauge("engine.batch.size", size)
        if size > 1:
            counters.inc("engine.jobs.batched", size)

    # -- rendering ---------------------------------------------------------
    def elapsed(self) -> float:
        """Wall-clock seconds since the reporter was created."""
        return time.monotonic() - self._t0

    def stats(self) -> EngineStats:
        """Snapshot of the counters as :class:`EngineStats`."""
        return EngineStats(
            total=self.done,
            executed=self.executed,
            cached=self.cached,
            wall_time=self.elapsed(),
            failed=self.failed,
            retried=self.retried,
        )

    def _line(self, note: "str | None" = None) -> str:
        elapsed = max(self.elapsed(), 1e-9)
        rate = self.done / elapsed
        line = (
            f"[engine] {self.done}/{self.total} done "
            f"({self.cached} cached, {self.running} running) | "
            f"{rate:.1f} trials/s"
        )
        if self.batch_size > 1:
            line += f" | batch={self.batch_size}"
        if self.failed:
            line += f" | {self.failed} failed"
        if self.retried:
            line += f" | {self.retried} retried"
        if note:
            line += f" | {note}"
        return line

    def _emit(self, note: "str | None" = None, force: bool = False) -> None:
        if not self.enabled or self._closed:
            return
        if not self._tty and not self.force:
            # Non-TTY without --progress: intermediate updates are noise
            # in daemon/CI logs; the close() summary still prints.
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        if self._tty:
            # Redraw in place; \x1b[K clears any longer previous line.
            self.stream.write(f"\r{self._line(note)}\x1b[K")
            self.stream.flush()
            self._line_dirty = True
        else:
            print(self._line(note), file=self.stream, flush=True)

    def restore_line(self) -> None:
        """Finish any transient status line so the cursor is on a fresh line.

        Safe to call repeatedly and from ``finally`` paths: it only writes
        when a carriage-return line is actually pending.
        """
        if self._line_dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._line_dirty = False

    def close(self) -> None:
        """Restore the terminal line and print the final summary (once).

        Runs on the engine's ``finally`` path, so it also executes after a
        ``KeyboardInterrupt`` — the summary then reflects whatever had
        completed before the interrupt.
        """
        if self._closed:
            return
        self._closed = True
        if not self.enabled:
            return
        self.restore_line()
        stats = self.stats()
        line = (
            f"[engine] completed {stats.total} jobs in {stats.wall_time:.1f}s"
            f" — executed {stats.executed}, cache hits {stats.cached}"
        )
        if stats.failed:
            line += f", failed {stats.failed}"
        if stats.retried:
            line += f", retries {stats.retried}"
        if self.pool_restarts:
            line += f", pool restarts {self.pool_restarts}"
        line += f" ({stats.jobs_per_sec:.1f} jobs/s)"
        print(line, file=self.stream, flush=True)
