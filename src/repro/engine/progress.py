"""Lightweight progress and telemetry for engine runs.

The reporter counts job lifecycle events (queued → running → done, plus
cache hits) and renders a throttled one-line status to stderr::

    [engine] 12/40 done (3 cached, 4 running) | 2.1 jobs/s

It is deliberately dependency-free and cheap: a handful of integer counters
and a monotonic clock, so it can wrap the hot scheduling loop without
perturbing timings.  The final summary line always prints (even with
throttling), making cache-hit counts visible in CI logs — the acceptance
signal for resume semantics.

The lifecycle events also feed the unified metric namespace in
:mod:`repro.telemetry.counters` (``engine.jobs.executed``,
``engine.store.resume_hits``), so engine accounting lands in the same
export as the forest/learner counters instead of living only in this
reporter's private integers.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

from repro.telemetry import counters

__all__ = ["ProgressReporter", "EngineStats"]


@dataclass(frozen=True)
class EngineStats:
    """Summary telemetry of one :func:`~repro.engine.executor.run_jobs` call."""

    total: int
    executed: int
    cached: int
    wall_time: float

    @property
    def jobs_per_sec(self) -> float:
        """Completed jobs (executed + cached) per wall-clock second."""
        if self.wall_time <= 0:
            return float("inf") if self.total else 0.0
        return self.total / self.wall_time


@dataclass
class ProgressReporter:
    """Counts engine events and renders throttled status lines to stderr."""

    total: int = 0
    enabled: bool = True
    stream: object = None
    #: Minimum seconds between status lines (the summary is never throttled).
    min_interval: float = 0.5

    done: int = field(default=0, init=False)
    cached: int = field(default=0, init=False)
    executed: int = field(default=0, init=False)
    running: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.stream is None:
            self.stream = sys.stderr
        self._t0 = time.monotonic()
        self._last_emit = 0.0

    # -- events ------------------------------------------------------------
    def job_started(self, label: str = "") -> None:
        """A job was handed to a worker (or the serial loop)."""
        self.running += 1
        self._emit(f"running {label}" if label else None)

    def job_cached(self, label: str = "") -> None:
        """A job was satisfied from the result store without executing."""
        self.done += 1
        self.cached += 1
        counters.inc("engine.store.resume_hits")
        self._emit(f"cache hit {label}" if label else None)

    def job_finished(self, label: str = "") -> None:
        """A job finished executing (its trace is now available)."""
        self.running = max(0, self.running - 1)
        self.done += 1
        self.executed += 1
        counters.inc("engine.jobs.executed")
        self._emit(f"finished {label}" if label else None)

    # -- rendering ---------------------------------------------------------
    def elapsed(self) -> float:
        """Wall-clock seconds since the reporter was created."""
        return time.monotonic() - self._t0

    def stats(self) -> EngineStats:
        """Snapshot of the counters as :class:`EngineStats`."""
        return EngineStats(
            total=self.done,
            executed=self.executed,
            cached=self.cached,
            wall_time=self.elapsed(),
        )

    def _line(self, note: "str | None" = None) -> str:
        elapsed = max(self.elapsed(), 1e-9)
        rate = self.done / elapsed
        line = (
            f"[engine] {self.done}/{self.total} done "
            f"({self.cached} cached, {self.running} running) | "
            f"{rate:.1f} jobs/s"
        )
        if note:
            line += f" | {note}"
        return line

    def _emit(self, note: "str | None" = None) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if now - self._last_emit < self.min_interval:
            return
        self._last_emit = now
        print(self._line(note), file=self.stream, flush=True)

    def close(self) -> None:
        """Print the final (never-throttled) summary line."""
        if not self.enabled:
            return
        stats = self.stats()
        print(
            f"[engine] completed {stats.total} jobs in {stats.wall_time:.1f}s"
            f" — executed {stats.executed}, cache hits {stats.cached}"
            f" ({stats.jobs_per_sec:.1f} jobs/s)",
            file=self.stream,
            flush=True,
        )
