"""The front door: typed one-call experiment execution.

:func:`run` executes one (workload, strategy) study — repeated trials
through the parallel engine, averaged — and :func:`compare` runs several
strategies against the same pool/test split.  Both return frozen result
objects carrying the averaged trace(s), headline metrics, and (when
``trace=True``) the path of the JSONL telemetry trace written for the
run.  They are thin wrappers over :mod:`repro.experiments.runner`; every
capability there (custom scales, α sweeps, engine overrides) is reachable
from here, and strategy names resolve exclusively through the registry in
:mod:`repro.sampling` (unknown names fail fast with a did-you-mean).
:func:`serve` and :func:`connect` are the facade over the tuning service
(:mod:`repro.service`): a sessioned suggest/report daemon and its client.

>>> import repro.api
>>> result = repro.api.run("atax", "pwu", seed=0, budget=60)
>>> result.metrics["final_rmse"]["0.05"]  # doctest: +SKIP
0.0123
"""

from __future__ import annotations

import dataclasses
import sys

from repro import telemetry
from repro.engine.context import EngineConfig, current_engine
from repro.experiments.aggregate import AveragedTrace
from repro.experiments.config import SCALES, ExperimentScale
from repro.experiments.runner import DEFAULT_ALPHAS, comparison_traces, strategy_trace
from repro.sampling import get_strategy
from repro.surrogate import surrogate_entry

__all__ = [
    "RunResult",
    "CompareResult",
    "run",
    "compare",
    "distill",
    "serve",
    "connect",
]


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Outcome of one :func:`run` call."""

    workload: str
    strategy: str
    seed: int
    #: Trial-averaged learning trace (RMSE@α and cost vs. training size).
    history: AveragedTrace
    #: Headline numbers: ``final_rmse`` (per α key), ``final_cost``,
    #: ``n_trials``.
    metrics: dict
    #: JSONL telemetry trace, or ``None`` when tracing was off.
    trace_path: "str | None" = None


@dataclasses.dataclass(frozen=True)
class CompareResult:
    """Outcome of one :func:`compare` call."""

    workload: str
    strategies: "tuple[str, ...]"
    seed: int
    #: strategy name → trial-averaged trace, shared pool/test split.
    traces: "dict[str, AveragedTrace]"
    #: strategy name → the same headline metrics :class:`RunResult` carries.
    metrics: dict
    trace_path: "str | None" = None


def _resolve_scale(scale: "str | ExperimentScale") -> ExperimentScale:
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; choose from {', '.join(SCALES)} "
            f"or pass an ExperimentScale"
        ) from None


def _engine_config(
    jobs: "int | None",
    cache_dir: "str | None",
    max_retries: "int | None" = None,
    job_timeout: "float | None" = None,
    batch_size: "int | None" = None,
) -> EngineConfig:
    config = current_engine()
    if jobs is not None:
        config = dataclasses.replace(config, jobs=int(jobs))
    if cache_dir is not None:
        config = dataclasses.replace(config, cache_dir=str(cache_dir))
    if max_retries is not None:
        config = dataclasses.replace(config, max_retries=int(max_retries))
    if job_timeout is not None:
        config = dataclasses.replace(config, job_timeout=float(job_timeout))
    if batch_size is not None:
        config = dataclasses.replace(config, batch_size=int(batch_size))
    return config


def _surrogate_overrides(surrogate: "str | None") -> "dict | None":
    """Validate a surrogate name and translate it to config overrides.

    ``None`` and the default ``"forest"`` both map to *no* overrides, so
    the default path's job keys — and therefore every committed trace and
    cached result — are byte-identical to what they were before the
    surrogate field existed.
    """
    if surrogate is None:
        return None
    surrogate_entry(surrogate)  # fail fast on unknown names (did-you-mean)
    if surrogate == "forest":
        return None
    return {"surrogate": surrogate}


def _trace_metrics(trace: AveragedTrace) -> dict:
    return {
        "final_rmse": {k: trace.final_rmse(k) for k in trace.rmse_mean},
        "final_cost": float(trace.cc_mean[-1]),
        "n_trials": trace.n_trials,
    }


def _traced(execute, trace: "bool | str", summary: bool):
    """Run ``execute()`` with tracing scoped to it; returns ``(result, path)``.

    With ``trace`` falsy the callable runs untouched (ambient tracing, if
    any, is left alone).  Otherwise the facade owns the ring buffer for
    the duration: it is cleared, the run recorded, and the events plus
    this run's counter deltas written to ``trace`` (a path) or a
    ``trace-<run_id>.jsonl`` default.
    """
    if not trace:
        return execute(), None
    telemetry.clear()
    counters_before = telemetry.counters_snapshot()
    with telemetry.tracing(True):
        result = execute()
    events = telemetry.drain_events()
    dropped = telemetry.dropped_events()
    delta = {
        name: value - counters_before.get(name, 0)
        for name, value in telemetry.counters_snapshot().items()
        if value != counters_before.get(name, 0)
    }
    run_id = "untagged"
    for event in events:
        if event.get("name") == "engine.run":
            run_id = event.get("attrs", {}).get("run_id", run_id)
    path = trace if isinstance(trace, str) else f"trace-{run_id}.jsonl"
    telemetry.write_trace(
        path,
        events,
        counters=delta,
        gauges=telemetry.gauges_snapshot(),
        run_id=run_id,
        dropped=dropped,
    )
    if summary:
        parsed = {"header": {"run_id": run_id, "dropped_events": dropped},
                  "events": events, "counters": delta, "gauges": {}}
        print(telemetry.summarize(parsed), file=sys.stderr)
    return result, path


def run(
    workload: str,
    strategy: str,
    *,
    seed: int = 0,
    budget: "int | None" = None,
    jobs: "int | None" = None,
    trace: "bool | str" = False,
    scale: "str | ExperimentScale" = "quick",
    trials: "int | None" = None,
    alpha: float = 0.05,
    alphas: "tuple[float, ...]" = DEFAULT_ALPHAS,
    cache_dir: "str | None" = None,
    trace_summary: bool = True,
    max_retries: "int | None" = None,
    job_timeout: "float | None" = None,
    batch_size: "int | None" = None,
    surrogate: "str | None" = None,
) -> RunResult:
    """Run one strategy on one workload and average repeated trials.

    Parameters
    ----------
    workload, strategy:
        Benchmark and strategy names (registry-resolved; unknown strategy
        names raise immediately with a closest-match hint).
    surrogate:
        Surrogate family driving the loop, resolved through
        :mod:`repro.surrogate` ("forest", "gp", "select", "stack", ...);
        default is the paper's forest.  Unknown names raise immediately
        with a closest-match hint, and results stay bit-identical at any
        ``jobs``/``batch_size`` for every family.
    seed:
        Root seed; trials derive their randomness content-addressed from
        it, so results are bit-identical at any ``jobs``.
    budget:
        Measurement budget — overrides the scale's ``n_max``.
    jobs:
        Worker processes (default: the ambient engine configuration).
    trace:
        ``True`` writes a JSONL telemetry trace next to the caller
        (``trace-<run_id>.jsonl``); a string names the file explicitly.
        A per-phase summary table is printed to stderr unless
        ``trace_summary=False``.
    scale, trials, alpha, alphas, cache_dir:
        Protocol knobs forwarded to the runner: experiment scale (name or
        :class:`ExperimentScale`), trial-count override, PWU α, evaluated
        α grid, and the persistent result store directory.
    max_retries, job_timeout:
        Fault-tolerance overrides: retry budget per job and per-attempt
        wall-clock limit in seconds (default: the ambient engine
        configuration; see :class:`repro.engine.EngineConfig`).  A job
        that exhausts its retries raises
        :class:`repro.engine.EngineJobError` after the batch completes,
        with finished trials preserved in the store.
    batch_size:
        Trial jobs dispatched per worker future (0 = automatic sizing,
        1 = per-trial dispatch; default: the ambient engine
        configuration).  Results are bit-identical at any value.
    """
    get_strategy(strategy, alpha=alpha)  # fail fast on unknown names
    overrides = _surrogate_overrides(surrogate)
    resolved = _resolve_scale(scale)
    if budget is not None:
        resolved = dataclasses.replace(resolved, n_max=int(budget))
    if trials is not None:
        resolved = dataclasses.replace(resolved, n_trials=int(trials))
    engine = _engine_config(jobs, cache_dir, max_retries, job_timeout, batch_size)

    def execute() -> AveragedTrace:
        return strategy_trace(
            workload,
            strategy,
            resolved,
            seed=seed,
            alpha=alpha,
            alphas=alphas,
            config_overrides=overrides,
            engine=engine,
        )

    history, trace_path = _traced(execute, trace, trace_summary)
    return RunResult(
        workload=workload,
        strategy=strategy,
        seed=seed,
        history=history,
        metrics=_trace_metrics(history),
        trace_path=trace_path,
    )


def compare(
    workload: str,
    strategies: "tuple[str, ...]",
    *,
    seed: int = 0,
    budget: "int | None" = None,
    jobs: "int | None" = None,
    trace: "bool | str" = False,
    scale: "str | ExperimentScale" = "quick",
    trials: "int | None" = None,
    alpha: float = 0.05,
    alphas: "tuple[float, ...]" = DEFAULT_ALPHAS,
    cache_dir: "str | None" = None,
    trace_summary: bool = True,
    max_retries: "int | None" = None,
    job_timeout: "float | None" = None,
    batch_size: "int | None" = None,
    surrogate: "str | None" = None,
) -> CompareResult:
    """Run several strategies against one shared pool/test split.

    All (strategy, trial) jobs are submitted in a single engine batch, so
    ``jobs=N`` parallelism spans strategies.  Parameters are as in
    :func:`run`; ``strategies`` is any iterable of registered names, and
    ``surrogate`` applies one family to every strategy in the comparison.
    """
    strategies = tuple(strategies)
    for name in strategies:
        get_strategy(name, alpha=alpha)
    overrides = _surrogate_overrides(surrogate)
    resolved = _resolve_scale(scale)
    if budget is not None:
        resolved = dataclasses.replace(resolved, n_max=int(budget))
    if trials is not None:
        resolved = dataclasses.replace(resolved, n_trials=int(trials))
    engine = _engine_config(jobs, cache_dir, max_retries, job_timeout, batch_size)

    def execute() -> "dict[str, AveragedTrace]":
        return comparison_traces(
            workload,
            strategies,
            resolved,
            seed=seed,
            alpha=alpha,
            alphas=alphas,
            config_overrides=overrides,
            engine=engine,
        )

    traces, trace_path = _traced(execute, trace, trace_summary)
    return CompareResult(
        workload=workload,
        strategies=strategies,
        seed=seed,
        traces=traces,
        metrics={name: _trace_metrics(t) for name, t in traces.items()},
        trace_path=trace_path,
    )


def distill(
    workload: str,
    *,
    surrogate: str = "forest",
    budget: int = 512,
    seed: int = 0,
    noise: str = "protocol",
    n_estimators: int = 30,
    name: "str | None" = None,
    out: "str | None" = None,
):
    """Freeze ``workload`` into a distilled surrogate benchmark.

    Runs the distillation campaign (see
    :func:`repro.workloads.distill_workload`), optionally saves the
    ``.npz`` envelope to ``out``, and returns the live
    :class:`~repro.workloads.SurrogateBenchmark`.  A saved envelope runs
    anywhere a workload name does — ``repro.api.run("surrogate:out.npz",
    ...)``, the CLI, the figure harness, and service session specs.
    Equivalent to ``repro distill``.

    >>> bench = repro.api.distill("atax", budget=300, out="atax.npz")  # doctest: +SKIP
    >>> repro.api.run("surrogate:atax.npz", "pwu", scale="smoke")      # doctest: +SKIP
    """
    from repro.workloads import distill_workload, get_benchmark, save_distilled

    bench = distill_workload(
        get_benchmark(workload),
        surrogate=surrogate,
        budget=budget,
        seed=seed,
        noise=noise,
        n_estimators=n_estimators,
        name=name,
    )
    if out is not None:
        save_distilled(bench, out)
    return bench


def serve(
    host: "str | None" = None,
    port: "int | None" = None,
    data_dir: "str | None" = None,
) -> int:
    """Run the tuning-service daemon (blocking); see :mod:`repro.service`.

    Arguments default to the ``REPRO_SERVICE_*`` environment bindings.
    Equivalent to ``repro serve``; returns the process exit code.
    """
    from repro.service import serve as _serve
    from repro.service import service_from_env

    base = service_from_env()
    return _serve(
        dataclasses.replace(
            base,
            host=host if host is not None else base.host,
            port=port if port is not None else base.port,
            data_dir=data_dir if data_dir is not None else base.data_dir,
        )
    )


def connect(base_url: str, timeout: float = 60.0):
    """A :class:`repro.service.Client` for a running tuning daemon.

    >>> client = repro.api.connect("http://127.0.0.1:8642")  # doctest: +SKIP
    >>> client.healthz()["status"]                           # doctest: +SKIP
    'ok'
    """
    from repro.service import Client

    return Client(base_url, timeout=timeout)
