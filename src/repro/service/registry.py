"""The daemon's session index: in-memory map + on-disk manifest + resume.

A :class:`SessionRegistry` owns the service data directory::

    <root>/manifest.json        # {"next_serial": N}  (atomic replace)
    <root>/sessions/<id>/...    # one journal directory per session

Session ids are ``s<serial:06d>-<spec_hash[:10]>`` — a monotone serial
(readable, sortable) plus a content-address prefix of the spec (equal
specs are visibly related; the full id still distinguishes them).  The
serial comes from the manifest, but :meth:`SessionRegistry.__init__`
re-derives it as ``max(manifest, scan of sessions/)`` so a crash between
directory creation and the manifest write cannot recycle an id.

On construction the registry *resumes*: every ``sessions/*/meta.json``
is loaded and its journal replayed (see
:meth:`~repro.service.session.Session.load`), so a restarted daemon
serves every pre-crash session with zero lost trials.  A session whose
replay fails (corrupt journal, diverging replay) is kept in the index in
the ``failed`` state — visible, not silently dropped.  Open
server-evaluated sessions get their driver threads restarted.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path

from repro.engine.store import atomic_write_text
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SERVICE_SCHEMA,
    ProtocolError,
    SessionSpec,
)
from repro.service.session import Session, run_server_session
from repro.telemetry import counters

__all__ = ["SessionRegistry"]

MANIFEST_NAME = "manifest.json"
_ID_RE = re.compile(r"^s(\d{6})-[0-9a-f]{10}$")


class SessionRegistry:
    """All sessions the daemon serves, resumed from ``root`` on boot."""

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.sessions_dir = self.root / "sessions"
        self.sessions_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._sessions: "dict[str, Session]" = {}
        #: Per-session driver stop events (server-evaluated mode).
        self._stops: "dict[str, threading.Event]" = {}
        self._threads: "dict[str, threading.Thread]" = {}
        self._failed_loads: "dict[str, str]" = {}
        self._next_serial = self._recover_serial()
        self._resume_all()

    # -- id allocation -------------------------------------------------------
    def _recover_serial(self) -> int:
        manifest_serial = 0
        manifest_path = self.root / MANIFEST_NAME
        if manifest_path.is_file():
            try:
                manifest = json.loads(manifest_path.read_text())
                manifest_serial = int(manifest.get("next_serial", 0))
            except (json.JSONDecodeError, ValueError, OSError):
                # A torn manifest is recoverable: the directory scan below
                # is authoritative and the next write repairs the file.
                counters.inc("service.manifest_recovered")
        scanned = 0
        for entry in sorted(self.sessions_dir.iterdir()):
            m = _ID_RE.match(entry.name)
            if m:
                scanned = max(scanned, int(m.group(1)) + 1)
        return max(manifest_serial, scanned)

    def _write_manifest(self) -> None:
        atomic_write_text(
            self.root / MANIFEST_NAME,
            json.dumps(
                {
                    "schema": SERVICE_SCHEMA,
                    "protocol": PROTOCOL_VERSION,
                    "next_serial": self._next_serial,
                },
                sort_keys=True,
            )
            + "\n",
        )

    # -- resume --------------------------------------------------------------
    def _resume_all(self) -> None:
        for entry in sorted(self.sessions_dir.iterdir()):
            if not (entry / "meta.json").is_file():
                continue
            try:
                session = Session.load(entry)
            except (RuntimeError, ProtocolError, OSError, KeyError, ValueError) as exc:
                # Keep the wreck visible: list() reports it as failed
                # instead of pretending the session never existed.
                self._failed_loads[entry.name] = str(exc)
                counters.inc("service.sessions.load_failed")
                continue
            self._sessions[session.id] = session
            if session.spec.mode == "server" and session.state == "open":
                self._start_driver(session)

    def _start_driver(self, session: Session) -> None:
        stop = threading.Event()
        thread = threading.Thread(
            target=run_server_session,
            args=(session, stop),
            name=f"repro-service-driver-{session.id}",
            daemon=True,
        )
        self._stops[session.id] = stop
        self._threads[session.id] = thread
        thread.start()

    # -- public API ----------------------------------------------------------
    def create(self, spec: SessionSpec) -> Session:
        """Allocate an id, persist the manifest, create the session."""
        with self._lock:
            serial = self._next_serial
            self._next_serial += 1
            self._write_manifest()
            session_id = f"s{serial:06d}-{spec.spec_hash()[:10]}"
            session = Session.create(
                session_id, spec, self.sessions_dir / session_id
            )
            self._sessions[session_id] = session
            if spec.mode == "server":
                self._start_driver(session)
            return session

    def get(self, session_id: str) -> Session:
        """The live session, or :class:`ProtocolError` 404 / 410."""
        with self._lock:
            session = self._sessions.get(session_id)
            failure = self._failed_loads.get(session_id)
        if session is not None:
            return session
        if failure is not None:
            raise ProtocolError(
                410,
                "session_unrecoverable",
                f"session {session_id} exists on disk but failed to "
                f"resume: {failure}",
            )
        raise ProtocolError(
            404, "unknown_session", f"unknown session {session_id!r}"
        )

    def list(self) -> "list[dict]":
        """Snapshots of every known session, id-sorted (stable wire order)."""
        with self._lock:
            sessions = [
                self._sessions[s] for s in sorted(self._sessions)
            ]
            failed = sorted(self._failed_loads.items())
        # Snapshotting measures nothing but may take a session's own
        # lock; do it outside the registry lock to keep routes snappy.
        out = [session.snapshot() for session in sessions]
        out.extend(
            {"id": s, "state": "failed", "error": error} for s, error in failed
        )
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Signal all driver threads to stop and join them.

        Safe mid-round: drivers abort between rounds, and anything already
        journaled replays on the next boot.
        """
        with self._lock:
            stops = list(self._stops.values())
            threads = list(self._threads.values())
        for stop in stops:
            stop.set()
        for thread in threads:
            thread.join(timeout=timeout)
