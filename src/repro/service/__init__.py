"""repro.service — tuning-as-a-service: a sessioned suggest/report daemon.

The paper's active-learning loop (sample → evaluate → refit → resample by
PWU) is inherently interactive; this package serves it over a versioned
JSON-over-HTTP wire protocol so many concurrent clients can run tuning
*sessions* against one long-lived daemon:

``POST /v1/sessions``
    open a session (benchmark + strategy + budget + seed, client- or
    server-evaluated);
``POST /v1/sessions/{id}/suggest``
    next configuration(s) from the live surrogate via the session's
    strategy (PWU by default);
``POST /v1/sessions/{id}/report``
    feed a client-measured result back into
    :meth:`~repro.active.ActiveLearner.observe`;
``GET /v1/sessions/{id}``
    progress snapshot; ``GET /v1/sessions/{id}/model`` the serialized
    :class:`~repro.forest.packed.PackedForest` (format v2).

Every session owns a crash-safe journal directory built on the engine
store's fsync'd append discipline (:mod:`repro.engine.store`), so a
killed daemon restarts with zero lost trials and resumes open sessions
on boot.  Sessions are deterministic: the learner's randomness derives
from the session spec alone, so a served session is bit-identical to the
equivalent offline :func:`repro.service.session.offline_reference` run —
and survives any kill/restart sequence unchanged.

Layers: :mod:`~repro.service.protocol` (wire schema v1),
:mod:`~repro.service.session` (one live learner + journal),
:mod:`~repro.service.registry` (session index + manifest),
:mod:`~repro.service.app` (route table, transport-free),
:mod:`~repro.service.daemon` (stdlib ``ThreadingHTTPServer``),
:mod:`~repro.service.client` (typed client), and
:mod:`~repro.service.config` (env-derived daemon settings).
"""

from repro.service.client import Client, ServiceError
from repro.service.config import ServiceConfig, service_from_env
from repro.service.daemon import TuningServer, serve
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SERVICE_SCHEMA,
    ProtocolError,
    SessionSpec,
    envelope,
)
from repro.service.registry import SessionRegistry
from repro.service.session import Session, offline_reference

__all__ = [
    "Client",
    "ServiceError",
    "ServiceConfig",
    "service_from_env",
    "TuningServer",
    "serve",
    "PROTOCOL_VERSION",
    "SERVICE_SCHEMA",
    "ProtocolError",
    "SessionSpec",
    "envelope",
    "SessionRegistry",
    "Session",
    "offline_reference",
]
