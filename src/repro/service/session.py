"""One live tuning session: a learner, its journal, and its replay.

A :class:`Session` owns one :class:`~repro.active.ActiveLearner` driven
through its incremental :meth:`~repro.active.ActiveLearner.suggest` /
:meth:`~repro.active.ActiveLearner.observe` entry points, plus a
crash-safe journal directory::

    sessions/<id>/meta.json       # the SessionSpec (atomic write, once)
    sessions/<id>/journal.jsonl   # one fsync'd line per reported batch

The report path is ordered for crash safety: validate the report against
the pending suggestion, *append to the journal*, then feed the learner.
The disk is therefore never behind a learner state that replay cannot
reproduce: :meth:`Session.load` rebuilds the learner from ``meta.json``
and re-drives every journaled round through the same suggest/observe
calls, asserting the re-suggested indices match the journal — any
divergence marks the journal corrupt rather than silently continuing
with a different model.

Determinism: all session randomness derives from the spec seed —
``derive(seed, "learner")`` for the learner (cold start, strategy
tie-breaks, forest bootstrap) and ``derive(seed, "oracle", round)`` per
measurement round — so a served session is bit-identical to
:func:`offline_reference` with the same spec, across any sequence of
daemon restarts.  Suggest is idempotent (re-suggesting an outstanding
batch consumes no randomness), which is what makes the at-least-once
suggest/report wire protocol safe.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.active import ActiveLearner
from repro.engine import current_engine
from repro.engine.executor import backoff_seconds
from repro.engine.store import append_jsonl, atomic_write_text, iter_jsonl
from repro.experiments.runner import prepare_data
from repro.surrogate import surrogate_bytes
from repro.rng import derive
from repro.sampling import get_strategy
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SERVICE_SCHEMA,
    ProtocolError,
    SessionSpec,
)
from repro.telemetry import counters
from repro.workloads import get_benchmark

__all__ = [
    "Session",
    "build_learner",
    "cached_benchmark",
    "measure_round",
    "offline_reference",
    "run_server_session",
]

META_NAME = "meta.json"
JOURNAL_NAME = "journal.jsonl"

#: Per-process memo of resolved benchmarks, keyed by name.  Suggest
#: decodes configurations and :func:`measure_round` measures them once
#: per round; re-instantiating the benchmark (space construction, solver
#: tables — or, for ``surrogate:<path>`` workloads, re-reading and
#: re-deserializing the envelope file) every call dominated small
#: batches, and a distilled envelope deleted mid-session would turn into
#: a 500 on the next suggest.  Benchmarks are stateless with respect to
#: measurement — the same instance serves every round and every session
#: naming that benchmark.
_BENCHMARKS: "dict[str, object]" = {}


def cached_benchmark(name: str):
    """Resolve ``name`` through the per-process benchmark memo."""
    benchmark = _BENCHMARKS.get(name)
    if benchmark is None:
        benchmark = get_benchmark(name)
        # repro: allow[SPAWN001] per-process memo of a stateless benchmark allow[RACE001] racing inserts build the same stateless value; last-write-wins is benign
        _BENCHMARKS[name] = benchmark
    return benchmark


def _no_oracle(X) -> "np.ndarray":
    """Placeholder oracle for service-driven learners (never called).

    Service sessions are driven through suggest/observe; the learner's
    internal ``run()`` oracle path must stay unreachable.
    """
    raise RuntimeError(
        "service sessions are driven via suggest/report; "
        "the learner's internal oracle must not be called"
    )


def build_learner(spec: SessionSpec) -> ActiveLearner:
    """Construct the session's learner deterministically from its spec.

    The pool/test split comes from :func:`~repro.experiments.runner.prepare_data`
    seeded with the spec seed (the same derivation the offline engine
    uses), and the learner's own randomness from
    ``derive(seed, "learner")`` — so equal specs always produce equal
    suggestion streams.
    """
    benchmark = cached_benchmark(spec.benchmark)
    scale = spec.to_scale()
    pool, X_test, y_test = prepare_data(benchmark, scale, seed=spec.seed)
    return ActiveLearner(
        pool=pool,
        evaluate=_no_oracle,
        X_test=X_test,
        y_test=y_test,
        strategy=get_strategy(spec.strategy, alpha=spec.alpha),
        config=spec.learner_config(),
        seed=derive(spec.seed, "learner"),
    )


def measure_round(spec: SessionSpec, X: np.ndarray, round_index: int) -> np.ndarray:
    """Measure one suggested batch with the round's derived oracle RNG.

    Each round gets a *fresh* generator ``derive(seed, "oracle", round)``,
    so measurement reproducibility does not depend on how many rounds a
    particular process has already evaluated — the property that lets a
    restarted daemon (server mode) or a reconnecting client resume
    mid-session with bit-identical labels.

    The whole suggested batch goes through one
    :meth:`~repro.workloads.base.Benchmark.evaluate_batch` call against a
    memoised benchmark instance; the old per-round ``get_benchmark`` +
    per-config evaluation rebuilt parameter spaces and solver tables every
    round, which dwarfed the closed-form evaluation itself.  Labels are
    bit-identical: one fused call with the round's fresh generator is
    exactly what the previous code computed.
    """
    benchmark = cached_benchmark(spec.benchmark)
    rng = derive(spec.seed, "oracle", round_index)
    return benchmark.evaluate_batch(np.asarray(X, dtype=np.float64), rng)


def offline_reference(spec: SessionSpec) -> ActiveLearner:
    """Run the spec's whole session locally — the service's ground truth.

    This is the loop a served session must be bit-identical to: same
    learner construction, same per-round oracle derivation, no HTTP.
    Returns the completed learner (history + fitted model).
    """
    learner = build_learner(spec)
    round_index = 0
    while not learner.done:
        learner.suggest()
        _, X = learner.pending
        learner.observe(measure_round(spec, X, round_index))
        round_index += 1
    return learner


def _json_safe(value):
    """Coerce numpy scalars (and containers of them) to plain JSON types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class Session:
    """One tuning session: spec + learner + journal directory + lock.

    All public methods are thread-safe (one re-entrant lock per session);
    cross-session concurrency needs no coordination because every session
    owns its own journal directory.
    """

    def __init__(self, session_id: str, spec: SessionSpec, directory: Path) -> None:
        self.id = session_id
        self.spec = spec
        self.dir = Path(directory)
        self.lock = threading.RLock()
        self.learner = build_learner(spec)
        #: Completed (journaled + observed) report rounds.
        self.rounds = 0
        #: ``n`` passed to the outstanding suggest (journaled on report).
        self._pending_n: "int | None" = None
        self._error: "str | None" = None

    # -- construction --------------------------------------------------------
    @classmethod
    def create(cls, session_id: str, spec: SessionSpec, directory: Path) -> "Session":
        """Create a fresh session directory with its ``meta.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "schema": SERVICE_SCHEMA,
            "protocol": PROTOCOL_VERSION,
            "id": session_id,
            "spec": spec.to_dict(),
        }
        atomic_write_text(
            directory / META_NAME,
            json.dumps(meta, sort_keys=True, indent=1) + "\n",
        )
        session = cls(session_id, spec, directory)
        counters.inc("service.sessions.created")
        return session

    @classmethod
    def load(cls, directory: Path) -> "Session":
        """Rebuild a session from disk by replaying its journal.

        Every journaled round is re-driven through suggest/observe; the
        re-suggested indices must equal the journaled ones (determinism
        check).  A corrupt or diverging journal raises ``RuntimeError`` —
        the registry records the session as failed instead of serving a
        model that does not match its journal.
        """
        directory = Path(directory)
        meta = json.loads((directory / META_NAME).read_text())
        if meta.get("schema") != SERVICE_SCHEMA:
            raise RuntimeError(
                f"{directory / META_NAME}: unexpected schema {meta.get('schema')!r}"
            )
        spec = SessionSpec.from_payload(meta["spec"])
        session = cls(meta["id"], spec, directory)
        for offset, _length, payload in iter_jsonl(directory / JOURNAL_NAME):
            if payload is None:
                raise RuntimeError(
                    f"{directory / JOURNAL_NAME}: corrupt journal line at "
                    f"offset {offset}"
                )
            session._replay_round(payload, offset)
        counters.inc("service.sessions.resumed")
        return session

    def _replay_round(self, payload: dict, offset: int) -> None:
        journaled = [int(i) for i in payload["indices"]]
        suggested = self.learner.suggest(payload.get("n"))
        if [int(i) for i in suggested] != journaled:
            raise RuntimeError(
                f"{self.dir / JOURNAL_NAME}: replay diverged at offset "
                f"{offset}: journal holds indices {journaled}, "
                f"deterministic replay suggested {list(map(int, suggested))}"
            )
        self.learner.observe(
            np.asarray(payload["y"], dtype=np.float64), indices=journaled
        )
        self.rounds += 1

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> str:
        """``open`` → ``completed`` (budget reached) or ``failed``."""
        if self._error is not None:
            return "failed"
        return "completed" if self.learner.done else "open"

    def fail(self, message: str) -> None:
        """Mark the session failed (server-mode driver errors land here)."""
        with self.lock:
            self._error = message
        counters.inc("service.sessions.failed")

    def snapshot(self) -> dict:
        """JSON-safe status summary (the ``GET /v1/sessions/{id}`` body)."""
        with self.lock:
            learner = self.learner
            pending = learner.pending
            last = learner.history.records[-1] if learner.history.records else None
            out = {
                "id": self.id,
                "state": self.state,
                "mode": self.spec.mode,
                "benchmark": self.spec.benchmark,
                "strategy": self.spec.strategy,
                "surrogate": self.spec.surrogate,
                "seed": self.spec.seed,
                "rounds": self.rounds,
                "n_labeled": learner.n_labeled,
                "n_max": learner.config.n_max,
                "pending": (
                    None if pending is None else [int(i) for i in pending[0]]
                ),
                "has_model": learner.model is not None,
            }
            if self._error is not None:
                out["error"] = self._error
            if last is not None:
                out["rmse"] = dict(last.rmse)
                out["cumulative_cost"] = float(last.cumulative_cost)
            return out

    # -- the protocol's two verbs --------------------------------------------
    def suggest(self, n: "int | None" = None) -> dict:
        """Next batch to measure (idempotent until the matching report).

        Returns the wire payload: pool ``indices``, decoded ``configs``
        (parameter dictionaries), and the ``x`` encoded rows (what
        :meth:`~repro.workloads.base.Benchmark.measure_encoded` takes).
        """
        with self.lock:
            if self._error is not None:
                raise ProtocolError(
                    409, "session_failed", f"session failed: {self._error}"
                )
            outstanding = self.learner.pending is not None
            try:
                indices = self.learner.suggest(n)
            except RuntimeError as exc:
                raise ProtocolError(409, "budget_exhausted", str(exc)) from exc
            except ValueError as exc:
                raise ProtocolError(400, "bad_request", str(exc)) from exc
            if not outstanding:
                self._pending_n = n
            _, X = self.learner.pending
            benchmark = cached_benchmark(self.spec.benchmark)
            counters.inc("service.suggests")
            return {
                "id": self.id,
                "round": self.rounds,
                "indices": [int(i) for i in indices],
                "configs": _json_safe(benchmark.space.decode(X)),
                "x": [[float(v) for v in row] for row in X],
            }

    def report(self, indices, y) -> dict:
        """Journal then absorb one measured batch; returns the new snapshot.

        Validation happens *before* the journal append (a rejected report
        must not poison replay), and the append happens *before*
        :meth:`~repro.active.ActiveLearner.observe` (a crash between the
        two replays the journaled round on restart — nothing is lost).
        """
        with self.lock:
            if self._error is not None:
                raise ProtocolError(
                    409, "session_failed", f"session failed: {self._error}"
                )
            pending = self.learner.pending
            if pending is None:
                raise ProtocolError(
                    409,
                    "no_pending_suggestion",
                    "report without an outstanding suggestion; "
                    "call suggest first",
                )
            pending_idx = [int(i) for i in pending[0]]
            stated = [int(i) for i in np.asarray(indices).reshape(-1)]
            if stated != pending_idx:
                raise ProtocolError(
                    409,
                    "stale_report",
                    f"reported indices {stated} do not match the pending "
                    f"suggestion {pending_idx}",
                )
            y_arr = np.asarray(y, dtype=np.float64).reshape(-1)
            if len(y_arr) != len(pending_idx):
                raise ProtocolError(
                    400,
                    "bad_report",
                    f"{len(y_arr)} labels reported for "
                    f"{len(pending_idx)} suggested configs",
                )
            record = {
                "round": self.rounds,
                "n": self._pending_n,
                "indices": pending_idx,
                "y": [float(v) for v in y_arr],
            }
            append_jsonl(self.dir / JOURNAL_NAME, record)
            self.learner.observe(y_arr, indices=pending_idx)
            self.rounds += 1
            self._pending_n = None
            counters.inc("service.reports")
            return self.snapshot()

    # -- artifacts -----------------------------------------------------------
    def model_bytes(self) -> bytes:
        """The fitted surrogate serialized in its ``.npz`` envelope.

        The bytes are whatever :func:`repro.surrogate.save_surrogate`
        writes for the session's surrogate family — for the default
        forest that is the PackedForest format v2 payload (plus the kind
        stamp), which :func:`repro.forest.load_forest` still reads.
        Raises :class:`ProtocolError` (409) while no model exists yet
        (before the cold-start report lands).
        """
        with self.lock:
            if self.learner.model is None:
                raise ProtocolError(
                    409,
                    "no_model",
                    "the session has no fitted model yet "
                    "(report the cold-start batch first)",
                )
            return surrogate_bytes(self.learner.model)


def run_server_session(session: Session, stop: threading.Event) -> None:
    """Drive a server-evaluated session to completion (driver-thread body).

    Loops suggest → measure → report with the engine's fault-tolerance
    discipline: a failed measurement is retried ``max_retries`` times
    with the executor's deterministic per-key exponential backoff before
    the session is marked failed.  ``stop`` aborts between rounds (daemon
    shutdown); the journaled prefix survives and resumes on reboot.
    """
    engine = current_engine()
    while not stop.is_set():
        with session.lock:
            if session.learner.done or session.state != "open":
                return
        try:
            suggestion = session.suggest()
        except ProtocolError as exc:
            session.fail(f"suggest rejected: {exc.message}")
            return
        X = np.asarray(suggestion["x"], dtype=np.float64)
        round_index = suggestion["round"]
        y = None
        for attempt in range(1, engine.max_retries + 2):
            try:
                y = measure_round(session.spec, X, round_index)
                break
            except Exception as exc:  # noqa: BLE001 — retried, then surfaced
                if attempt > engine.max_retries:
                    session.fail(
                        f"measurement failed after {attempt} attempt(s): {exc}"
                    )
                    return
                counters.inc("service.measure_retries")
                time.sleep(
                    backoff_seconds(
                        f"{session.id}:{round_index}",
                        attempt,
                        engine.retry_backoff,
                    )
                )
        try:
            session.report(suggestion["indices"], y)
        except ProtocolError as exc:
            session.fail(f"report rejected: {exc.message}")
            return
