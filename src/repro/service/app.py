"""Transport-free request routing: (method, path, body) → (status, headers, body).

:class:`ServiceApp` implements the whole wire protocol against a
:class:`~repro.service.registry.SessionRegistry` without touching a
socket — :meth:`ServiceApp.handle` takes the method, path, and raw body
bytes and returns the status code, response headers, and response body.
The HTTP daemon (:mod:`repro.service.daemon`) is a thin adapter over it,
and the unit tests drive the full protocol through this layer with no
ports, no threads, and no flakiness.

Routes (all JSON unless noted)::

    GET  /v1/healthz                  liveness + session count
    GET  /v1/strategies               strategies / surrogates / benchmarks / scales
    GET  /v1/sessions                 snapshots of every session
    POST /v1/sessions                 create (body: SessionSpec fields)
    GET  /v1/sessions/{id}            one session's snapshot
    POST /v1/sessions/{id}/suggest    next batch (body: {"n": int?})
    POST /v1/sessions/{id}/report     absorb labels (body: indices + y)
    GET  /v1/sessions/{id}/model      serialized surrogate (binary .npz)

Every JSON body is wrapped in the versioned envelope of
:mod:`repro.service.protocol`; errors are JSON envelopes too (never HTML
or a traceback), and the model endpoint carries its provenance in
``X-Repro-Schema`` / ``X-Repro-Protocol`` / ``X-Repro-Version`` headers
because its body is binary.
"""

from __future__ import annotations

import json
import re

from repro._version import __version__
from repro.experiments.config import SCALES
from repro.sampling import STRATEGY_NAMES, available_strategies
from repro.surrogate import available_surrogates
from repro.service.protocol import (
    PROTOCOL_VERSION,
    SERVICE_SCHEMA,
    ProtocolError,
    SessionSpec,
    envelope,
)
from repro.service.registry import SessionRegistry
from repro.telemetry import counters
from repro.workloads import all_benchmarks

__all__ = ["ServiceApp"]

_JSON = "application/json"
_BINARY = "application/octet-stream"

_SESSION_PATH = re.compile(r"^/v1/sessions/([A-Za-z0-9_-]+)(/[a-z]+)?$")


def _json_response(status: int, payload: dict) -> "tuple[int, dict, bytes]":
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return status, {"Content-Type": _JSON}, body


class ServiceApp:
    """The service's route table over one session registry."""

    def __init__(self, registry: SessionRegistry) -> None:
        self.registry = registry

    # -- entry point ---------------------------------------------------------
    def handle(  # repro: thread-entry — one ThreadingHTTPServer thread per in-flight request
        self, method: str, path: str, body: bytes = b""
    ) -> "tuple[int, dict, bytes]":
        """Dispatch one request; never raises for protocol-level faults."""
        counters.inc("service.requests")
        try:
            return self._route(method.upper(), path.rstrip("/") or "/", body)
        except ProtocolError as exc:
            counters.inc("service.errors")
            return _json_response(exc.status, exc.to_payload())

    # -- routing -------------------------------------------------------------
    def _route(
        self, method: str, path: str, body: bytes
    ) -> "tuple[int, dict, bytes]":
        if path == "/v1/healthz":
            self._require(method, "GET")
            return _json_response(
                200, envelope({"status": "ok", "sessions": len(self.registry)})
            )
        if path == "/v1/strategies":
            self._require(method, "GET")
            return _json_response(
                200,
                envelope(
                    {
                        "strategies": list(available_strategies()),
                        "paper_strategies": list(STRATEGY_NAMES),
                        "surrogates": list(available_surrogates()),
                        "benchmarks": list(all_benchmarks()),
                        "scales": sorted(SCALES),
                    }
                ),
            )
        if path == "/v1/sessions":
            if method == "GET":
                return _json_response(
                    200, envelope({"sessions": self.registry.list()})
                )
            self._require(method, "POST")
            spec = SessionSpec.from_payload(self._parse_json(body))
            session = self.registry.create(spec)
            return _json_response(201, envelope({"session": session.snapshot()}))
        m = _SESSION_PATH.match(path)
        if m is None:
            raise ProtocolError(404, "unknown_route", f"no route for {path!r}")
        session_id, verb = m.group(1), (m.group(2) or "").lstrip("/")
        session = self.registry.get(session_id)
        if not verb:
            self._require(method, "GET")
            return _json_response(200, envelope({"session": session.snapshot()}))
        if verb == "suggest":
            self._require(method, "POST")
            payload = self._parse_json(body) if body.strip() else {}
            n = payload.get("n")
            if n is not None and (isinstance(n, bool) or not isinstance(n, int)):
                raise ProtocolError(400, "bad_request", "'n' must be an integer")
            return _json_response(
                200, envelope({"suggestion": session.suggest(n)})
            )
        if verb == "report":
            self._require(method, "POST")
            payload = self._parse_json(body)
            for field in ("indices", "y"):
                if field not in payload or not isinstance(payload[field], list):
                    raise ProtocolError(
                        400,
                        "bad_report",
                        f"report requires a list field {field!r}",
                    )
            snapshot = session.report(payload["indices"], payload["y"])
            return _json_response(200, envelope({"session": snapshot}))
        if verb == "model":
            self._require(method, "GET")
            blob = session.model_bytes()
            counters.inc("service.models_served")
            headers = {
                "Content-Type": _BINARY,
                "X-Repro-Schema": SERVICE_SCHEMA,
                "X-Repro-Protocol": str(PROTOCOL_VERSION),
                "X-Repro-Version": __version__,
                "X-Repro-Surrogate": session.spec.surrogate,
            }
            return 200, headers, blob
        raise ProtocolError(
            404, "unknown_route", f"no session verb {verb!r} (path {path!r})"
        )

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise ProtocolError(
                405, "method_not_allowed", f"use {expected} for this route"
            )

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(
                400, "bad_json", f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                400, "bad_json", "request body must be a JSON object"
            )
        return payload
