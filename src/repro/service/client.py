"""Typed client for the tuning service (stdlib urllib, proxy-free).

:class:`Client` wraps the wire protocol of :mod:`repro.service.app` in
plain methods: ``create_session``/``status``/``suggest``/``report``/
``model``.  Every JSON response's envelope is checked — wrong ``schema``
or ``protocol`` raises immediately rather than mis-parsing a payload
from some other server — and protocol-level errors surface as
:class:`ServiceError` carrying the HTTP status and the stable error
``code``.

The transport is :mod:`urllib.request` with an empty ``ProxyHandler``,
so a client in a proxied environment still talks straight to the
daemon's host:port (the service is loopback-oriented; routing tuning
traffic through an HTTP proxy would be both slow and surprising).

:meth:`Client.run_session` is the convenience loop for client-evaluated
tuning: create a session, then suggest → measure (your callable) →
report until the budget is exhausted, returning the final snapshot.
:meth:`Client.model` deserializes the daemon's surrogate bytes back into
a predicting :class:`~repro.surrogate.Surrogate` adapter.
"""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

from repro.service.protocol import PROTOCOL_VERSION, SERVICE_SCHEMA
from repro.surrogate import load_surrogate

__all__ = ["Client", "ServiceError"]


class ServiceError(Exception):
    """A request the service rejected (or a non-service response).

    ``status`` is the HTTP status, ``code`` the service's stable error
    identifier (``"unknown_session"``, ``"budget_exhausted"``, ...), and
    ``message`` the human-readable explanation.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class Client:
    """One daemon connection: ``Client("http://127.0.0.1:8642")``."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        # No proxies: the daemon is a direct host:port peer.
        self._opener = urllib.request.build_opener(
            urllib.request.ProxyHandler({})
        )

    # -- transport -----------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: "dict | None" = None
    ) -> "tuple[int, dict, bytes]":
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=body, method=method, headers=headers
        )
        try:
            with self._opener.open(req, timeout=self.timeout) as resp:
                return resp.status, dict(resp.headers), resp.read()
        except urllib.error.HTTPError as exc:
            # Protocol-level rejections arrive as JSON error envelopes.
            return exc.code, dict(exc.headers or {}), exc.read()

    def _json(
        self, method: str, path: str, payload: "dict | None" = None
    ) -> dict:
        status, _headers, raw = self._request(method, path, payload)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(
                status, "bad_response", f"non-JSON response body: {exc}"
            ) from exc
        self._check_envelope(status, data)
        if status >= 400:
            error = data.get("error") or {}
            raise ServiceError(
                status,
                error.get("code", "error"),
                error.get("message", raw.decode("utf-8", "replace")),
            )
        return data

    @staticmethod
    def _check_envelope(status: int, data: dict) -> None:
        schema = data.get("schema")
        protocol = data.get("protocol")
        if schema != SERVICE_SCHEMA or protocol != PROTOCOL_VERSION:
            raise ServiceError(
                status,
                "bad_envelope",
                f"response is not {SERVICE_SCHEMA} protocol "
                f"{PROTOCOL_VERSION} (got schema={schema!r}, "
                f"protocol={protocol!r})",
            )

    # -- endpoints -----------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe: status, session count, server version."""
        return self._json("GET", "/v1/healthz")

    def strategies(self) -> dict:
        """Available strategies, benchmarks, and scales."""
        return self._json("GET", "/v1/strategies")

    def create_session(self, **spec_fields) -> dict:
        """Open a session; keyword arguments are SessionSpec fields.

        Returns the session snapshot (its ``id`` addresses every other
        call).  Example::

            client.create_session(benchmark="atax", strategy="pwu", seed=7)
        """
        data = self._json("POST", "/v1/sessions", spec_fields)
        return data["session"]

    def list_sessions(self) -> "list[dict]":
        """Snapshots of every session the daemon knows."""
        return self._json("GET", "/v1/sessions")["sessions"]

    def status(self, session_id: str) -> dict:
        """One session's snapshot."""
        return self._json("GET", f"/v1/sessions/{session_id}")["session"]

    def suggest(self, session_id: str, n: "int | None" = None) -> dict:
        """The next batch to measure: indices, decoded configs, encoded x."""
        payload = {} if n is None else {"n": n}
        data = self._json("POST", f"/v1/sessions/{session_id}/suggest", payload)
        return data["suggestion"]

    def report(self, session_id: str, indices, y) -> dict:
        """Report measured labels for the outstanding suggestion."""
        payload = {
            "indices": [int(i) for i in indices],
            "y": [float(v) for v in y],
        }
        data = self._json("POST", f"/v1/sessions/{session_id}/report", payload)
        return data["session"]

    def model_bytes(self, session_id: str) -> bytes:
        """The serialized packed forest, provenance-checked via headers."""
        status, headers, raw = self._request(
            "GET", f"/v1/sessions/{session_id}/model"
        )
        if status >= 400:
            try:
                data = json.loads(raw.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                data = {}
            error = data.get("error") or {}
            raise ServiceError(
                status, error.get("code", "error"), error.get("message", "")
            )
        if headers.get("X-Repro-Schema") != SERVICE_SCHEMA:
            raise ServiceError(
                status, "bad_envelope", "model response lacks service headers"
            )
        return raw

    def model(self, session_id: str):
        """The fitted surrogate, deserialized and ready to predict.

        Returns the :class:`~repro.surrogate.Surrogate` adapter matching
        the session's family (``X-Repro-Surrogate`` header); the default
        forest arrives as a :class:`~repro.surrogate.ForestSurrogate`
        wrapping the same packed forest the daemon fitted.
        """
        return load_surrogate(io.BytesIO(self.model_bytes(session_id)))

    # -- convenience ---------------------------------------------------------
    def run_session(self, measure, **spec_fields) -> dict:
        """Drive a whole client-evaluated session; returns the final snapshot.

        ``measure(suggestion) -> labels`` is your oracle: it receives the
        suggestion payload (``indices``/``configs``/``x``/``round``) and
        returns one label per suggested configuration.
        """
        session = self.create_session(**spec_fields)
        sid = session["id"]
        while True:
            status = self.status(sid)
            if status["state"] != "open":
                return status
            suggestion = self.suggest(sid)
            y = measure(suggestion)
            self.report(sid, suggestion["indices"], y)
