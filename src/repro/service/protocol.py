"""Wire protocol schema v1: envelopes, session specs, and typed errors.

Every JSON response body the daemon emits is wrapped in :func:`envelope`,
which stamps three provenance fields clients can (and the bundled client
does) check before trusting the payload:

``schema``
    the literal :data:`SERVICE_SCHEMA` (``"repro.service.v1"``) — a
    response from something that is not this service fails fast;
``protocol``
    the integer :data:`PROTOCOL_VERSION`, bumped on any incompatible
    wire change;
``version``
    the package :data:`repro._version.__version__`, so a client can
    report exactly which build produced a model.

:class:`SessionSpec` is the canonical, validated description of one
tuning session — benchmark, strategy, seed, budget, evaluation mode —
parsed from the ``POST /v1/sessions`` body by :meth:`SessionSpec.from_payload`
and persisted verbatim in the session's ``meta.json`` so a restarted
daemon rebuilds the identical learner.  Its :meth:`SessionSpec.spec_hash`
is a content address over the canonical JSON form, embedded in session
ids.  :class:`ProtocolError` carries an HTTP status plus a stable
machine-readable ``code``; the app layer renders it as a JSON error
envelope instead of a stack trace.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro._version import __version__
from repro.active import LearnerConfig
from repro.experiments.config import SCALES, ExperimentScale

__all__ = [
    "SERVICE_SCHEMA",
    "PROTOCOL_VERSION",
    "envelope",
    "ProtocolError",
    "SessionSpec",
]

#: Schema identifier stamped into every response envelope.
SERVICE_SCHEMA = "repro.service.v1"

#: Wire protocol version; bumped on any incompatible change.
PROTOCOL_VERSION = 1

#: Session evaluation modes: ``client`` (the caller measures and reports)
#: or ``server`` (the daemon measures via the named benchmark itself).
MODES = ("client", "server")


def envelope(data: "dict | None" = None) -> dict:
    """Wrap a response payload with schema/protocol/version provenance."""
    out = {
        "schema": SERVICE_SCHEMA,
        "protocol": PROTOCOL_VERSION,
        "version": __version__,
    }
    if data:
        out.update(data)
    return out


class ProtocolError(Exception):
    """A request the service rejects, with an HTTP status and stable code.

    ``status`` is the HTTP status to respond with, ``code`` a stable
    machine-readable identifier (``"unknown_session"``, ``"no_model"``,
    ...), and ``message`` the human-readable explanation.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_payload(self) -> dict:
        """The error as a JSON-safe envelope body."""
        return envelope({"error": {"code": self.code, "message": self.message}})


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to (re)build one tuning session's learner.

    Sizes default from the named ``scale`` (an
    :class:`~repro.experiments.config.ExperimentScale`); any explicitly
    provided field overrides the scale's value.  The spec is the *whole*
    source of session randomness — two sessions with equal specs produce
    bit-identical suggestion streams.
    """

    benchmark: str
    strategy: str = "pwu"
    #: Surrogate family (``repro.surrogate`` registry name) driving the
    #: session's model; the default forest keeps specs — and therefore
    #: spec hashes and session ids — stable for pre-surrogate clients
    #: that never send the field.
    surrogate: str = "forest"
    seed: int = 0
    #: ``client``: callers measure and report; ``server``: the daemon
    #: evaluates suggested configurations against the benchmark itself.
    mode: str = "client"
    scale: str = "smoke"
    alpha: float = 0.01
    alphas: tuple[float, ...] = (0.01, 0.05, 0.10)
    #: ``None`` fields inherit from the named scale.
    n_init: "int | None" = None
    n_batch: "int | None" = None
    n_max: "int | None" = None
    eval_every: "int | None" = None
    n_estimators: "int | None" = None
    pool_size: "int | None" = None
    test_size: "int | None" = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ProtocolError(
                400, "bad_mode", f"mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.scale not in SCALES:
            raise ProtocolError(
                400,
                "bad_scale",
                f"scale must be one of {sorted(SCALES)}, got {self.scale!r}",
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ProtocolError(400, "bad_seed", "seed must be an integer")
        object.__setattr__(self, "alphas", tuple(float(a) for a in self.alphas))

    # -- construction --------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: dict) -> "SessionSpec":
        """Validate and build a spec from a parsed request body.

        Raises :class:`ProtocolError` (400) on missing/unknown fields or
        out-of-range values, naming the offending field.
        """
        if not isinstance(payload, dict):
            raise ProtocolError(
                400, "bad_request", "session spec must be a JSON object"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ProtocolError(
                400,
                "unknown_field",
                f"unknown session field(s): {', '.join(unknown)}",
            )
        if "benchmark" not in payload:
            raise ProtocolError(
                400, "missing_field", "session spec requires 'benchmark'"
            )
        kwargs = dict(payload)
        if "alphas" in kwargs:
            kwargs["alphas"] = tuple(kwargs["alphas"])
        try:
            spec = cls(**kwargs)
        except ProtocolError:
            raise
        except (TypeError, ValueError) as exc:
            raise ProtocolError(400, "bad_request", str(exc)) from exc
        spec.validate_names()
        try:
            spec.to_scale()
            config = spec.learner_config()
            # Probe buildability: a registered surrogate that needs options
            # the wire spec cannot carry (e.g. "transfer" without a source
            # model) must fail at session creation, not mid-session.
            from repro.surrogate import make_surrogate

            make_surrogate(spec.surrogate, config=config)
        except ProtocolError:
            raise
        except ValueError as exc:
            raise ProtocolError(400, "bad_spec", str(exc)) from exc
        return spec

    def validate_names(self) -> None:
        """Check benchmark/strategy/surrogate names against their registries.

        The workload check *resolves* the name (it is the buildability
        probe for ``surrogate:<path>`` / ``distilled:<stem>`` envelope
        workloads), so a typo'd name or an unreadable envelope file fails
        the ``POST /v1/sessions`` with a 400 ``unknown_workload`` — with
        a did-you-mean for registry names and the typed envelope
        diagnosis for files — instead of surfacing as a 500 ``KeyError``
        on the first suggest/measure call.
        """
        from repro.envelope import EnvelopeError
        from repro.sampling import available_strategies
        from repro.surrogate import available_surrogates
        from repro.workloads import get_benchmark

        try:
            get_benchmark(self.benchmark)
        except KeyError as exc:
            # NameRegistry's KeyError already carries a closest-match hint.
            raise ProtocolError(400, "unknown_workload", str(exc.args[0])) from exc
        except EnvelopeError as exc:
            raise ProtocolError(400, "unknown_workload", str(exc)) from exc
        if self.strategy not in available_strategies():
            raise ProtocolError(
                400,
                "unknown_strategy",
                f"unknown strategy {self.strategy!r}; "
                f"choose from {', '.join(available_strategies())}",
            )
        if self.surrogate not in available_surrogates():
            raise ProtocolError(
                400,
                "unknown_surrogate",
                f"unknown surrogate {self.surrogate!r}; "
                f"choose from {', '.join(available_surrogates())}",
            )

    # -- derived forms -------------------------------------------------------
    def to_scale(self) -> ExperimentScale:
        """The effective experiment scale: named scale + explicit overrides."""
        base = SCALES[self.scale]
        overrides = {
            k: v
            for k, v in (
                ("n_init", self.n_init),
                ("n_batch", self.n_batch),
                ("n_max", self.n_max),
                ("eval_every", self.eval_every),
                ("n_estimators", self.n_estimators),
                ("pool_size", self.pool_size),
                ("test_size", self.test_size),
            )
            if v is not None
        }
        return replace(base, n_trials=1, **overrides)

    def learner_config(self) -> LearnerConfig:
        """The session's :class:`~repro.active.LearnerConfig`."""
        scale = self.to_scale()
        return LearnerConfig(
            n_init=scale.n_init,
            n_batch=scale.n_batch,
            n_max=scale.n_max,
            alphas=self.alphas,
            eval_every=scale.eval_every,
            n_estimators=scale.n_estimators,
            surrogate=self.surrogate,
        )

    def to_dict(self) -> dict:
        """JSON-safe canonical form (round-trips via :meth:`from_payload`)."""
        out = asdict(self)
        out["alphas"] = list(self.alphas)
        return out

    def spec_hash(self) -> str:
        """Content address of the canonical JSON form (hex sha256)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
