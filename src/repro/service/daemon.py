"""The HTTP face of the service: a stdlib ThreadingHTTPServer adapter.

:class:`TuningServer` binds a :class:`~repro.service.app.ServiceApp`
(and the registry it resumes from the data directory) to a
``http.server.ThreadingHTTPServer`` — one thread per in-flight request,
which the per-session locks were built for.  No web framework: the
handler reads ``Content-Length`` bytes, hands ``(method, path, body)``
to the app, and writes back whatever status/headers/body it returns.

:func:`serve` is the blocking entry point behind ``repro serve``: it
prints a greppable startup line, runs until ``SIGTERM``/``SIGINT``, then
stops accepting, signals the server-mode driver threads, and prints
``[service] shutdown clean`` — the line the CI smoke job asserts on.
Because every mutation is journaled before it is acknowledged, a
*non*-clean death (kill -9) is also safe: the next boot replays the
journals (see :mod:`repro.service.registry`).

For tests, :meth:`TuningServer.start` runs ``serve_forever`` on a
background thread and returns, and ``port=0`` binds an ephemeral port
reported by :attr:`TuningServer.address`.
"""

from __future__ import annotations

import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.app import ServiceApp
from repro.service.config import ServiceConfig
from repro.service.registry import SessionRegistry

__all__ = ["TuningServer", "serve"]

#: Largest request body the daemon will read (a report for a big batch
#: is a few kilobytes; a megabyte of headroom is generous).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Minimal request adapter; all logic lives in the ServiceApp."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self.send_error(413, "request body too large")
            return
        body = self.rfile.read(length) if length else b""
        status, headers, payload = self.server.app.handle(
            self.command, self.path, body
        )
        self.send_response(status)
        for name in sorted(headers):
            self.send_header(name, headers[name])
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 — http.server's naming
        """Serve a GET route via the app."""
        self._dispatch()

    def do_POST(self) -> None:  # noqa: N802 — http.server's naming
        """Serve a POST route via the app."""
        self._dispatch()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request stderr logging is noise for a daemon; stay quiet."""


class TuningServer(ThreadingHTTPServer):
    """The bound server: registry + app + the listening socket."""

    daemon_threads = True

    def __init__(self, config: "ServiceConfig | None" = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.registry = SessionRegistry(self.config.resolved_data_dir())
        self.app = ServiceApp(self.registry)
        super().__init__((self.config.host, self.config.port), _Handler)
        self._thread: "threading.Thread | None" = None

    @property
    def address(self) -> "tuple[str, int]":
        """The actually-bound ``(host, port)`` (resolves ``port=0``)."""
        return self.server_address[0], self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the bound server (http, no trailing slash)."""
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "TuningServer":
        """Serve on a background thread (test harness entry); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, join the serve thread, stop session drivers."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.registry.shutdown()
        self.server_close()


def serve(config: "ServiceConfig | None" = None) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns a process exit code.

    The ``repro serve`` entry point.  Prints one startup line and one
    ``[service] shutdown clean`` line to stderr (both greppable — the CI
    smoke job asserts on them).
    """
    server = TuningServer(config)
    host, port = server.address
    print(
        f"[service] listening on http://{host}:{port} "
        f"(data_dir={server.config.resolved_data_dir()}, "
        f"sessions={len(server.registry)})",
        file=sys.stderr,
        flush=True,
    )

    def _stop(signum, frame) -> None:
        # shutdown() must not run on the serving thread; hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _stop)
    try:
        server.serve_forever()
    finally:
        for sig, handler in sorted(previous.items()):
            signal.signal(sig, handler)
        server.registry.shutdown()
        server.server_close()
        print("[service] shutdown clean", file=sys.stderr, flush=True)
    return 0
