"""Daemon settings and their environment bindings (the DET004 blessed home).

:class:`ServiceConfig` carries the three knobs a deployment needs —
bind host, port, and the data directory that holds the session journals.
:func:`service_from_env` reads the ``REPRO_SERVICE_HOST`` /
``REPRO_SERVICE_PORT`` / ``REPRO_SERVICE_DATA_DIR`` environment
variables; this module is the *only* place the service tree touches
``os.environ`` (it is allowlisted for the DET004 lint rule), so ambient
configuration stays auditable in one spot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ServiceConfig", "service_from_env"]

#: Default bind address: loopback only — the protocol has no auth layer.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


@dataclass(frozen=True)
class ServiceConfig:
    """Where the daemon listens and where it journals its sessions.

    ``port=0`` asks the OS for an ephemeral port (the bound port is
    reported by the server object and the startup line).  ``data_dir``
    of ``None`` means a ``repro-service`` directory under the current
    working directory.
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    data_dir: "str | None" = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")

    def resolved_data_dir(self) -> str:
        """The effective data directory (defaulting under the cwd)."""
        return self.data_dir if self.data_dir else os.path.join(
            os.getcwd(), "repro-service"
        )


def service_from_env() -> ServiceConfig:
    """Service settings from ``REPRO_SERVICE_*`` (unset → defaults)."""
    host = os.environ.get("REPRO_SERVICE_HOST", DEFAULT_HOST)
    port = int(os.environ.get("REPRO_SERVICE_PORT", str(DEFAULT_PORT)))
    data_dir = os.environ.get("REPRO_SERVICE_DATA_DIR") or None
    return ServiceConfig(host=host, port=port, data_dir=data_dir)
