"""Model-based performance tuning (the paper's Fig. 8 case study)."""

from repro.tuning.tuner import TuningResult, model_based_tuning, surrogate_annotator

__all__ = ["TuningResult", "model_based_tuning", "surrogate_annotator"]
