"""Model-based tuning with interchangeable annotators (Fig. 8).

The paper's case study: once an empirical model exists, a tuner can use it
as a *surrogate annotator* — treating model predictions as observations —
so the search costs essentially nothing.  Fig. 8 compares two tuning runs
on atax:

* **direct tuning** — every candidate the tuner wants labeled is actually
  executed (the ground-truth annotator);
* **surrogate tuning** — the candidate is "labeled" by the surrogate model
  built beforehand with PWU active learning.

Both runs report the *true* execution time of the best configuration found
so far, which is the quantity a tuner is judged on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forest import RandomForestRegressor
from repro.rng import as_generator
from repro.workloads import Benchmark

__all__ = ["TuningResult", "model_based_tuning", "surrogate_annotator"]


@dataclass(frozen=True)
class TuningResult:
    """Best-so-far trace of one tuning run."""

    annotator: str
    #: Number of annotated configurations after each iteration.
    n_evaluated: np.ndarray
    #: True execution time of the best configuration found so far.
    best_true_time: np.ndarray
    #: Encoded best configuration at the end of the run.
    best_config: np.ndarray

    def final_best(self) -> float:
        return float(self.best_true_time[-1])


def surrogate_annotator(model: RandomForestRegressor):
    """Wrap a fitted forest as an annotator (predictions as observations)."""

    def annotate(X: np.ndarray) -> np.ndarray:
        return model.predict(X)

    return annotate


def model_based_tuning(
    benchmark: Benchmark,
    X_candidates: np.ndarray,
    annotate,
    annotator_name: str,
    n_iterations: int = 50,
    n_init: int = 5,
    n_estimators: int = 30,
    seed=None,
) -> TuningResult:
    """Iterative best-predicted search over a candidate set.

    Each iteration fits a forest to all annotated samples, asks it for the
    best-predicted unannotated candidate, and annotates that candidate.
    The best-so-far is tracked in *true* time regardless of the annotator,
    so direct and surrogate tuning are compared on equal footing.
    """
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")
    rng = as_generator(seed)
    X_candidates = np.asarray(X_candidates, dtype=np.float64)
    n = len(X_candidates)
    if n < n_init + n_iterations:
        raise ValueError(
            f"candidate set of {n} too small for {n_init} init + "
            f"{n_iterations} iterations"
        )
    true_times = benchmark.true_times_encoded(X_candidates)

    annotated = list(rng.choice(n, size=n_init, replace=False))
    labels = list(np.asarray(annotate(X_candidates[annotated]), dtype=np.float64))

    n_evaluated = []
    best_true = []
    best_so_far = float(true_times[annotated].min())
    for _ in range(n_iterations):
        model = RandomForestRegressor(n_estimators=n_estimators, seed=rng)
        model.fit(X_candidates[annotated], np.asarray(labels))
        remaining = np.setdiff1d(np.arange(n), np.asarray(annotated))
        pred = model.predict(X_candidates[remaining])
        pick = int(remaining[np.argmin(pred)])
        annotated.append(pick)
        labels.append(float(np.asarray(annotate(X_candidates[[pick]]))[0]))
        best_so_far = min(best_so_far, float(true_times[pick]))
        n_evaluated.append(len(annotated))
        best_true.append(best_so_far)

    best_idx = int(np.asarray(annotated)[np.argmin(true_times[annotated])])
    return TuningResult(
        annotator=annotator_name,
        n_evaluated=np.asarray(n_evaluated, dtype=np.intp),
        best_true_time=np.asarray(best_true, dtype=np.float64),
        best_config=X_candidates[best_idx].copy(),
    )
