/* Optional C hot path for presorted CART growth.
 *
 * Compiled on demand by repro/forest/_cgrower.py (plain `cc -shared`, no
 * Python headers needed) and driven through ctypes from
 * RegressionTree._grow_presorted.  The kernel only performs comparisons,
 * sequential prefix sums, and elementwise double arithmetic written in the
 * exact operand order of the numpy reference implementation
 * (repro/forest/splitter.py), so its results are bit-identical:
 *
 *  - prefix sums run left-to-right exactly like np.cumsum (which is a
 *    strict sequential fold, never pairwise);
 *  - the combined-SSE expression evaluates each elementwise operation in
 *    the same order as the reference ufunc chain, and the build flags
 *    forbid FMA contraction (-ffp-contract=off) so no two operations are
 *    fused into a differently-rounded one;
 *  - the argmin scan visits candidates position-major (position, then
 *    feature column) and keeps the first minimum, matching np.argmin over
 *    the reference (n_candidates, m) layout, including tie-breaks.
 *
 * Anything whose bit pattern depends on numpy internals that C cannot
 * cheaply replicate stays in Python: per-node target sums (np.sum's
 * pairwise/SIMD association, np.dot's BLAS kernel), the RNG feature draws,
 * and the final gain test (x ** 2 is not always x * x).  The kernel
 * therefore reports the winning column's sequential totals back to Python,
 * which makes the gain decision; the partition is performed optimistically
 * in the same call (its output is simply discarded on a failed gain test,
 * which costs nothing but a little wasted work on would-be leaves).
 */

#include <stdint.h>

typedef int64_t ip; /* numpy intp on LP64 platforms */

typedef struct {
    const double *XT;      /* (d, n) row-major: XT[f*n + i] = X[i, f] */
    const double *y;       /* (n,) training targets */
    unsigned char *inleft; /* (n,) zeroed scratch for stable partitioning */
    double *out_d;         /* [threshold, best_combined, total_sum, total_sq] */
    ip d;                  /* number of features (order has d+1 rows) */
    ip n;                  /* full training-sample size */
    ip msl;                /* min_samples_leaf */
} repro_ctx;

/* Packed-forest traversal: route every (tree, row) lane to its leaf.
 *
 * `feature`/`threshold`/`left`/`right` are the packed SoA node arrays
 * (global child ids, feature < 0 marks a leaf), `X` is the row-major
 * (n_rows, d) query matrix, `roots` lists the root node id of each of the
 * T trees to traverse.  Writes the global leaf id of lane (t, i) to
 * out[t*n_rows + i].  Pure comparisons — bit-identical to the numpy
 * level-synchronous loop by construction.
 */
void repro_traverse(const ip *feature, const double *threshold,
                    const ip *left, const ip *right, const double *X,
                    ip n_rows, ip d, const ip *roots, ip T, ip *out)
{
    for (ip t = 0; t < T; t++) {
        const ip root = roots[t];
        ip *out_t = out + t * n_rows;
        for (ip i = 0; i < n_rows; i++) {
            const double *row = X + i * d;
            ip node = root;
            ip f = feature[node];
            while (f >= 0) {
                node = (row[f] <= threshold[node]) ? left[node] : right[node];
                f = feature[node];
            }
            out_t[i] = node;
        }
    }
}

/* Best-split search + stable partition for one node.
 *
 * `order` holds d+1 rows of `stride` elements each; row f lists the node's
 * k sample indices in ascending X[:, f] order, and row d lists them in
 * ascending-id order.  `feats` selects the m candidate rows.
 *
 * Returns -1 when no value-boundary candidate exists.  Otherwise fills
 * ctx->out_d, and returns (feature << 32) | n_left where n_left counts
 * X[:, feature] <= threshold over the node.  When 0 < n_left < k each row
 * of `childbuf` (row stride k) is written as [left block | right block],
 * preserving within-row order; degenerate masks leave childbuf untouched.
 */
long repro_node(const repro_ctx *ctx, const ip *order, ip stride, ip k,
                const ip *feats, ip m, ip *childbuf)
{
    const double *XT = ctx->XT;
    const double *y = ctx->y;
    const ip n = ctx->n;
    const ip lo = ctx->msl;
    const ip hi = k - ctx->msl;
    int found = 0;
    double best = 0.0;
    ip best_pos = 0;
    ip best_col = 0;
    double best_tot_s = 0.0;
    double best_tot_q = 0.0;

    for (ip col = 0; col < m; col++) {
        const ip f = feats[col];
        const ip *ordf = order + f * stride;
        const double *Xf = XT + f * n;

        /* Sequential totals == csum[-1]/csq[-1] of the reference. */
        double tot_s = 0.0;
        double tot_q = 0.0;
        for (ip i = 0; i < k; i++) {
            const double yv = y[ordf[i]];
            const double sq = yv * yv;
            tot_s = tot_s + yv;
            tot_q = tot_q + sq;
        }

        /* Stream the prefixes; candidate split position i keeps the first
         * i sorted samples on the left and is valid only where the sorted
         * feature value changes. */
        double acc_s = 0.0;
        double acc_q = 0.0;
        for (ip i = 1; i <= hi; i++) {
            const double yv = y[ordf[i - 1]];
            const double sq = yv * yv;
            acc_s = acc_s + yv;
            acc_q = acc_q + sq;
            if (i < lo)
                continue;
            const double f_lo = Xf[ordf[i - 1]];
            const double f_hi = Xf[ordf[i]];
            if (f_hi == f_lo)
                continue;
            /* combined = (q_l - s_l*s_l/n_l) + (q_r - s_r*s_r/n_r),
             * evaluated in the reference's exact operation order. */
            const double nl = (double)i;
            const double nr = (double)k - nl;
            double t = acc_s * acc_s;
            t = t / nl;
            const double left_sse = acc_q - t;
            const double sr = tot_s - acc_s;
            double u = sr * sr;
            u = u / nr;
            const double qr = tot_q - acc_q;
            const double right_sse = qr - u;
            const double comb = left_sse + right_sse;
            const ip pos = i - lo;
            /* First minimum in (position, column) order == np.argmin over
             * the reference (n_candidates, m) block. */
            if (!found || comb < best || (comb == best && pos < best_pos)) {
                found = 1;
                best = comb;
                best_pos = pos;
                best_col = col;
                best_tot_s = tot_s;
                best_tot_q = tot_q;
            }
        }
    }
    if (!found)
        return -1;

    const ip f = feats[best_col];
    const ip *ordf = order + f * stride;
    const double *Xf = XT + f * n;
    const ip split_i = lo + best_pos;
    const double lo_val = Xf[ordf[split_i - 1]];
    const double hi_val = Xf[ordf[split_i]];
    double thr = 0.5 * (lo_val + hi_val);
    /* Midpoints of adjacent floats can collapse onto the upper value; the
     * left side must satisfy value <= thr < upper value. */
    if (!(lo_val <= thr && thr < hi_val))
        thr = lo_val;
    ctx->out_d[0] = thr;
    ctx->out_d[1] = best;
    ctx->out_d[2] = best_tot_s;
    ctx->out_d[3] = best_tot_q;

    const ip *idx = order + ctx->d * stride; /* row d: ascending sample ids */
    ip n_left = 0;
    for (ip i = 0; i < k; i++)
        n_left += (Xf[idx[i]] <= thr);
    if (n_left > 0 && n_left < k) {
        unsigned char *inleft = ctx->inleft;
        for (ip i = 0; i < k; i++)
            inleft[idx[i]] = (Xf[idx[i]] <= thr);
        const ip rows = ctx->d + 1;
        for (ip r = 0; r < rows; r++) {
            const ip *src = order + r * stride;
            ip *dstl = childbuf + r * k;
            ip *dstr = dstl + n_left;
            for (ip i = 0; i < k; i++) {
                const ip v = src[i];
                if (inleft[v])
                    *dstl++ = v;
                else
                    *dstr++ = v;
            }
        }
        for (ip i = 0; i < k; i++)
            inleft[idx[i]] = 0;
    }
    return (f << 32) | n_left;
}
