"""Uncertainty estimators for forest predictions.

The paper (Section II-B) uses the variance of the per-tree predictions as
the uncertainty of the forest prediction, citing Hutter et al. [14].  The
same reference also derives a *law of total variance* estimator that adds the
within-leaf variance of each tree; we provide both and compare them in the
``bench_ablation_uncertainty`` benchmark.
"""

from __future__ import annotations

import numpy as np

__all__ = ["across_tree_std", "total_variance_std"]


def across_tree_std(per_tree_predictions: np.ndarray) -> np.ndarray:
    """Standard deviation across trees (paper's estimator).

    Parameters
    ----------
    per_tree_predictions:
        Array of shape ``(n_trees, n_samples)``.
    """
    P = np.asarray(per_tree_predictions, dtype=np.float64)
    if P.ndim != 2:
        raise ValueError(f"expected (n_trees, n_samples), got shape {P.shape}")
    return P.std(axis=0)


def total_variance_std(
    leaf_means: np.ndarray, leaf_variances: np.ndarray
) -> np.ndarray:
    """Law-of-total-variance predictive std (Hutter et al., eq. for RF).

    .. math::
        \\operatorname{Var}[y] = \\mathbb E_b[\\sigma_b^2]
                                 + \\operatorname{Var}_b[\\mu_b]

    where :math:`\\mu_b, \\sigma_b^2` are the mean and variance of the leaf
    that tree *b* routes the query into.

    Parameters
    ----------
    leaf_means, leaf_variances:
        Arrays of shape ``(n_trees, n_samples)``.
    """
    M = np.asarray(leaf_means, dtype=np.float64)
    V = np.asarray(leaf_variances, dtype=np.float64)
    if M.shape != V.shape or M.ndim != 2:
        raise ValueError(
            f"leaf means/variances must share a 2-D shape, got {M.shape} vs {V.shape}"
        )
    total_var = V.mean(axis=0) + M.var(axis=0)
    return np.sqrt(np.maximum(total_var, 0.0))
