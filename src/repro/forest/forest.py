"""Bagging random-forest regressor with predictive uncertainty.

Implements the surrogate of Section II-B: bootstrap-aggregated CART trees
with a random feature subspace per split, mean prediction, and an
uncertainty estimate used by every sampling strategy.  Also supports the
"update partially" variant mentioned in Fig. 1 / Algorithm 1: instead of
refitting all trees on the enlarged training set, refresh only a fraction.

Inference goes through :class:`~repro.forest.packed.PackedForest`: the
query matrix is validated once at the forest level and all trees are
traversed in a single vectorised pass (the historical per-tree Python loop
re-validated the same matrix once per tree).  For pool scoring the forest
additionally keeps a per-tree prediction cache keyed by tree *generation*
(:meth:`predict_with_uncertainty_pool`), so a partial ``update()`` only
re-scores the refreshed trees.  All paths are bit-identical to the
per-tree reference — ``tests/test_trace_equivalence.py`` pins this.
"""

from __future__ import annotations

import numpy as np

from repro.forest.packed import PackedForest
from repro.forest.tree import RegressionTree
from repro.forest.uncertainty import across_tree_std, total_variance_std
from repro.rng import as_generator
from repro.telemetry import counters, span

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Random forest for regression with per-prediction uncertainty.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed through to each :class:`RegressionTree`.  ``max_features``
        defaults to ``"third"`` — Breiman's recommendation for regression and
        the setting used by Hutter et al. for runtime prediction.
    bootstrap:
        Draw a bootstrap resample per tree (bagging).  Disabling it removes
        the first of the forest's two randomness sources.
    uncertainty:
        ``"across_trees"`` (the paper's estimator: std of per-tree means) or
        ``"total_variance"`` (adds within-leaf variance).
    seed:
        Anything :func:`repro.rng.as_generator` accepts.
    presort:
        Passed to each tree: grow with the presorted splitter (default) or
        the per-node argsort reference path (trace-equivalent, slower).
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: "int | float | str | None" = "third",
        bootstrap: bool = True,
        uncertainty: str = "across_trees",
        seed=None,
        presort: bool = True,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if uncertainty not in ("across_trees", "total_variance"):
            raise ValueError(f"unknown uncertainty estimator: {uncertainty!r}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.uncertainty = uncertainty
        self.presort = presort
        self.rng = as_generator(seed)
        self.trees_: list[RegressionTree] = []
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._packed: PackedForest | None = None
        # Monotone per-tree generation stamps: bumped on every (re)fit of a
        # tree, compared by the pool-score cache to find stale entries.
        self._generation = 0
        self._tree_gens = np.zeros(n_estimators, dtype=np.int64)
        self._pool_cache: dict | None = None

    # -- fitting -----------------------------------------------------------
    def _fit_one_tree(self, X: np.ndarray, y: np.ndarray) -> RegressionTree:
        tree = RegressionTree(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=self.rng,
            presort=self.presort,
        )
        if self.bootstrap:
            idx = self.rng.integers(0, len(X), size=len(X))
            tree.fit(X[idx], y[idx])
        else:
            tree.fit(X, y)
        return tree

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit all trees from scratch on ``(X, y)``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        self._X, self._y = X.copy(), y.copy()
        with span("forest.fit", trees=self.n_estimators, n_train=len(y)):
            self.trees_ = [
                self._fit_one_tree(X, y) for _ in range(self.n_estimators)
            ]
        counters.inc("forest.trees_fit", self.n_estimators)
        self._packed = None
        self._generation += 1
        self._tree_gens[:] = self._generation
        return self

    def update(
        self, X_new: np.ndarray, y_new: np.ndarray, refresh_fraction: float = 1.0
    ) -> "RandomForestRegressor":
        """Append samples and refresh a fraction of the trees.

        ``refresh_fraction=1.0`` is equivalent to a full refit on the enlarged
        training set (the paper's default of constructing the forest "from
        scratch"); smaller fractions implement the "update it partially"
        variant: a random subset of trees is refit on the new training set,
        the others keep their (stale) structure.  At least one tree is always
        refreshed so new data is never silently dropped.
        """
        if self._X is None or self._y is None:
            return self.fit(X_new, y_new)
        if not 0.0 < refresh_fraction <= 1.0:
            raise ValueError(f"refresh_fraction must be in (0, 1], got {refresh_fraction}")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=np.float64))
        y_new = np.atleast_1d(np.asarray(y_new, dtype=np.float64))
        if len(X_new) != len(y_new):
            raise ValueError(f"X_new has {len(X_new)} rows but y_new has {len(y_new)}")
        self._X = np.vstack([self._X, X_new])
        self._y = np.concatenate([self._y, y_new])
        n_refresh = max(1, int(round(refresh_fraction * self.n_estimators)))
        which = self.rng.choice(self.n_estimators, size=n_refresh, replace=False)
        with span("forest.update", refreshed=n_refresh, n_train=len(self._y)):
            for t in which:
                self.trees_[t] = self._fit_one_tree(self._X, self._y)
        counters.inc("forest.trees_fit", n_refresh)
        self._packed = None
        self._generation += 1
        self._tree_gens[which] = self._generation
        return self

    # -- inference ------------------------------------------------------------
    def _require_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("forest is not fitted; call fit() first")

    def _check_query(self, X: np.ndarray) -> np.ndarray:
        """Validate/convert a query matrix once for the whole ensemble."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        n_features = self.trees_[0].n_features_
        if X.shape[1] != n_features:
            raise ValueError(
                f"query has {X.shape[1]} features, forest was fit on {n_features}"
            )
        return X

    def packed(self) -> PackedForest:
        """The ensemble's packed SoA form, rebuilt lazily after (re)fits."""
        self._require_fitted()
        if self._packed is None:
            self._packed = PackedForest.from_trees(self.trees_)
        return self._packed

    def per_tree_predictions(self, X: np.ndarray) -> np.ndarray:
        """Stacked per-tree mean predictions, shape ``(n_trees, n_samples)``."""
        return self.packed().predict_all(self._check_query(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Forest prediction: mean over trees."""
        return self.per_tree_predictions(X).mean(axis=0)

    def predict_with_uncertainty(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(mu, sigma)`` — prediction mean and uncertainty.

        This is the (μ, σ) pair every sampling strategy of the paper scores.
        """
        X = self._check_query(X)
        if self.uncertainty == "across_trees":
            P = self.packed().predict_all(X)
            return P.mean(axis=0), across_tree_std(P)
        M, V, _ = self.packed().leaf_stats_all(X)
        return M.mean(axis=0), total_variance_std(M, V)

    # -- pool scoring --------------------------------------------------------
    def _pool_stats(self, pool_X: np.ndarray, rows: np.ndarray) -> tuple:
        """Cached per-tree pool statistics sliced to ``rows``.

        The cache holds per-tree predictions (and leaf variances when the
        ``total_variance`` estimator needs them) for *every* row of
        ``pool_X``, stamped with each tree's generation.  A partial
        ``update()`` bumps only the refreshed trees' stamps, so the next
        call re-scores just those trees; rows removed from the pool are
        simply never requested again, so no eager invalidation is needed.
        The cache is keyed by the identity of ``pool_X`` (the pool matrix
        is immutable and lives for the whole run — see
        :class:`repro.space.DataPool`).
        """
        need_v = self.uncertainty == "total_variance"
        cache = self._pool_cache
        if cache is None or cache["ref"] is not pool_X or (
            need_v and cache["V"] is None
        ):
            counters.inc("forest.pool_cache.misses")
            with span("forest.pool_score", trees=self.n_estimators, full=1):
                Xv = self._check_query(pool_X)
                packed = self.packed()
                if need_v:
                    P, V, _ = packed.leaf_stats_all(Xv)
                else:
                    P = packed.predict_all(Xv)
                    V = None
            cache = self._pool_cache = {
                "ref": pool_X,
                "Xv": Xv,
                "P": P,
                "V": V,
                "gens": self._tree_gens.copy(),
            }
        else:
            counters.inc("forest.pool_cache.hits")
            stale = np.flatnonzero(cache["gens"] != self._tree_gens)
            if stale.size:
                counters.inc("forest.pool_cache.stale_trees", int(stale.size))
                with span("forest.pool_score", trees=int(stale.size), full=0):
                    packed = self.packed()
                    if need_v:
                        leaves = packed._descend(
                            cache["Xv"], packed.offsets[stale]
                        )
                        cache["P"][stale] = packed.value[leaves]
                        cache["V"][stale] = packed.variance[leaves]
                    else:
                        cache["P"][stale] = packed.predict_trees(
                            cache["Xv"], stale
                        )
                cache["gens"] = self._tree_gens.copy()
        # Fancy column-indexing yields an F-contiguous result, and axis-0
        # reductions associate differently over a contiguous reduction axis
        # (pairwise vs strided-sequential).  Force the C layout the uncached
        # per_tree_predictions path produces so results stay bit-identical.
        P = np.ascontiguousarray(cache["P"][:, rows])
        V = np.ascontiguousarray(cache["V"][:, rows]) if need_v else None
        return P, V

    def predict_pool(self, pool_X: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """``predict(pool_X[rows])`` through the pool-score cache."""
        self._require_fitted()
        rows = np.asarray(rows, dtype=np.intp)
        P, _ = self._pool_stats(pool_X, rows)
        return P.mean(axis=0)

    def predict_with_uncertainty_pool(
        self, pool_X: np.ndarray, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``predict_with_uncertainty(pool_X[rows])`` through the cache.

        Bit-identical to the uncached call: the cached per-tree values are
        produced by the same packed traversal, and the mean/std reductions
        act per column, so slicing rows does not change any result.
        """
        self._require_fitted()
        rows = np.asarray(rows, dtype=np.intp)
        P, V = self._pool_stats(pool_X, rows)
        if self.uncertainty == "across_trees":
            return P.mean(axis=0), across_tree_std(P)
        return P.mean(axis=0), total_variance_std(P, V)

    def feature_importances(self) -> np.ndarray:
        """Normalised mean impurity importance across trees."""
        self._require_fitted()
        imp = np.mean([t.impurity_importances() for t in self.trees_], axis=0)
        total = imp.sum()
        return imp / total if total > 0 else imp

    @property
    def n_training_samples(self) -> int:
        return 0 if self._y is None else len(self._y)

    @property
    def training_targets(self) -> np.ndarray:
        """Labels the forest was fit on (used by incumbent-based strategies)."""
        self._require_fitted()
        if self._y is None:
            raise RuntimeError("this forest holds no training data (loaded from disk?)")
        return self._y

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{len(self.trees_)} trees" if self.trees_ else "unfitted"
        return f"RandomForestRegressor({state}, n={self.n_training_samples})"
