"""Exact best-split search for regression trees (MSE criterion).

For a node with samples ``(X, y)`` and a candidate feature ``f`` the CART
criterion picks the threshold minimising

.. math:: SSE_L + SSE_R = \\sum_L (y - \\bar y_L)^2 + \\sum_R (y - \\bar y_R)^2

Using prefix sums of ``y`` and ``y^2`` over the feature-sorted node this is
:math:`SSE = \\sum y^2 - (\\sum y)^2 / n` per side.  The search is fully
vectorised *across candidate features as well as thresholds* and comes in
two entry points sharing one prefix-sum core:

* :func:`best_split` — argsorts the ``(n, m)`` candidate block per call.
  This is the reference implementation (kept for trace-equivalence testing
  and for callers without presorted state).
* :func:`best_split_presorted` — consumes per-feature index rows that the
  tree grower argsorted *once per tree* and maintains through stable
  partitioning, so the per-node cost drops from ``O(n m log n)`` to the
  ``O(n m)`` gather + prefix-sum sweep.  Both produce bit-identical splits:
  the sorted value/target sequences they feed the core are element-for-
  element equal (stable ties broken by ascending sample index in both).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = ["Split", "PresortSplit", "best_split", "best_split_presorted", "sse"]

#: Gains below this are treated as numerical noise, not real splits.
_MIN_GAIN = 1e-12


class Split(NamedTuple):
    """The outcome of a split search on one node."""

    feature: int
    threshold: float
    gain: float  # SSE reduction achieved by the split (>= 0)
    left_mask: np.ndarray  # boolean mask over the node's samples


class PresortSplit(NamedTuple):
    """A split found by :func:`best_split_presorted`.

    Carries no membership mask: the caller owns the sample bookkeeping and
    partitions its index arrays itself (``X[:, feature] <= threshold``).
    """

    feature: int
    threshold: float
    gain: float


def sse(y: np.ndarray) -> float:
    """Sum of squared errors of ``y`` around its mean (node impurity)."""
    y = np.asarray(y, dtype=np.float64)
    if len(y) == 0:
        return 0.0
    return float(np.sum(y * y) - (np.sum(y) ** 2) / len(y))


def _search_sorted_block(
    Fs: np.ndarray, Ys: np.ndarray, min_samples_leaf: int
) -> "tuple[int, float, float] | None":
    """Prefix-sum split search over a feature-sorted block.

    ``Fs``/``Ys`` are ``(n, m)``: column ``j`` holds the node's feature
    values / targets in ascending feature-``j`` order.  Returns
    ``(column, threshold, gain)`` for the best valid split, or ``None``.
    """
    n = len(Ys)
    lo, hi = min_samples_leaf, n - min_samples_leaf  # split position i: left=[0,i)
    if lo > hi:
        return None

    csum = np.cumsum(Ys, axis=0)
    csq = np.cumsum(Ys * Ys, axis=0)
    total_sum = csum[-1]  # (m,)
    total_sq = csq[-1]

    # Candidate positions i in [lo, hi]; left stats use row i-1 of prefixes.
    n_l = np.arange(lo, hi + 1, dtype=np.float64)[:, None]  # (k, 1)
    s_l = csum[lo - 1 : hi]  # (k, m)
    q_l = csq[lo - 1 : hi]
    n_r = n - n_l
    s_r = total_sum[None, :] - s_l
    q_r = total_sq[None, :] - q_l
    combined = (q_l - s_l * s_l / n_l) + (q_r - s_r * s_r / n_r)

    # A position is valid only where the sorted feature value changes.
    valid = Fs[lo : hi + 1] != Fs[lo - 1 : hi]
    if not valid.any():
        return None
    combined = np.where(valid, combined, np.inf)

    flat = int(np.argmin(combined))
    k, m = combined.shape
    pos, col = divmod(flat, m)
    best_combined = float(combined[pos, col])
    if not np.isfinite(best_combined):
        return None

    node_sse = float(total_sq[col] - total_sum[col] ** 2 / n)
    gain = node_sse - best_combined
    if gain <= _MIN_GAIN:
        return None

    i = lo + pos
    lo_val, hi_val = Fs[i - 1, col], Fs[i, col]
    threshold = 0.5 * (lo_val + hi_val)
    # Guard against midpoints collapsing onto the upper value for adjacent
    # floats: the left side must satisfy `value <= threshold < upper value`.
    if not (lo_val <= threshold < hi_val):
        threshold = lo_val
    return col, float(threshold), float(gain)


def best_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int = 1,
) -> Split | None:
    """Search ``feature_indices`` for the split with the largest SSE reduction.

    Returns ``None`` when no candidate feature admits a valid split
    (constant features, too few samples, or no positive gain).  Candidate
    thresholds are midpoints between consecutive distinct sorted values;
    both children must keep at least ``min_samples_leaf`` samples.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    feats = np.asarray(feature_indices, dtype=np.intp)
    n = len(y)
    if min_samples_leaf < 1:
        raise ValueError("min_samples_leaf must be >= 1")
    if n < 2 * min_samples_leaf or n < 2 or len(feats) == 0:
        return None

    F = X[:, feats]  # (n, m)
    order = np.argsort(F, axis=0, kind="stable")
    cols = np.arange(F.shape[1])[None, :]
    Fs = F[order, cols]  # fancy-indexed take_along_axis (lower overhead)
    Ys = y[order]  # (n, m): y re-sorted per feature column

    hit = _search_sorted_block(Fs, Ys, min_samples_leaf)
    if hit is None:
        return None
    col, threshold, gain = hit

    feature = int(feats[col])
    left_mask = X[:, feature] <= threshold
    if not left_mask.any() or left_mask.all():
        return None
    return Split(feature, threshold, gain, left_mask)


def best_split_presorted(
    X: np.ndarray,
    y: np.ndarray,
    sorted_idx: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int = 1,
) -> PresortSplit | None:
    """Split search over presorted per-feature index rows (no argsort).

    Parameters
    ----------
    X, y:
        The tree's *full* training sample; ``sorted_idx`` entries index
        into these.
    sorted_idx:
        ``(n_features, k)`` — row ``f`` lists the node's ``k`` sample
        indices in ascending ``X[:, f]`` order, ties broken by ascending
        index (what a stable argsort of the full sample produces and
        stable partitioning preserves).
    feature_indices:
        Candidate features for this node (rows of ``sorted_idx`` to search).
    """
    feats = np.asarray(feature_indices, dtype=np.intp)
    k = sorted_idx.shape[1]
    if min_samples_leaf < 1:
        raise ValueError("min_samples_leaf must be >= 1")
    if k < 2 * min_samples_leaf or k < 2 or len(feats) == 0:
        return None

    sub = sorted_idx[feats]  # (m, k) sample indices, feature-major
    Fs = X[sub.T, feats[None, :]]  # (k, m) sorted feature values
    Ys = y[sub.T]  # (k, m) targets in per-feature sorted order

    hit = _search_sorted_block(Fs, Ys, min_samples_leaf)
    if hit is None:
        return None
    col, threshold, gain = hit
    return PresortSplit(int(feats[col]), threshold, gain)
