"""Random-forest regression built from scratch.

The paper's surrogate is a random forest whose *across-tree prediction
variance* serves as the uncertainty estimate every sampling strategy consumes
(Section II-B, citing Hutter et al. [14]).  scikit-learn is not available in
this environment, and the forest is load-bearing for the method, so this
subpackage implements the full stack:

* :mod:`repro.forest.splitter` — vectorised exact CART split search (MSE
  criterion) with ``min_samples_leaf`` handling,
* :mod:`repro.forest.tree` — array-backed regression trees with iterative
  construction and vectorised prediction,
* :mod:`repro.forest.forest` — bagging ensemble with random feature
  subspaces, predictive mean / uncertainty, and warm partial updates,
* :mod:`repro.forest.packed` — all trees concatenated into one SoA,
  traversed for every (row, tree) lane in a single vectorised pass,
* :mod:`repro.forest.uncertainty` — across-tree std (the paper's estimator)
  and a law-of-total-variance alternative (ablation target),
* :mod:`repro.forest.importance` — impurity and permutation importances.
"""

from repro.forest.tree import RegressionTree
from repro.forest.packed import PackedForest
from repro.forest.forest import RandomForestRegressor
from repro.forest.importance import permutation_importance
from repro.forest.serialize import load_forest, save_forest

__all__ = [
    "RegressionTree",
    "PackedForest",
    "RandomForestRegressor",
    "permutation_importance",
    "save_forest",
    "load_forest",
]
