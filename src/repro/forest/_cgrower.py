"""Build and load the optional C split kernel for presorted tree growth.

The kernel (``_grower.c``) is a plain shared library — no Python or numpy
headers — compiled on demand with whatever C compiler the host provides
and driven through :mod:`ctypes`.  Everything is best-effort: missing
compiler, failed build, unwritable build directories, or the
``REPRO_PURE_NUMPY`` environment variable all make :func:`load` return
``None``, and tree growth falls back to the pure-numpy presorted path
(bit-identical, just slower).

Build artefacts are cached under ``_cbuild/`` next to this file (or the
system temp directory when the package is not writable), keyed by a hash
of the C source and compiler flags so stale libraries are never reused.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

__all__ = ["load", "Ctx"]

_SOURCE = Path(__file__).with_name("_grower.c")

#: -ffp-contract=off is load-bearing: FMA contraction would fuse the
#: kernel's multiply/add chains into differently-rounded operations and
#: break bit-identity with the numpy reference.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

_lib: "ctypes.CDLL | None" = None
_attempted = False


class Ctx(ctypes.Structure):
    """Per-tree constants shared by every kernel call (mirrors ``repro_ctx``)."""

    _fields_ = [
        ("XT", ctypes.c_void_p),
        ("y", ctypes.c_void_p),
        ("inleft", ctypes.c_void_p),
        ("out_d", ctypes.c_void_p),
        ("d", ctypes.c_int64),
        ("n", ctypes.c_int64),
        ("msl", ctypes.c_int64),
    ]


def _configure(lib: ctypes.CDLL) -> None:
    ip = ctypes.c_int64
    lib.repro_node.restype = ctypes.c_int64
    lib.repro_node.argtypes = [
        ctypes.POINTER(Ctx),  # ctx
        ctypes.c_void_p,      # order
        ip,                   # stride
        ip,                   # k
        ctypes.c_void_p,      # feats
        ip,                   # m
        ctypes.c_void_p,      # childbuf
    ]
    lib.repro_traverse.restype = None
    lib.repro_traverse.argtypes = [
        ctypes.c_void_p,  # feature
        ctypes.c_void_p,  # threshold
        ctypes.c_void_p,  # left
        ctypes.c_void_p,  # right
        ctypes.c_void_p,  # X
        ip,               # n_rows
        ip,               # d
        ctypes.c_void_p,  # roots
        ip,               # T
        ctypes.c_void_p,  # out
    ]


def _build(so_path: Path) -> None:
    so_path.parent.mkdir(parents=True, exist_ok=True)
    # Unique temp name + atomic rename so concurrent builders cannot load a
    # half-written library.
    tmp = so_path.with_name(f".{so_path.name}.{os.getpid()}.tmp")
    for compiler in ("cc", "gcc", "clang"):
        try:
            subprocess.run(
                [compiler, *_CFLAGS, "-o", str(tmp), str(_SOURCE)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so_path)
            return
        except (OSError, subprocess.SubprocessError):
            tmp.unlink(missing_ok=True)
            continue
    raise RuntimeError("no working C compiler found")


def load() -> "ctypes.CDLL | None":
    """Return the configured kernel library, or ``None`` when unavailable."""
    global _lib, _attempted
    if _attempted:
        return _lib
    # repro: allow[SPAWN001] per-process lazy-load latch; each process probes the compiler once
    _attempted = True
    if os.environ.get("REPRO_PURE_NUMPY"):
        return None
    if ctypes.sizeof(ctypes.c_void_p) != 8:
        return None  # the kernel assumes LP64 (numpy intp == int64)
    try:
        source = _SOURCE.read_text()
    except OSError:
        return None
    tag = hashlib.sha256((source + " ".join(_CFLAGS)).encode()).hexdigest()[:16]
    candidates = (
        Path(__file__).parent / "_cbuild",
        Path(tempfile.gettempdir()) / "repro-cbuild",
    )
    for base in candidates:
        so_path = base / f"grower-{tag}.so"
        try:
            if not so_path.exists():
                _build(so_path)
            lib = ctypes.CDLL(str(so_path))
            _configure(lib)
            # repro: allow[SPAWN001] per-process ctypes handle; processes never share it
            _lib = lib
            return _lib
        # repro: allow[EXC001] fall through to the next build candidate; total failure means the numpy fallback
        except Exception:
            continue
    return None
