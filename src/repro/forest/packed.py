"""Packed-forest inference: all trees in one structure-of-arrays.

:class:`~repro.forest.forest.RandomForestRegressor` historically predicted
with a Python loop over trees — 30 traversals per call, each re-validating
the same query matrix.  :class:`PackedForest` concatenates every tree's
flat node arrays (feature/threshold/left/right/value/variance/count/
impurity) into one SoA with per-tree root offsets and child links rebased
to *global* node ids, then descends all ``n_rows × n_trees`` lanes together
in a single level-synchronous loop.  Routing decisions are the same
``X[row, feature] <= threshold`` comparisons the per-tree code makes, and
leaf payloads are the trees' own arrays concatenated, so every prediction
is bit-identical to the per-tree reference — the trace-equivalence suite
pins this.

The packed form is also the serialisation format (see
:mod:`repro.forest.serialize`): eight arrays plus the offsets vector
round-trip the whole ensemble, and :meth:`PackedForest.to_trees` slices
individual :class:`~repro.forest.tree.RegressionTree` objects back out.
"""

from __future__ import annotations

import numpy as np

from repro.forest import _cgrower
from repro.telemetry import counters, span

__all__ = ["PackedForest"]

_LEAF = -1

#: Node-array fields concatenated into the SoA, in serialisation order.
FIELDS = (
    "feature",
    "threshold",
    "left",
    "right",
    "value",
    "variance",
    "count",
    "impurity",
)


class PackedForest:
    """Concatenated node arrays of a fitted forest.

    Parameters are the already-concatenated arrays; ``offsets`` has
    ``n_trees + 1`` entries with ``offsets[t]`` the global id of tree
    ``t``'s root and ``offsets[-1]`` the total node count.  ``left``/
    ``right`` hold *global* child ids for internal nodes and ``-1`` for
    leaves.  Use :meth:`from_trees` to build one from fitted trees.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        variance: np.ndarray,
        count: np.ndarray,
        impurity: np.ndarray,
        offsets: np.ndarray,
        n_features: int,
    ) -> None:
        # Contiguity matters: the C traversal kernel reads raw pointers.
        self.feature = np.ascontiguousarray(feature, dtype=np.intp)
        self.threshold = np.ascontiguousarray(threshold, dtype=np.float64)
        self.left = np.ascontiguousarray(left, dtype=np.intp)
        self.right = np.ascontiguousarray(right, dtype=np.intp)
        self.value = np.ascontiguousarray(value, dtype=np.float64)
        self.variance = np.ascontiguousarray(variance, dtype=np.float64)
        self.count = np.ascontiguousarray(count, dtype=np.intp)
        self.impurity = np.ascontiguousarray(impurity, dtype=np.float64)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.intp)
        self.n_features = int(n_features)
        if self.offsets.ndim != 1 or len(self.offsets) < 2:
            raise ValueError("offsets must hold n_trees + 1 entries")
        if self.offsets[-1] != len(self.feature):
            raise ValueError(
                f"offsets end at {self.offsets[-1]} but there are "
                f"{len(self.feature)} nodes"
            )

    # -- construction ------------------------------------------------------
    @classmethod
    def from_trees(cls, trees) -> "PackedForest":
        """Pack a non-empty sequence of fitted :class:`RegressionTree`."""
        if not trees:
            raise ValueError("cannot pack an empty forest")
        sizes = [len(t.feature_) for t in trees]
        offsets = np.zeros(len(trees) + 1, dtype=np.intp)
        np.cumsum(sizes, out=offsets[1:])
        feature = np.concatenate([t.feature_ for t in trees])
        threshold = np.concatenate([t.threshold_ for t in trees])
        value = np.concatenate([t.value_ for t in trees])
        variance = np.concatenate([t.variance_ for t in trees])
        count = np.concatenate([t.count_ for t in trees])
        impurity = np.concatenate([t.impurity_ for t in trees])
        # Rebase child links to global node ids; leaves keep -1.
        left = np.concatenate(
            [np.where(t.left_ >= 0, t.left_ + off, _LEAF)
             for t, off in zip(trees, offsets[:-1])]
        )
        right = np.concatenate(
            [np.where(t.right_ >= 0, t.right_ + off, _LEAF)
             for t, off in zip(trees, offsets[:-1])]
        )
        return cls(
            feature, threshold, left, right, value, variance, count,
            impurity, offsets, trees[0].n_features_,
        )

    def to_trees(self):
        """Slice per-tree :class:`RegressionTree` objects back out.

        The returned trees carry the exact node arrays they were packed
        from (child links rebased back to local ids) and are ready for
        prediction; they hold no growth hyper-parameters.
        """
        from repro.forest.tree import RegressionTree

        trees = []
        for t in range(self.n_trees):
            a, b = int(self.offsets[t]), int(self.offsets[t + 1])
            tree = RegressionTree()
            tree.feature_ = self.feature[a:b].copy()
            tree.threshold_ = self.threshold[a:b].copy()
            tree.left_ = np.where(
                self.left[a:b] >= 0, self.left[a:b] - a, _LEAF
            ).astype(np.intp)
            tree.right_ = np.where(
                self.right[a:b] >= 0, self.right[a:b] - a, _LEAF
            ).astype(np.intp)
            tree.value_ = self.value[a:b].copy()
            tree.variance_ = self.variance[a:b].copy()
            tree.count_ = self.count[a:b].copy()
            tree.impurity_ = self.impurity[a:b].copy()
            tree.n_features_ = self.n_features
            tree._fitted = True
            trees.append(tree)
        return trees

    # -- introspection -----------------------------------------------------
    @property
    def n_trees(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    def arrays(self) -> dict[str, np.ndarray]:
        """The SoA fields by name (serialisation helper)."""
        return {name: getattr(self, name) for name in FIELDS}

    # -- traversal ---------------------------------------------------------
    def _descend(self, X: np.ndarray, roots: np.ndarray) -> np.ndarray:
        """Route every (tree, row) lane to its leaf; returns global leaf ids.

        ``X`` must already be validated/converted (the forest does this once
        per call — that is the point).  Lanes are tree-major: the result has
        shape ``(len(roots), len(X))``.  Routing is pure comparisons, so the
        C kernel (when available) and the numpy level-synchronous loop are
        bit-identical; the numpy loop compacts the lane set to the
        still-internal lanes each level, so its per-level cost shrinks with
        depth.
        """
        counters.inc("forest.trees_traversed", len(roots))
        with span("forest.traverse", trees=len(roots), rows=X.shape[0]):
            return self._descend_inner(X, roots)

    def _descend_inner(self, X: np.ndarray, roots: np.ndarray) -> np.ndarray:
        lib = _cgrower.load()
        if lib is not None:
            T = len(roots)
            Xc = np.ascontiguousarray(X)
            roots_c = np.ascontiguousarray(roots, dtype=np.intp)
            out = np.empty((T, Xc.shape[0]), dtype=np.intp)
            lib.repro_traverse(
                self.feature.ctypes.data, self.threshold.ctypes.data,
                self.left.ctypes.data, self.right.ctypes.data,
                Xc.ctypes.data, Xc.shape[0], Xc.shape[1],
                roots_c.ctypes.data, T, out.ctypes.data,
            )
            return out
        n = X.shape[0]
        n_lanes = len(roots) * n
        out = np.empty(n_lanes, dtype=np.intp)
        lane = np.arange(n_lanes, dtype=np.intp)
        node = np.repeat(roots, n)
        col = np.tile(np.arange(n, dtype=np.intp), len(roots))
        feature = self.feature
        threshold = self.threshold
        left = self.left
        right = self.right
        while node.size:
            f = feature[node]
            at_leaf = f < 0
            if at_leaf.any():
                out[lane[at_leaf]] = node[at_leaf]
                keep = ~at_leaf
                node = node[keep]
                lane = lane[keep]
                col = col[keep]
                f = f[keep]
                if not node.size:
                    break
            go_left = X[col, f] <= threshold[node]
            node = np.where(go_left, left[node], right[node])
        return out.reshape(len(roots), n)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Global leaf id reached by each (tree, row) lane, ``(T, n)``."""
        return self._descend(X, self.offsets[:-1])

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """Per-tree mean predictions, shape ``(n_trees, n_rows)``."""
        return self.value[self.apply(X)]

    def leaf_stats_all(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-tree leaf ``(mean, variance, count)``, each ``(T, n)``."""
        leaves = self.apply(X)
        return self.value[leaves], self.variance[leaves], self.count[leaves]

    def predict_trees(self, X: np.ndarray, tree_ids: np.ndarray) -> np.ndarray:
        """Mean predictions of a tree subset, ``(len(tree_ids), n_rows)``.

        Used by the pool-score cache to re-score only the trees a partial
        :meth:`~repro.forest.forest.RandomForestRegressor.update` refreshed.
        """
        tree_ids = np.asarray(tree_ids, dtype=np.intp)
        return self.value[self._descend(X, self.offsets[tree_ids])]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedForest({self.n_trees} trees, {self.n_nodes} nodes)"
