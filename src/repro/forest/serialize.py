"""Forest persistence.

The paper's workflow separates model *construction* (expensive: real
measurements) from model *use* (surrogate-annotated tuning, Fig. 8).  In
practice those happen in different processes, so the fitted forest must
survive a round trip to disk.

Format version 2 stores the ensemble in its packed SoA form
(:class:`~repro.forest.packed.PackedForest`): eight concatenated node
arrays plus the per-tree offsets vector, instead of version 1's eight
arrays *per tree*.  Loading re-slices the per-tree views lazily and hands
the packed form straight to the forest, so a loaded model predicts without
ever rebuilding it.  Version-1 files remain readable.
"""

from __future__ import annotations

import numpy as np

from repro.envelope import EnvelopeError, describe_file, read_npz_payload, require_keys
from repro.forest.forest import RandomForestRegressor
from repro.forest.packed import FIELDS, PackedForest
from repro.forest.tree import RegressionTree

__all__ = ["save_forest", "load_forest", "forest_payload", "forest_from_payload"]

_FORMAT_VERSION = 2

_TREE_FIELDS = (
    "feature_",
    "threshold_",
    "left_",
    "right_",
    "value_",
    "variance_",
    "count_",
    "impurity_",
)


def forest_payload(model: RandomForestRegressor) -> dict[str, np.ndarray]:
    """The format-2 npz payload for a fitted forest, as a flat dict.

    Shared between :func:`save_forest` and the surrogate-protocol
    adapter (:mod:`repro.surrogate`), whose envelopes embed the same
    arrays.
    """
    if not model.trees_:
        raise ValueError("cannot save an unfitted forest")
    packed = model.packed()
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "n_features": np.asarray(packed.n_features),
        "uncertainty": np.asarray(model.uncertainty),
        "offsets": packed.offsets,
    }
    for name, arr in packed.arrays().items():
        payload[f"packed_{name}"] = arr
    return payload


def save_forest(model: RandomForestRegressor, path: str) -> None:
    """Serialise a fitted forest to ``path`` (``.npz``), packed form."""
    np.savez_compressed(path, **forest_payload(model))


def _load_v1(data) -> list[RegressionTree]:
    n_trees = int(data["n_trees"])
    n_features = int(data["n_features"])
    trees = []
    for i in range(n_trees):
        tree = RegressionTree()
        for field in _TREE_FIELDS:
            setattr(tree, field, data[f"tree{i}_{field}"])
        tree.n_features_ = n_features
        tree._fitted = True
        trees.append(tree)
    return trees


def forest_from_payload(data) -> RandomForestRegressor:
    """Rebuild a forest from a format-1/2 payload mapping (dict or npz)."""
    version = int(data["format_version"])
    uncertainty = str(data["uncertainty"])
    if version == 1:
        trees = _load_v1(data)
        model = RandomForestRegressor(
            n_estimators=len(trees), uncertainty=uncertainty
        )
        model.trees_ = trees
        return model
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported forest format version {version} "
            f"(this build reads <= {_FORMAT_VERSION})"
        )
    packed = PackedForest(
        *(np.asarray(data[f"packed_{name}"]) for name in FIELDS),
        offsets=np.asarray(data["offsets"]),
        n_features=int(data["n_features"]),
    )
    model = RandomForestRegressor(
        n_estimators=packed.n_trees, uncertainty=uncertainty
    )
    model.trees_ = packed.to_trees()
    model._packed = packed
    return model


#: What a forest loader expects, embedded in every EnvelopeError it raises.
_EXPECTED = (
    f"a repro forest .npz (format_version <= {_FORMAT_VERSION}, "
    "packed node arrays; see repro.forest.serialize)"
)


def load_forest(path: str) -> RandomForestRegressor:
    """Load a forest saved by :func:`save_forest` (format 1 or 2).

    The returned model predicts (with uncertainty) but holds no training
    data, so it cannot be :meth:`~RandomForestRegressor.update`-d; refit
    from data if you need to keep learning.  Missing, truncated, or
    foreign files raise a typed :class:`~repro.envelope.EnvelopeError`
    naming the file and the expected schema (never a raw
    ``zipfile.BadZipFile`` or ``KeyError``).
    """
    source = describe_file(path)
    payload = read_npz_payload(path, _EXPECTED)
    require_keys(payload, ("format_version",), source, _EXPECTED)
    try:
        return forest_from_payload(payload)
    except KeyError as exc:
        raise EnvelopeError(
            source, _EXPECTED, f"archive is missing required key {exc.args[0]!r}"
        ) from None
