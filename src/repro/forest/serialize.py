"""Forest persistence.

The paper's workflow separates model *construction* (expensive: real
measurements) from model *use* (surrogate-annotated tuning, Fig. 8).  In
practice those happen in different processes, so the fitted forest must
survive a round trip to disk.  Trees are flat arrays already; the whole
ensemble serialises to one compressed ``.npz``.
"""

from __future__ import annotations

import numpy as np

from repro.forest.forest import RandomForestRegressor
from repro.forest.tree import RegressionTree

__all__ = ["save_forest", "load_forest"]

_FORMAT_VERSION = 1

_TREE_FIELDS = (
    "feature_",
    "threshold_",
    "left_",
    "right_",
    "value_",
    "variance_",
    "count_",
    "impurity_",
)


def save_forest(model: RandomForestRegressor, path: str) -> None:
    """Serialise a fitted forest to ``path`` (``.npz``)."""
    if not model.trees_:
        raise ValueError("cannot save an unfitted forest")
    payload: dict[str, np.ndarray] = {
        "format_version": np.asarray(_FORMAT_VERSION),
        "n_trees": np.asarray(len(model.trees_)),
        "n_features": np.asarray(model.trees_[0].n_features_),
        "uncertainty": np.asarray(model.uncertainty),
    }
    for i, tree in enumerate(model.trees_):
        for field in _TREE_FIELDS:
            payload[f"tree{i}_{field}"] = getattr(tree, field)
    np.savez_compressed(path, **payload)


def load_forest(path: str) -> RandomForestRegressor:
    """Load a forest saved by :func:`save_forest`.

    The returned model predicts (with uncertainty) but holds no training
    data, so it cannot be :meth:`~RandomForestRegressor.update`-d; refit
    from data if you need to keep learning.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported forest format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        n_trees = int(data["n_trees"])
        n_features = int(data["n_features"])
        uncertainty = str(data["uncertainty"])
        model = RandomForestRegressor(
            n_estimators=n_trees, uncertainty=uncertainty
        )
        trees = []
        for i in range(n_trees):
            tree = RegressionTree()
            for field in _TREE_FIELDS:
                setattr(tree, field, data[f"tree{i}_{field}"])
            tree.n_features_ = n_features
            tree._fitted = True
            trees.append(tree)
        model.trees_ = trees
    return model
