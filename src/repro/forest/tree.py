"""Array-backed CART regression tree.

Construction is iterative (explicit stack) to avoid recursion limits and to
keep node bookkeeping in flat arrays; prediction descends all query rows
through the tree simultaneously, one level per vectorised step.
"""

from __future__ import annotations

import numpy as np

from repro.forest.splitter import best_split

__all__ = ["RegressionTree"]

_LEAF = -1


class RegressionTree:
    """A single regression tree (MSE criterion).

    Parameters
    ----------
    max_depth:
        Depth limit; ``None`` grows until purity / sample limits.
    min_samples_split:
        Smallest node that may be split further.
    min_samples_leaf:
        Smallest admissible child size.
    max_features:
        Features considered per split: ``None``/"all" (every feature),
        ``"sqrt"``, ``"third"`` (Breiman's regression default p/3), an int
        count, or a float fraction.
    rng:
        Generator used for per-node feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: "int | float | str | None" = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None)")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self._fitted = False

    # -- configuration -----------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None or mf == "all":
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "third":
            return max(1, n_features // 3)
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction must be in (0, 1], got {mf}")
            return max(1, int(round(mf * n_features)))
        if isinstance(mf, int):
            if not 1 <= mf <= n_features:
                raise ValueError(
                    f"max_features={mf} out of range [1, {n_features}]"
                )
            return mf
        raise ValueError(f"unrecognised max_features: {mf!r}")

    # -- fitting -------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Grow the tree on ``(X, y)``; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        if not np.isfinite(X).all() or not np.isfinite(y).all():
            raise ValueError("X and y must be finite")

        n, d = X.shape
        m = self._n_split_features(d)

        # Growable flat node storage.
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        variance: list[float] = []
        count: list[int] = []
        impurity: list[float] = []

        def new_node() -> int:
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(0.0)
            variance.append(0.0)
            count.append(0)
            impurity.append(0.0)
            return len(feature) - 1

        root = new_node()
        # Stack of (node_id, sample_indices, depth).
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
        while stack:
            node, idx, depth = stack.pop()
            y_node = y[idx]
            # Mean/variance/SSE from one pass (Σy, Σy²): this is the hot
            # loop of forest construction, numpy reduction wrappers are
            # too heavy here.
            k = len(idx)
            s = float(y_node.sum())
            q = float(np.dot(y_node, y_node))
            mean = s / k
            value[node] = mean
            variance[node] = max(q / k - mean * mean, 0.0)
            count[node] = k
            impurity[node] = max(q - s * s / k, 0.0)

            if (
                k < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or impurity[node] <= 1e-12
            ):
                continue

            if m >= d:
                feats = np.arange(d)
            else:
                feats = self.rng.choice(d, size=m, replace=False)
            split = best_split(X[idx], y_node, feats, self.min_samples_leaf)
            if split is None:
                continue

            feature[node] = split.feature
            threshold[node] = split.threshold
            li = new_node()
            ri = new_node()
            left[node] = li
            right[node] = ri
            stack.append((li, idx[split.left_mask], depth + 1))
            stack.append((ri, idx[~split.left_mask], depth + 1))

        self.n_features_ = d
        self.feature_ = np.asarray(feature, dtype=np.intp)
        self.threshold_ = np.asarray(threshold, dtype=np.float64)
        self.left_ = np.asarray(left, dtype=np.intp)
        self.right_ = np.asarray(right, dtype=np.intp)
        self.value_ = np.asarray(value, dtype=np.float64)
        self.variance_ = np.asarray(variance, dtype=np.float64)
        self.count_ = np.asarray(count, dtype=np.intp)
        self.impurity_ = np.asarray(impurity, dtype=np.float64)
        self._fitted = True
        return self

    # -- inference ------------------------------------------------------------
    def _check_query(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("tree is not fitted; call fit() first")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"query has {X.shape[1]} features, tree was fit on {self.n_features_}"
            )
        return X

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each query row."""
        X = self._check_query(X)
        node = np.zeros(len(X), dtype=np.intp)
        active = self.feature_[node] != _LEAF
        while active.any():
            act_nodes = node[active]
            go_left = (
                X[active, self.feature_[act_nodes]] <= self.threshold_[act_nodes]
            )
            nxt = np.where(go_left, self.left_[act_nodes], self.right_[act_nodes])
            node[active] = nxt
            active = self.feature_[node] != _LEAF
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean training target of the leaf each row falls into."""
        leaves = self.apply(X)
        return self.value_[leaves]

    def leaf_stats(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(mean, variance, count) of the reached leaf for each row."""
        leaves = self.apply(X)
        return self.value_[leaves], self.variance_[leaves], self.count_[leaves]

    # -- introspection -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        self._require_fitted()
        return len(self.feature_)

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        return int((self.feature_ == _LEAF).sum())

    def depth(self) -> int:
        """Maximum root-to-leaf depth of the fitted tree."""
        self._require_fitted()
        depths = np.zeros(self.n_nodes, dtype=np.intp)
        # Nodes are created parent-before-children, so one forward pass works.
        for i in range(self.n_nodes):
            if self.feature_[i] != _LEAF:
                depths[self.left_[i]] = depths[i] + 1
                depths[self.right_[i]] = depths[i] + 1
        return int(depths.max())

    def impurity_importances(self) -> np.ndarray:
        """Total SSE reduction credited to each feature (unnormalised)."""
        self._require_fitted()
        imp = np.zeros(self.n_features_, dtype=np.float64)
        internal = np.flatnonzero(self.feature_ != _LEAF)
        for i in internal:
            gain = self.impurity_[i] - (
                self.impurity_[self.left_[i]] + self.impurity_[self.right_[i]]
            )
            imp[self.feature_[i]] += max(gain, 0.0)
        return imp

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("tree is not fitted; call fit() first")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._fitted:
            return "RegressionTree(unfitted)"
        return f"RegressionTree({self.n_nodes} nodes, {self.n_leaves} leaves)"
