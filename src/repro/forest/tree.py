"""Array-backed CART regression tree.

Construction is iterative (explicit stack) to avoid recursion limits and to
keep node bookkeeping in flat arrays; prediction descends all query rows
through the tree simultaneously, one level per vectorised step.

Growth comes in two trace-equivalent flavours selected by ``presort``:

* ``presort=True`` (default) argsorts each feature of the training sample
  *once per tree* and maintains per-feature sorted index rows through
  stable mask-partitioning at every split, so each node pays only a gather
  and a prefix-sum sweep (:func:`~repro.forest.splitter.best_split_presorted`).
* ``presort=False`` is the reference grower: a fresh ``(n, m)`` argsort per
  node (:func:`~repro.forest.splitter.best_split`).

Both consume the node RNG identically and produce bit-identical trees —
the trace-equivalence suite (``tests/test_trace_equivalence.py``) pins this.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.forest import _cgrower
from repro.forest.splitter import best_split

__all__ = ["RegressionTree"]

_LEAF = -1


class RegressionTree:
    """A single regression tree (MSE criterion).

    Parameters
    ----------
    max_depth:
        Depth limit; ``None`` grows until purity / sample limits.
    min_samples_split:
        Smallest node that may be split further.
    min_samples_leaf:
        Smallest admissible child size.
    max_features:
        Features considered per split: ``None``/"all" (every feature),
        ``"sqrt"``, ``"third"`` (Breiman's regression default p/3), an int
        count, or a float fraction.
    rng:
        Generator used for per-node feature subsampling.
    presort:
        Use the presorted grower (one stable argsort per feature per tree,
        partitioned down the tree) instead of re-argsorting every node.
        Trace-equivalent; ``False`` keeps the reference path for tests and
        benchmarking.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: "int | float | str | None" = None,
        rng: np.random.Generator | None = None,
        presort: bool = True,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 (or None)")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self.presort = presort
        self._fitted = False

    # -- configuration -----------------------------------------------------
    def _n_split_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None or mf == "all":
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "third":
            return max(1, n_features // 3)
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction must be in (0, 1], got {mf}")
            return max(1, int(round(mf * n_features)))
        if isinstance(mf, int):
            if not 1 <= mf <= n_features:
                raise ValueError(
                    f"max_features={mf} out of range [1, {n_features}]"
                )
            return mf
        raise ValueError(f"unrecognised max_features: {mf!r}")

    # -- fitting -------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Grow the tree on ``(X, y)``; returns ``self``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        if not np.isfinite(X).all() or not np.isfinite(y).all():
            raise ValueError("X and y must be finite")

        n, d = X.shape
        m = self._n_split_features(d)
        presort = self.presort

        # Growable flat node storage.
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        variance: list[float] = []
        count: list[int] = []
        impurity: list[float] = []

        def new_node() -> int:
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(0.0)
            variance.append(0.0)
            count.append(0)
            impurity.append(0.0)
            return len(feature) - 1

        root = new_node()
        if presort:
            self._grow_presorted(
                X, y, n, d, m, feature, threshold, left, right,
                value, variance, count, impurity, new_node,
            )
        else:
            stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
            while stack:
                node, idx, depth = stack.pop()
                y_node = y[idx]
                # Mean/variance/SSE from one pass (Σy, Σy²): this is the hot
                # loop of forest construction, numpy reduction wrappers are
                # too heavy here.
                k = len(idx)
                s = float(y_node.sum())
                q = float(np.dot(y_node, y_node))
                mean = s / k
                value[node] = mean
                variance[node] = max(q / k - mean * mean, 0.0)
                count[node] = k
                impurity[node] = max(q - s * s / k, 0.0)

                if (
                    k < self.min_samples_split
                    or (self.max_depth is not None and depth >= self.max_depth)
                    or impurity[node] <= 1e-12
                ):
                    continue

                if m >= d:
                    feats = np.arange(d)
                else:
                    feats = self.rng.choice(d, size=m, replace=False)

                split = best_split(X[idx], y_node, feats, self.min_samples_leaf)
                if split is None:
                    continue
                feature[node] = split.feature
                threshold[node] = split.threshold
                li = new_node()
                ri = new_node()
                left[node] = li
                right[node] = ri
                stack.append((li, idx[split.left_mask], depth + 1))
                stack.append((ri, idx[~split.left_mask], depth + 1))

        self.n_features_ = d
        self.feature_ = np.asarray(feature, dtype=np.intp)
        self.threshold_ = np.asarray(threshold, dtype=np.float64)
        self.left_ = np.asarray(left, dtype=np.intp)
        self.right_ = np.asarray(right, dtype=np.intp)
        self.value_ = np.asarray(value, dtype=np.float64)
        self.variance_ = np.asarray(variance, dtype=np.float64)
        self.count_ = np.asarray(count, dtype=np.intp)
        self.impurity_ = np.asarray(impurity, dtype=np.float64)
        self._fitted = True
        return self

    def _grow_presorted(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n: int,
        d: int,
        m: int,
        feature: list,
        threshold: list,
        left: list,
        right: list,
        value: list,
        variance: list,
        count: list,
        impurity: list,
        new_node,
    ) -> None:
        """Presorted DFS growth — the hot path of forest construction.

        Dispatches to the C split kernel when available (built on demand by
        :mod:`repro.forest._cgrower`) and otherwise to the fused numpy
        loop.  Both are trace-equivalent to the reference branch of
        :meth:`fit`: same RNG calls in the same order, bit-identical node
        arrays.
        """
        lib = _cgrower.load()
        if lib is not None:
            self._grow_presorted_c(
                lib, X, y, n, d, m, feature, threshold, left, right,
                value, variance, count, impurity, new_node,
            )
        else:
            self._grow_presorted_numpy(
                X, y, n, d, m, feature, threshold, left, right,
                value, variance, count, impurity, new_node,
            )

    def _grow_presorted_c(
        self,
        lib,
        X: np.ndarray,
        y: np.ndarray,
        n: int,
        d: int,
        m: int,
        feature: list,
        threshold: list,
        left: list,
        right: list,
        value: list,
        variance: list,
        count: list,
        impurity: list,
        new_node,
    ) -> None:
        """Presorted growth driven by the C split kernel.

        Per node, Python keeps exactly the work whose bit pattern depends
        on numpy internals the kernel cannot replicate — the target-sum
        statistics (np.sum's pairwise association, np.dot's BLAS kernel),
        the RNG feature draw, and the gain test (``float ** 2`` is not
        always ``x * x``; Python and np.float64 pow do agree bit-for-bit)
        — and hands the prefix-sum search plus the stable partition to a
        single C call.  The partition is optimistic: on a failed gain test
        its output is simply dropped.  ``childbuf`` rows come back packed
        as ``[left block | right block]``, so the children are described by
        raw base pointers carried on the stack as plain ints (avoiding
        per-node ``.ctypes``/``.strides`` attribute costs); the ascending
        index row (row ``d``) is kept as a real view, which also keeps the
        buffer alive.
        """
        XT = np.ascontiguousarray(X.T)
        y = np.ascontiguousarray(y)
        order0 = np.concatenate(
            [
                np.argsort(XT, axis=1, kind="stable"),
                np.arange(n, dtype=np.intp)[None, :],
            ]
        )
        inleft = np.zeros(n, dtype=np.uint8)
        out_d = np.zeros(4, dtype=np.float64)
        ctx = _cgrower.Ctx(
            XT.ctypes.data, y.ctypes.data, inleft.ctypes.data,
            out_d.ctypes.data, d, n, self.min_samples_leaf,
        )
        ctxref = ctypes.byref(ctx)
        node_call = lib.repro_node
        out_list = out_d.tolist
        np_empty = np.empty
        np_intp = np.intp
        add_reduce = np.add.reduce
        np_dot = np.dot
        # Candidate features go through one fixed buffer so its raw pointer
        # is computed once, not per node (.ctypes costs ~1.5us per access).
        if m >= d:
            featbuf = np.arange(d, dtype=np.intp)
            draw = None  # all features, no RNG draw — matches the reference
        else:
            featbuf = np.empty(m, dtype=np.intp)
            draw = self.rng.choice
        fptr = featbuf.ctypes.data
        msl2 = 2 * self.min_samples_leaf
        mss = self.min_samples_split
        max_depth = self.max_depth
        dp1 = d + 1
        f_app = feature.append
        t_app = threshold.append
        l_app = left.append
        r_app = right.append
        v_app = value.append
        va_app = variance.append
        c_app = count.append
        i_app = impurity.append

        stack = [(0, order0[d], order0.ctypes.data, n, 0)]
        pop = stack.pop
        push = stack.append
        while stack:
            node, idx, ptr, stride, depth = pop()
            y_node = y[idx]
            k = y_node.shape[0]
            s = float(add_reduce(y_node))
            q = float(np_dot(y_node, y_node))
            mean = s / k
            value[node] = mean
            var = q / k - mean * mean
            variance[node] = var if var > 0.0 else 0.0
            count[node] = k
            imp = q - s * s / k
            if imp < 0.0:
                imp = 0.0
            impurity[node] = imp

            if (
                k < mss
                or (max_depth is not None and depth >= max_depth)
                or imp <= 1e-12
            ):
                continue

            if draw is not None:
                featbuf[...] = draw(d, size=m, replace=False)
            if msl2 > k:
                continue
            childbuf = np_empty((dp1, k), dtype=np_intp)
            cptr = childbuf.ctypes.data
            ret = node_call(ctxref, ptr, stride, k, fptr, m, cptr)
            if ret < 0:
                continue
            # Gain test in Python: the reference computes the parent SSE as
            # total_sq - total_sum ** 2 / n, and pow is not bit-identical
            # to plain multiplication for every input.
            thr, best, ts, tq = out_list()
            node_sse = tq - ts**2 / k
            if node_sse - best <= 1e-12:
                continue
            n_l = ret & 0xFFFFFFFF
            # Mirrors best_split's degenerate-threshold guard.
            if n_l == 0 or n_l == k:
                continue
            feature[node] = ret >> 32
            threshold[node] = thr
            li = len(feature)
            f_app(_LEAF)
            f_app(_LEAF)
            t_app(0.0)
            t_app(0.0)
            l_app(_LEAF)
            l_app(_LEAF)
            r_app(_LEAF)
            r_app(_LEAF)
            v_app(0.0)
            v_app(0.0)
            va_app(0.0)
            va_app(0.0)
            c_app(0)
            c_app(0)
            i_app(0.0)
            i_app(0.0)
            left[node] = li
            right[node] = li + 1
            depth += 1
            push((li, childbuf[d, :n_l], cptr, k, depth))
            push((li + 1, childbuf[d, n_l:], cptr + 8 * n_l, k, depth))

    def _grow_presorted_numpy(
        self,
        X: np.ndarray,
        y: np.ndarray,
        n: int,
        d: int,
        m: int,
        feature: list,
        threshold: list,
        left: list,
        right: list,
        value: list,
        variance: list,
        count: list,
        impurity: list,
        new_node,
    ) -> None:
        """Fused pure-numpy presorted growth (fallback when C is unavailable).

        The split search of :func:`~repro.forest.splitter.best_split` is
        inlined and fused here because per-node Python/numpy call overhead
        — not arithmetic — dominates tree growth at the paper's sample
        sizes.  Every floating-point expression mirrors the reference
        operand-for-operand so results match bit-for-bit; the
        trace-equivalence suite pins this.

        Layout notes: sorted blocks are feature-major ``(m, k)`` (the
        reference uses ``(k, m)``); prefix sums run along the contiguous
        last axis and the argmin is taken over the transposed *view* so the
        scan order — and therefore tie-breaking — matches the reference's
        position-major flat argmin exactly.  ``order`` carries ``d + 1``
        rows: one per feature in ascending-value order plus a final row
        holding the node's sample indices in ascending order (what the
        reference maintains as ``idx``); one boolean take partitions all of
        them at once.
        """
        XT = np.ascontiguousarray(X.T)
        XTflat = XT.reshape(-1)
        # One stable argsort per feature for the whole sample; row f lists
        # all sample indices in ascending X[:, f] order (ties by index —
        # exactly what the reference's per-node stable argsorts yield,
        # since node index arrays stay ascending under partitioning).
        order0 = np.concatenate(
            [
                np.argsort(XT, axis=1, kind="stable"),
                np.arange(n, dtype=np.intp)[None, :],
            ]
        )
        in_left = np.zeros(n, dtype=bool)  # reusable partition scratch
        featbase = np.arange(d, dtype=np.intp) * n
        n_left_sizes = np.arange(n + 1, dtype=np.float64)
        feats_all = np.arange(d)
        rng_choice = self.rng.choice
        msl = self.min_samples_leaf
        mss = self.min_samples_split
        max_depth = self.max_depth
        dp1 = d + 1
        INF = np.inf

        stack: list[tuple[int, np.ndarray, int]] = [(0, order0, 0)]
        pop = stack.pop
        push = stack.append
        while stack:
            node, order, depth = pop()
            idx = order[d]
            y_node = y[idx]
            k = y_node.shape[0]
            s = float(y_node.sum())
            q = float(np.dot(y_node, y_node))
            mean = s / k
            value[node] = mean
            var = q / k - mean * mean
            variance[node] = var if var > 0.0 else 0.0
            count[node] = k
            imp = q - s * s / k
            if imp < 0.0:
                imp = 0.0
            impurity[node] = imp

            if (
                k < mss
                or (max_depth is not None and depth >= max_depth)
                or imp <= 1e-12
            ):
                continue

            feats = feats_all if m >= d else rng_choice(d, size=m, replace=False)

            lo = msl
            hi = k - msl
            if lo > hi:
                continue
            hi1 = hi + 1

            sub = order[feats]  # (m, k) sample indices, feature-major
            Ys = y[sub]
            Fs = XTflat[sub + featbase[feats][:, None]]
            csum = Ys.cumsum(axis=1)
            csq = (Ys * Ys).cumsum(axis=1)
            # Candidate split positions i in [lo, hi]; left stats use
            # column i-1 of the prefixes.  SSE per side from Σy, Σy²:
            # combined = (q_l - s_l²/n_l) + (q_r - s_r²/n_r).
            s_l = csum[:, lo - 1 : hi]
            q_l = csq[:, lo - 1 : hi]
            n_l = n_left_sizes[lo:hi1]
            a = s_l * s_l
            a /= n_l
            a = np.subtract(q_l, a, out=a)
            b = csum[:, -1:] - s_l
            b *= b
            b /= k - n_l
            c = csq[:, -1:] - q_l
            c -= b
            a += c  # combined SSE, (m, n_candidates)
            # Positions are valid only where the sorted value changes; an
            # all-invalid block leaves `best` at inf, handled below.
            valid = Fs[:, lo:hi1] != Fs[:, lo - 1 : hi]
            a[~valid] = INF
            flat = int(a.T.argmin())  # transposed view: reference scan order
            pos, col = divmod(flat, m)
            best = a[col, pos]
            if best == INF:
                continue
            ts = csum[col, -1]
            node_sse = float(csq[col, -1] - ts**2 / k)
            gain = node_sse - float(best)
            if gain <= 1e-12:
                continue

            i = lo + pos
            lo_val = Fs[col, i - 1]
            hi_val = Fs[col, i]
            thr = 0.5 * (lo_val + hi_val)
            # Guard against midpoints collapsing onto the upper value for
            # adjacent floats: the left side must satisfy
            # `value <= threshold < upper value`.
            if not (lo_val <= thr < hi_val):
                thr = lo_val
            thr = float(thr)
            f = int(feats[col])

            mask = XT[f, idx] <= thr
            n_l_count = int(mask.sum())
            # Mirrors best_split's degenerate-threshold guard.
            if n_l_count == 0 or n_l_count == k:
                continue
            feature[node] = f
            threshold[node] = thr
            # Stable partition of all d+1 index rows at once: each row
            # keeps exactly n_l_count left members, so the boolean take
            # reshapes back into (d+1, child_size) blocks.
            in_left[idx] = mask
            take = in_left[order]
            order_l = order[take].reshape(dp1, n_l_count)
            order_r = order[~take].reshape(dp1, k - n_l_count)
            in_left[idx] = False
            li = new_node()
            ri = new_node()
            left[node] = li
            right[node] = ri
            push((li, order_l, depth + 1))
            push((ri, order_r, depth + 1))

    # -- inference ------------------------------------------------------------
    def _check_query(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("tree is not fitted; call fit() first")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"query has {X.shape[1]} features, tree was fit on {self.n_features_}"
            )
        return X

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by each query row."""
        X = self._check_query(X)
        node = np.zeros(len(X), dtype=np.intp)
        active = self.feature_[node] != _LEAF
        while active.any():
            act_nodes = node[active]
            go_left = (
                X[active, self.feature_[act_nodes]] <= self.threshold_[act_nodes]
            )
            nxt = np.where(go_left, self.left_[act_nodes], self.right_[act_nodes])
            node[active] = nxt
            active = self.feature_[node] != _LEAF
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean training target of the leaf each row falls into."""
        leaves = self.apply(X)
        return self.value_[leaves]

    def leaf_stats(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(mean, variance, count) of the reached leaf for each row."""
        leaves = self.apply(X)
        return self.value_[leaves], self.variance_[leaves], self.count_[leaves]

    # -- introspection -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        self._require_fitted()
        return len(self.feature_)

    @property
    def n_leaves(self) -> int:
        self._require_fitted()
        return int((self.feature_ == _LEAF).sum())

    def depth(self) -> int:
        """Maximum root-to-leaf depth of the fitted tree."""
        self._require_fitted()
        depth = 0
        frontier = np.zeros(1, dtype=np.intp)  # start at the root
        while True:
            internal = frontier[self.feature_[frontier] != _LEAF]
            if internal.size == 0:
                return depth
            frontier = np.concatenate(
                [self.left_[internal], self.right_[internal]]
            )
            depth += 1

    def impurity_importances(self) -> np.ndarray:
        """Total SSE reduction credited to each feature (unnormalised)."""
        self._require_fitted()
        imp = np.zeros(self.n_features_, dtype=np.float64)
        internal = np.flatnonzero(self.feature_ != _LEAF)
        if internal.size:
            gain = self.impurity_[internal] - (
                self.impurity_[self.left_[internal]]
                + self.impurity_[self.right_[internal]]
            )
            np.add.at(imp, self.feature_[internal], np.maximum(gain, 0.0))
        return imp

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("tree is not fitted; call fit() first")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._fitted:
            return "RegressionTree(unfitted)"
        return f"RegressionTree({self.n_nodes} nodes, {self.n_leaves} leaves)"
