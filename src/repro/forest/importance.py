"""Permutation feature importance for fitted regressors.

Model-agnostic: works with anything exposing ``predict``.  Used in the
examples to show which compilation parameters dominate a kernel's runtime —
the kind of insight the paper's empirical models enable downstream.
"""

from __future__ import annotations

import numpy as np

from repro.rng import as_generator

__all__ = ["permutation_importance"]


def permutation_importance(
    model,
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    seed=None,
) -> np.ndarray:
    """Mean increase in MSE when each feature column is shuffled.

    Returns an array of shape ``(n_features,)``; larger means the model
    leans on that feature more.  Values can be slightly negative for
    irrelevant features (shuffling noise).
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = as_generator(seed)
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(X) != len(y):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
    base_mse = float(np.mean((model.predict(X) - y) ** 2))
    n_features = X.shape[1]
    importances = np.zeros(n_features, dtype=np.float64)
    for f in range(n_features):
        deltas = np.empty(n_repeats, dtype=np.float64)
        for r in range(n_repeats):
            Xp = X.copy()
            Xp[:, f] = Xp[rng.permutation(len(X)), f]
            mse = float(np.mean((model.predict(Xp) - y) ** 2))
            deltas[r] = mse - base_mse
        importances[f] = deltas.mean()
    return importances
