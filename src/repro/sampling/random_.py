"""Uniform random sampling — the conventional EPM baseline."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import ModelFreeStrategy
from repro.space import DataPool

__all__ = ["UniformRandomSampling"]


class UniformRandomSampling(ModelFreeStrategy):
    """Draw the batch uniformly from the remaining pool."""

    name = "random"

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        return rng.choice(available, size=n_batch, replace=False)
