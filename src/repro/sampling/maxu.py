"""MaxU — classic uncertainty sampling (pure exploration)."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import SamplingStrategy, pool_mu_sigma, top_k_by_score
from repro.space import DataPool

__all__ = ["MaxUncertaintySampling"]


class MaxUncertaintySampling(SamplingStrategy):
    """Select the configurations the forest is least sure about.

    The textbook active-learning strategy; it models the *whole* space
    equally well, spending most of its (expensive!) labels on the slow
    regions the tuner will never visit.
    """

    name = "maxu"

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """Prediction uncertainty σ as the acquisition score."""
        _, sigma = model.predict_with_uncertainty(X)
        return sigma

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu, sigma = pool_mu_sigma(model, pool, available)
        chosen = top_k_by_score(available, sigma, n_batch)
        return self._stash_selection_stats(available, mu, sigma, chosen)
