"""PWU variants used by the ablation benchmarks.

The paper fixes the combination rule ``s = σ / μ^(1-α)`` (Equation 1).  Two
natural alternatives bracket that design choice and are compared in
``benchmarks/bench_ablation_pwu_variants.py``:

* :class:`CoefficientOfVariationSampling` — the α→0 limit, ``s = σ/μ``:
  maximally performance-hungry, no tunable knob.
* :class:`RankWeightedUncertaintySampling` — weights σ by the predicted
  *rank* rather than the predicted *value*: ``s = σ · (1 - r)^γ`` with
  ``r`` the predicted-performance rank fraction.  Rank weighting is
  invariant to monotone transformations of the time axis, which Equation 1
  is not — the ablation quantifies whether that matters.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import SamplingStrategy, pool_mu_sigma, top_k_by_score
from repro.space import DataPool

__all__ = [
    "CoefficientOfVariationSampling",
    "RankWeightedUncertaintySampling",
    "CostAwarePWUSampling",
]


class CoefficientOfVariationSampling(SamplingStrategy):
    """PWU's α→0 limit: score = σ/μ (the coefficient of variation)."""

    name = "cv"

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu, sigma = pool_mu_sigma(model, pool, available)
        if np.any(mu <= 0):
            raise ValueError("predicted execution times must be positive")
        chosen = top_k_by_score(available, sigma / mu, n_batch)
        return self._stash_selection_stats(available, mu, sigma, chosen)


class CostAwarePWUSampling(SamplingStrategy):
    """PWU per unit labeling cost: ``s = σ / μ^(2-α)``.

    The paper's CC metric (Equation 3) charges each selection its own
    execution time, so the *cost-optimal* greedy policy divides the PWU
    score by the predicted cost μ.  Algebraically that just deepens the
    performance exponent — a one-line change that noticeably shifts the
    RMSE-per-second trade-off in Fig. 5 terms (ablation target).
    """

    name = "pwu-cost"

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """σ / μ^(2-α): Equation 1 divided by the predicted labeling cost."""
        mu, sigma = model.predict_with_uncertainty(X)
        if np.any(mu <= 0):
            raise ValueError("predicted execution times must be positive")
        return sigma / mu ** (2.0 - self.alpha)

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu, sigma = pool_mu_sigma(model, pool, available)
        if np.any(mu <= 0):
            raise ValueError("predicted execution times must be positive")
        chosen = top_k_by_score(
            available, sigma / mu ** (2.0 - self.alpha), n_batch
        )
        return self._stash_selection_stats(available, mu, sigma, chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostAwarePWUSampling(alpha={self.alpha})"


class RankWeightedUncertaintySampling(SamplingStrategy):
    """Uncertainty weighted by predicted-performance rank: σ·(1-r)^γ.

    ``r = 0`` for the best-predicted configuration, ``r → 1`` for the
    worst; ``gamma`` controls how hard the weighting focuses on the head
    of the ranking.
    """

    name = "pwu-rank"

    def __init__(self, gamma: float = 2.0) -> None:
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        self.gamma = gamma

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu, sigma = pool_mu_sigma(model, pool, available)
        n = len(available)
        # rank fraction: 0 = fastest predicted, (n-1)/n = slowest.
        order = np.argsort(np.argsort(mu, kind="stable"), kind="stable")
        r = order.astype(np.float64) / n
        chosen = top_k_by_score(
            available, sigma * (1.0 - r) ** self.gamma, n_batch
        )
        return self._stash_selection_stats(available, mu, sigma, chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankWeightedUncertaintySampling(gamma={self.gamma})"
