"""Diversity-aware batch selection.

With ``n_batch > 1`` a greedy top-k over acquisition scores picks near
duplicates: the k highest-scoring configurations usually sit in the same
uncertain valley, so the batch carries little more information than one
sample (the *redundancy* problem the paper fights).

:class:`DiverseBatchSampling` wraps any score-based strategy with greedy
local penalization: pick the best-scoring configuration, then damp the
scores of everything nearby before picking the next —

.. math:: s_i' = s_i \\cdot \\left(1 - e^{-d_i^2 / (2 h^2)}\\right)

where :math:`d_i` is the distance (in per-column-normalised feature space)
to the nearest already-picked configuration and ``h`` a bandwidth set from
the pool's typical nearest-neighbour spacing.
"""

from __future__ import annotations

import numpy as np

from repro.gp.kernels import squared_distances
from repro.sampling.base import SamplingStrategy
from repro.space import DataPool

__all__ = ["DiverseBatchSampling"]


class DiverseBatchSampling(SamplingStrategy):
    """Wrap a score-based strategy with diversity-penalised batch selection.

    Parameters
    ----------
    base:
        Any strategy implementing :meth:`SamplingStrategy.scores`
        (PWU, MaxU, BestPerf, EI, and the ablation variants).
    bandwidth_factor:
        Multiplies the automatic bandwidth; larger spreads the batch wider.
    """

    def __init__(self, base: SamplingStrategy, bandwidth_factor: float = 1.0) -> None:
        if bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        self.base = base
        self.bandwidth_factor = bandwidth_factor
        self.name = f"{base.name}+diverse"

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """Undiversified scores of the wrapped strategy."""
        return self.base.scores(model, X)

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        X = pool.X[available]
        raw = np.asarray(self.base.scores(model, X), dtype=np.float64)
        if raw.shape != (len(available),):
            raise RuntimeError(
                f"{self.base.name}.scores returned shape {raw.shape} "
                f"for {len(available)} configurations"
            )
        if n_batch == 1:
            return available[[int(np.argmax(raw))]]

        # Normalise features per column so distances are scale-free.
        span = X.max(axis=0) - X.min(axis=0)
        Z = (X - X.min(axis=0)) / np.where(span > 1e-12, span, 1.0)

        # Bandwidth ≈ typical spacing of pool points (scaled d-cube heuristic).
        n, d = Z.shape
        h = self.bandwidth_factor * 0.5 * (1.0 / max(n, 2)) ** (1.0 / max(d, 1)) * np.sqrt(d)

        # Shift scores to be non-negative so the penalty factor behaves.
        s = raw - raw.min()
        picked: list[int] = []
        penalty = np.ones(n, dtype=np.float64)
        for _ in range(n_batch):
            eff = s * penalty
            eff[picked] = -np.inf
            choice = int(np.argmax(eff))
            picked.append(choice)
            dist_sq = squared_distances(Z, Z[choice].reshape(1, -1))[:, 0]
            penalty = penalty * (1.0 - np.exp(-0.5 * dist_sq / (h * h)))
        return available[np.asarray(picked, dtype=np.intp)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiverseBatchSampling({self.base!r})"
