"""BestPerf — greedy exploitation of predicted performance only."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import SamplingStrategy, pool_mu, top_k_by_score
from repro.space import DataPool

__all__ = ["BestPerfSampling"]


class BestPerfSampling(SamplingStrategy):
    """Select the configurations with the best (smallest) predicted time.

    Pure exploitation: ignores uncertainty entirely, so it keeps
    re-sampling the neighbourhood the model already believes is fast —
    cheap to label (Fig. 3) but redundant (Fig. 2).
    """

    name = "bestperf"

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """Negated predicted time: faster predictions score higher."""
        return -model.predict(X)

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        return top_k_by_score(
            available, -pool_mu(model, pool, available), n_batch
        )
