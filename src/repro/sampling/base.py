"""Strategy interface and shared selection helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.space import DataPool

__all__ = ["SamplingStrategy", "ModelFreeStrategy", "top_k_by_score"]


class SamplingStrategy(ABC):
    """Selects which pool configurations to evaluate next (Algorithm 1, line 6)."""

    #: Short identifier used in result tables ("pwu", "pbus", ...).
    name: str = "base"

    #: Whether the strategy consults the surrogate model at all.  Model-free
    #: strategies can run before the cold-start model exists.
    requires_model: bool = True

    @abstractmethod
    def select(
        self,
        model,
        pool: DataPool,
        n_batch: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return ``n_batch`` distinct *global* indices of available pool rows.

        ``model`` is a fitted :class:`~repro.forest.RandomForestRegressor`
        (or anything exposing ``predict_with_uncertainty``); it may be
        ``None`` for strategies with ``requires_model = False``.
        """

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """Per-configuration acquisition scores (higher = more desirable).

        Only *score-based* strategies (PWU, MaxU, BestPerf, EI, variants)
        implement this; filter-based ones (PBUS, BRS, random) raise.  The
        batch-diversification wrapper builds on this hook.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose per-configuration scores"
        )

    # -- shared validation ------------------------------------------------
    @staticmethod
    def _check_request(pool: DataPool, n_batch: int) -> np.ndarray:
        if n_batch < 1:
            raise ValueError(f"n_batch must be >= 1, got {n_batch}")
        available = pool.available_indices()
        if n_batch > len(available):
            raise ValueError(
                f"requested {n_batch} samples but only {len(available)} remain"
            )
        return available

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ModelFreeStrategy(SamplingStrategy):
    """Base class for strategies that ignore the surrogate."""

    requires_model = False


def top_k_by_score(
    indices: np.ndarray, scores: np.ndarray, k: int
) -> np.ndarray:
    """The ``k`` indices with the highest scores (deterministic tie-break).

    Ties are broken by ascending index so runs are reproducible across
    platforms; scores must be finite.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != indices.shape:
        raise ValueError("indices and scores must align")
    if not np.isfinite(scores).all():
        raise ValueError("scores must be finite")
    if k > len(indices):
        raise ValueError(f"requested top-{k} of {len(indices)} entries")
    # Stable sort on -score; equal scores keep ascending index order.
    order = np.argsort(-scores, kind="stable")
    return indices[order[:k]]
