"""Strategy interface and shared selection helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.space import DataPool

__all__ = [
    "SamplingStrategy",
    "ModelFreeStrategy",
    "top_k_by_score",
    "pool_mu_sigma",
    "pool_mu",
    "consume_selection_stats",
]


def pool_mu_sigma(model, pool: DataPool, available: np.ndarray):
    """``(mu, sigma)`` for the pool rows ``available``.

    Routes through the model's pool-aware cached scorer when it has one
    (:meth:`repro.forest.RandomForestRegressor.predict_with_uncertainty_pool`
    — bit-identical to the plain call, but reuses per-tree pool scores
    across iterations under partial retraining) and falls back to the plain
    ``predict_with_uncertainty`` for models without one (e.g. the GP).
    """
    scorer = getattr(model, "predict_with_uncertainty_pool", None)
    if scorer is not None:
        return scorer(pool.X, available)
    return model.predict_with_uncertainty(pool.X[available])


def pool_mu(model, pool: DataPool, available: np.ndarray) -> np.ndarray:
    """Predicted means for the pool rows ``available`` (cached when possible)."""
    scorer = getattr(model, "predict_pool", None)
    if scorer is not None:
        return scorer(pool.X, available)
    return model.predict(pool.X[available])


def consume_selection_stats(strategy, batch_idx: np.ndarray):
    """Pop the ``(mu, sigma)`` a strategy stashed for its selected batch.

    Returns ``None`` when the strategy stashed nothing or the stash does not
    cover exactly ``batch_idx`` (in order) — the caller then re-predicts.
    Single-use by design: the stats describe one specific selection by one
    specific model state.
    """
    stats = getattr(strategy, "_selection_stats", None)
    if stats is None:
        return None
    strategy._selection_stats = None
    chosen, mu, sigma = stats
    if not np.array_equal(chosen, np.asarray(batch_idx)):
        return None
    return mu, sigma


class SamplingStrategy(ABC):
    """Selects which pool configurations to evaluate next (Algorithm 1, line 6)."""

    #: Short identifier used in result tables ("pwu", "pbus", ...).
    name: str = "base"

    #: Whether the strategy consults the surrogate model at all.  Model-free
    #: strategies can run before the cold-start model exists.
    requires_model: bool = True

    @abstractmethod
    def select(
        self,
        model,
        pool: DataPool,
        n_batch: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return ``n_batch`` distinct *global* indices of available pool rows.

        ``model`` is a fitted :class:`~repro.forest.RandomForestRegressor`
        (or anything exposing ``predict_with_uncertainty``); it may be
        ``None`` for strategies with ``requires_model = False``.
        """

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """Per-configuration acquisition scores (higher = more desirable).

        Only *score-based* strategies (PWU, MaxU, BestPerf, EI, variants)
        implement this; filter-based ones (PBUS, BRS, random) raise.  The
        batch-diversification wrapper builds on this hook.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose per-configuration scores"
        )

    def _stash_selection_stats(
        self,
        available: np.ndarray,
        mu: np.ndarray,
        sigma: np.ndarray,
        chosen: np.ndarray,
    ) -> np.ndarray:
        """Record the selection-time ``(mu, sigma)`` of the chosen rows.

        ``available`` is ascending (see :meth:`DataPool.available_indices`),
        so the chosen rows' positions come from one ``searchsorted``.  The
        active learner pops the stash via
        :func:`consume_selection_stats` instead of re-predicting the batch;
        the values are the very floats the strategy ranked, so reuse is
        bit-identical.  Returns ``chosen`` for call-site convenience.
        """
        pos = np.searchsorted(available, chosen)
        self._selection_stats = (
            np.asarray(chosen).copy(),
            np.asarray(mu, dtype=np.float64)[pos].copy(),
            np.asarray(sigma, dtype=np.float64)[pos].copy(),
        )
        return chosen

    # -- shared validation ------------------------------------------------
    @staticmethod
    def _check_request(pool: DataPool, n_batch: int) -> np.ndarray:
        if n_batch < 1:
            raise ValueError(f"n_batch must be >= 1, got {n_batch}")
        available = pool.available_indices()
        if n_batch > len(available):
            raise ValueError(
                f"requested {n_batch} samples but only {len(available)} remain"
            )
        return available

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ModelFreeStrategy(SamplingStrategy):
    """Base class for strategies that ignore the surrogate."""

    requires_model = False


def top_k_by_score(
    indices: np.ndarray, scores: np.ndarray, k: int
) -> np.ndarray:
    """The ``k`` indices with the highest scores (deterministic tie-break).

    Ties are broken by ascending index so runs are reproducible across
    platforms; scores must be finite.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != indices.shape:
        raise ValueError("indices and scores must align")
    if not np.isfinite(scores).all():
        raise ValueError("scores must be finite")
    if k > len(indices):
        raise ValueError(f"requested top-{k} of {len(indices)} entries")
    # Stable sort on -score; equal scores keep ascending index order.
    order = np.argsort(-scores, kind="stable")
    return indices[order[:k]]
