"""Biased Random Sampling (BRS) — the paper's refined random baseline.

Section III-C: "sample randomly from the top p% configurations in predicted
performance rankings".  Performance is predicted by the current surrogate;
shorter predicted execution time ranks higher.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import SamplingStrategy, pool_mu
from repro.space import DataPool

__all__ = ["BiasedRandomSampling"]


class BiasedRandomSampling(SamplingStrategy):
    """Uniform choice among the predicted top-``p`` fraction of the pool."""

    name = "brs"

    def __init__(self, top_fraction: float = 0.10) -> None:
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
        self.top_fraction = top_fraction

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu = pool_mu(model, pool, available)
        n_top = max(n_batch, int(np.ceil(self.top_fraction * len(available))))
        # Best predicted performance = smallest predicted time.
        order = np.argsort(mu, kind="stable")
        top = available[order[:n_top]]
        return rng.choice(top, size=n_batch, replace=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BiasedRandomSampling(top_fraction={self.top_fraction})"
