"""PBUS — Performance Biased Uncertainty Sampling (Balaprakash et al. 2013).

The strongest prior baseline.  PBUS considers performance *before*
uncertainty: it first restricts attention to the configurations the current
model predicts to be high-performance (a biased candidate set), and only
then picks the most uncertain among them.

The paper's Fig. 9 analysis shows the failure mode this ordering creates:
because the candidate filter is applied first, the uncertainty ranking only
ever sees points the model already knows well (predicted-fast regions are
exactly where training data accumulates), so PBUS keeps selecting
low-uncertainty — i.e. redundant — samples.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import SamplingStrategy, pool_mu_sigma, top_k_by_score
from repro.space import DataPool

__all__ = ["PBUSampling"]


class PBUSampling(SamplingStrategy):
    """Filter to the predicted top fraction, then take maximum uncertainty.

    Parameters
    ----------
    candidate_fraction:
        Fraction of the remaining pool admitted to the performance-biased
        candidate set (grown to at least the batch size).
    """

    name = "pbus"

    def __init__(self, candidate_fraction: float = 0.10) -> None:
        if not 0.0 < candidate_fraction <= 1.0:
            raise ValueError(
                f"candidate_fraction must be in (0, 1], got {candidate_fraction}"
            )
        self.candidate_fraction = candidate_fraction

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu, sigma = pool_mu_sigma(model, pool, available)
        n_candidates = max(
            n_batch, int(np.ceil(self.candidate_fraction * len(available)))
        )
        # Step 1 — performance bias: smallest predicted time first.
        perf_order = np.argsort(mu, kind="stable")[:n_candidates]
        # Step 2 — uncertainty: most uncertain among the candidates.
        chosen = top_k_by_score(available[perf_order], sigma[perf_order], n_batch)
        return self._stash_selection_stats(available, mu, sigma, chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PBUSampling(candidate_fraction={self.candidate_fraction})"
