"""Sampling strategies for the active-learning loop (Sections II-C, III-C).

Six strategies are compared in the paper:

=============  ===========================================================
``random``     classic EPM baseline: uniform over the pool
``brs``        Biased Random Sampling: uniform over the predicted top-p%
``bestperf``   greedy on predicted performance only
``maxu``       greedy on prediction uncertainty only (classic AL)
``pbus``       Performance Biased Uncertainty Sampling (Balaprakash 2013):
               performance *before* uncertainty — filter to the predicted
               high-performance candidates, then take the most uncertain
``pwu``        the paper's contribution: Performance Weighted Uncertainty,
               score = σ / μ^(1-α), combining both factors at once
=============  ===========================================================

Every strategy receives the fitted forest, the :class:`~repro.space.DataPool`
and a batch size, and returns *global pool indices*.
"""

from repro.sampling.base import ModelFreeStrategy, SamplingStrategy
from repro.sampling.random_ import UniformRandomSampling
from repro.sampling.brs import BiasedRandomSampling
from repro.sampling.bestperf import BestPerfSampling
from repro.sampling.maxu import MaxUncertaintySampling
from repro.sampling.pbus import PBUSampling
from repro.sampling.pwu import PWUSampling, pwu_scores
from repro.sampling.registry import (
    STRATEGY_NAMES,
    available_strategies,
    get_strategy,
    make_strategy,
    register_strategy,
)

__all__ = [
    "SamplingStrategy",
    "ModelFreeStrategy",
    "UniformRandomSampling",
    "BiasedRandomSampling",
    "BestPerfSampling",
    "MaxUncertaintySampling",
    "PBUSampling",
    "PWUSampling",
    "pwu_scores",
    "STRATEGY_NAMES",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "make_strategy",
]
