"""Name-based strategy construction for the experiment drivers."""

from __future__ import annotations

from repro.sampling.base import SamplingStrategy
from repro.sampling.bestperf import BestPerfSampling
from repro.sampling.brs import BiasedRandomSampling
from repro.sampling.maxu import MaxUncertaintySampling
from repro.sampling.pbus import PBUSampling
from repro.sampling.pwu import PWUSampling
from repro.sampling.random_ import UniformRandomSampling

__all__ = ["STRATEGY_NAMES", "make_strategy"]

#: All strategies compared in the paper's figures, in plotting order.
STRATEGY_NAMES: tuple[str, ...] = (
    "random",
    "brs",
    "bestperf",
    "maxu",
    "pbus",
    "pwu",
)


def make_strategy(name: str, alpha: float = 0.05) -> SamplingStrategy:
    """Instantiate a strategy by name.

    ``alpha`` parameterises PWU (Equation 1); the biased baselines keep the
    paper's top-10% setting.  Besides the paper's six strategies, the
    ablation variants ``cv`` (σ/μ) and ``pwu-rank`` (rank-weighted σ) are
    constructible here; they are not part of :data:`STRATEGY_NAMES`.
    """
    if name == "random":
        return UniformRandomSampling()
    if name == "brs":
        return BiasedRandomSampling(top_fraction=0.10)
    if name == "bestperf":
        return BestPerfSampling()
    if name == "maxu":
        return MaxUncertaintySampling()
    if name == "pbus":
        return PBUSampling(candidate_fraction=0.10)
    if name == "pwu":
        return PWUSampling(alpha=alpha)
    if name == "cv":
        from repro.sampling.variants import CoefficientOfVariationSampling

        return CoefficientOfVariationSampling()
    if name == "pwu-rank":
        from repro.sampling.variants import RankWeightedUncertaintySampling

        return RankWeightedUncertaintySampling()
    if name == "ei":
        from repro.sampling.ei import ExpectedImprovementSampling

        return ExpectedImprovementSampling()
    if name == "pwu-cost":
        from repro.sampling.variants import CostAwarePWUSampling

        return CostAwarePWUSampling(alpha=alpha)
    raise KeyError(
        f"unknown strategy {name!r}; known: {', '.join(STRATEGY_NAMES)} "
        f"(+ ablation variants: cv, pwu-rank, ei, pwu-cost)"
    )
