"""The single named-strategy registry.

Every component that resolves a strategy *name* — the CLI, the engine's
:class:`~repro.engine.jobs.TrialJob`, :mod:`repro.api`, the benchmark
suite — goes through :func:`get_strategy`; there is deliberately no other
name→class mapping in the tree.  Factories are registered with
:func:`register_strategy` (downstream experiments can add their own), and
unknown names raise :class:`KeyError` with a did-you-mean suggestion.

:data:`STRATEGY_NAMES` stays the paper's six strategies in plotting
order; the registry additionally carries the ablation variants (``cv``,
``pwu-rank``, ``ei``, ``pwu-cost``), which :func:`available_strategies`
lists but the figure drivers do not plot.
"""

from __future__ import annotations

from repro.registry import NameRegistry
from repro.sampling.base import SamplingStrategy
from repro.sampling.bestperf import BestPerfSampling
from repro.sampling.brs import BiasedRandomSampling
from repro.sampling.maxu import MaxUncertaintySampling
from repro.sampling.pbus import PBUSampling
from repro.sampling.pwu import PWUSampling
from repro.sampling.random_ import UniformRandomSampling

__all__ = [
    "STRATEGY_NAMES",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "make_strategy",
]

#: All strategies compared in the paper's figures, in plotting order.
STRATEGY_NAMES: tuple[str, ...] = (
    "random",
    "brs",
    "bestperf",
    "maxu",
    "pbus",
    "pwu",
)

#: name → factory taking the PWU ``alpha`` (ignored by most strategies).
_REGISTRY = NameRegistry("strategy")


def register_strategy(name: str, factory, overwrite: bool = False) -> None:
    """Register ``factory(alpha) -> SamplingStrategy`` under ``name``.

    Registering an existing name raises unless ``overwrite=True`` — a
    silently shadowed strategy would corrupt comparisons.
    """
    _REGISTRY.register(name, factory, overwrite=overwrite)


def available_strategies() -> tuple[str, ...]:
    """Every registered strategy name, sorted."""
    return _REGISTRY.available()


def get_strategy(name: str, alpha: float = 0.05) -> SamplingStrategy:
    """Instantiate a registered strategy by name.

    ``alpha`` parameterises PWU and its cost-aware variant (Equation 1);
    the biased baselines keep the paper's top-10% setting.  Unknown names
    raise :class:`KeyError` with a closest-match suggestion.
    """
    return _REGISTRY.get(name)(alpha)


def make_strategy(name: str, alpha: float = 0.05) -> SamplingStrategy:
    """Alias of :func:`get_strategy` (the historical constructor name)."""
    return get_strategy(name, alpha=alpha)


def _cv(alpha: float) -> SamplingStrategy:
    from repro.sampling.variants import CoefficientOfVariationSampling

    return CoefficientOfVariationSampling()


def _pwu_rank(alpha: float) -> SamplingStrategy:
    from repro.sampling.variants import RankWeightedUncertaintySampling

    return RankWeightedUncertaintySampling()


def _ei(alpha: float) -> SamplingStrategy:
    from repro.sampling.ei import ExpectedImprovementSampling

    return ExpectedImprovementSampling()


def _pwu_cost(alpha: float) -> SamplingStrategy:
    from repro.sampling.variants import CostAwarePWUSampling

    return CostAwarePWUSampling(alpha=alpha)


register_strategy("random", lambda alpha: UniformRandomSampling())
register_strategy("brs", lambda alpha: BiasedRandomSampling(top_fraction=0.10))
register_strategy("bestperf", lambda alpha: BestPerfSampling())
register_strategy("maxu", lambda alpha: MaxUncertaintySampling())
register_strategy("pbus", lambda alpha: PBUSampling(candidate_fraction=0.10))
register_strategy("pwu", lambda alpha: PWUSampling(alpha=alpha))
register_strategy("cv", _cv)
register_strategy("pwu-rank", _pwu_rank)
register_strategy("ei", _ei)
register_strategy("pwu-cost", _pwu_cost)
