"""Expected Improvement — the SMBO acquisition from the paper's related work.

Hutter et al.'s SMAC (cited as [22]) "sequentially built random forest and
calculated the EI to select the most promising parameter configuration".
EI targets *optimisation* (finding the single best configuration), whereas
PWU targets *modeling* (accuracy over the whole high-performance subspace);
including EI lets the ablation benches measure how far apart those goals
really are.

For minimisation of execution time with incumbent :math:`t^* = \\min y`:

.. math:: EI(x) = (t^* - \\mu)\\,\\Phi(z) + \\sigma\\,\\varphi(z),
          \\quad z = (t^* - \\mu) / \\sigma
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.sampling.base import SamplingStrategy, pool_mu_sigma, top_k_by_score
from repro.space import DataPool

__all__ = ["ExpectedImprovementSampling", "expected_improvement"]


def expected_improvement(
    mu: np.ndarray, sigma: np.ndarray, incumbent: float
) -> np.ndarray:
    """Closed-form EI for minimisation; zero where σ = 0 and μ ≥ incumbent."""
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.shape != sigma.shape:
        raise ValueError(f"mu and sigma shapes differ: {mu.shape} vs {sigma.shape}")
    if np.any(sigma < 0):
        raise ValueError("uncertainties must be non-negative")
    improvement = incumbent - mu
    ei = np.where(improvement > 0, improvement, 0.0)  # σ = 0 limit
    positive = sigma > 0
    if positive.any():
        z = improvement[positive] / sigma[positive]
        ei_pos = improvement[positive] * stats.norm.cdf(z) + sigma[
            positive
        ] * stats.norm.pdf(z)
        ei = ei.copy()
        ei[positive] = ei_pos
    return np.maximum(ei, 0.0)


class ExpectedImprovementSampling(SamplingStrategy):
    """Select the configurations with the highest Expected Improvement.

    Requires the model to expose ``training_targets`` (both the forest and
    the GP surrogate do) so the incumbent is the best *observed* time, as
    in SMAC.
    """

    name = "ei"

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """Expected improvement over the best observed time."""
        mu, sigma = model.predict_with_uncertainty(X)
        incumbent = float(np.min(model.training_targets))
        return expected_improvement(mu, sigma, incumbent)

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu, sigma = pool_mu_sigma(model, pool, available)
        incumbent = float(np.min(model.training_targets))
        chosen = top_k_by_score(
            available, expected_improvement(mu, sigma, incumbent), n_batch
        )
        return self._stash_selection_stats(available, mu, sigma, chosen)
