"""PWU — Performance Weighted Uncertainty sampling (the paper's contribution).

Section II-C, Equation 1.  Instead of considering performance *before*
uncertainty (PBUS) or either factor alone (BestPerf/MaxU), PWU scores every
pool configuration with both factors combined entry-wise:

.. math:: s = \\frac{\\sigma}{\\mu^{(1-\\alpha)}}

where μ is the predicted execution time (smaller = higher performance),
σ its uncertainty, and α the fraction of the performance ranking the
modeller cares about:

* α → 1: every configuration counts as high-performance, ``s → σ`` and PWU
  degenerates to classic uncertainty sampling (MaxU);
* α → 0: ``s → σ/μ``, the coefficient of variation — the risk/return
  statistic, maximally performance-hungry.

Configurations with high predicted performance *or* high uncertainty score
high; between two equally uncertain points the faster one wins.  This is the
exploration/exploitation balance Fig. 9 visualises.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import SamplingStrategy, pool_mu_sigma, top_k_by_score
from repro.space import DataPool

__all__ = ["PWUSampling", "pwu_scores"]


def pwu_scores(mu: np.ndarray, sigma: np.ndarray, alpha: float) -> np.ndarray:
    """Equation 1: ``s = σ / μ^(1-α)``, entry-wise.

    ``mu`` must be positive — it is a predicted execution time.  A forest
    trained on positive times always predicts positive means (tree leaves
    average training targets), so a non-positive μ indicates a modelling
    bug and raises.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.shape != sigma.shape:
        raise ValueError(f"mu and sigma shapes differ: {mu.shape} vs {sigma.shape}")
    if np.any(mu <= 0):
        raise ValueError("predicted execution times must be positive")
    if np.any(sigma < 0):
        raise ValueError("uncertainties must be non-negative")
    return sigma / mu ** (1.0 - alpha)


class PWUSampling(SamplingStrategy):
    """Select the batch with the highest PWU scores.

    Parameters
    ----------
    alpha:
        Proportion of the performance ranking treated as high-performance
        (0.01 / 0.05 / 0.10 in the paper's experiments).
    """

    name = "pwu"

    def __init__(self, alpha: float = 0.05) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha

    def scores(self, model, X: np.ndarray) -> np.ndarray:
        """Equation 1 scores for the given encoded configurations."""
        mu, sigma = model.predict_with_uncertainty(X)
        return pwu_scores(mu, sigma, self.alpha)

    def select(
        self, model, pool: DataPool, n_batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        available = self._check_request(pool, n_batch)
        mu, sigma = pool_mu_sigma(model, pool, available)
        chosen = top_k_by_score(
            available, pwu_scores(mu, sigma, self.alpha), n_batch
        )
        return self._stash_selection_stats(available, mu, sigma, chosen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PWUSampling(alpha={self.alpha})"
