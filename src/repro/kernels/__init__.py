"""The 12 SPAPT kernels used in the paper's evaluation.

SPAPT (Balaprakash, Wild & Norris 2012) packages serial computation kernels
with Orio-tunable compilation parameters: cache tiling, unroll-jam, register
tiling, scalar replacement and vectorization.  The paper models 12 of the 18
kernels; we define those 12 with parameter spaces following the Table I
conventions (tile sizes 1..512, unroll-jam 1..31, register tiles {1, 8, 32},
two boolean flags) and back each with a :class:`repro.costmodel.KernelCostModel`
response surface on Platform A.
"""

from repro.kernels.spapt import (
    KERNEL_DESCRIPTORS,
    SPAPT_KERNEL_NAMES,
    SpaptKernel,
    make_kernel,
)
from repro.kernels.extra import (
    EXTRA_KERNEL_DESCRIPTORS,
    EXTRA_KERNEL_NAMES,
    make_extra_kernel,
)

__all__ = [
    "SPAPT_KERNEL_NAMES",
    "KERNEL_DESCRIPTORS",
    "SpaptKernel",
    "make_kernel",
    "EXTRA_KERNEL_NAMES",
    "EXTRA_KERNEL_DESCRIPTORS",
    "make_extra_kernel",
]
