"""Definitions of the 12 SPAPT search problems.

Each descriptor mirrors the structure of the corresponding SPAPT kernel:
which loops are tiled (and their extents), which arrays the nest touches
(driving the working-set/cache behaviour), arithmetic vs. memory intensity,
and how many unroll-jam / register-tile parameters Orio exposes.  Parameter
*value sets* follow Table I of the paper: tile sizes
``1,16,32,64,128,256,512``, unroll-jam ``1..31``, register tiles ``1,8,32``,
plus the scalar-replacement and vectorization flags.

ADI reproduces Table I exactly: 8 tile + 4 unroll-jam + 4 register-tile
parameters plus the two flags (18 parameters).  Across the suite the
parameter count spans 8..38, matching the paper's quoted range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.costmodel import ArrayRef, KernelCostModel, LoopNestSpec
from repro.costmodel.quirks import InteractionQuirk
from repro.machine import PLATFORM_A, MachineModel
from repro.noise import KERNEL_PROTOCOL, MeasurementProtocol
from repro.space import (
    BooleanParameter,
    IntegerParameter,
    OrdinalParameter,
    ParameterSpace,
)
from repro.workloads.base import Benchmark
from repro.workloads.registry import register_benchmark

__all__ = ["KernelDescriptor", "KERNEL_DESCRIPTORS", "SPAPT_KERNEL_NAMES", "SpaptKernel", "make_kernel"]

#: Table I value sets.
TILE_SIZES = (1, 16, 32, 64, 128, 256, 512)
UNROLL_RANGE = (1, 31)
REGTILE_SIZES = (1, 8, 32)


@dataclass(frozen=True)
class KernelDescriptor:
    """Everything needed to instantiate one SPAPT kernel benchmark."""

    name: str
    description: str
    n_tile: int
    n_unroll: int
    n_regtile: int
    loop_extents: tuple[int, ...]
    #: Arrays as (dims, weight) over tiled-loop indices.
    arrays: tuple[tuple[tuple[int, ...], float], ...]
    flops: float
    accesses: float
    base_registers: float = 6.0
    reuse_potential: float = 0.35
    vector_stride_dim: int | None = 0
    #: Strength of the kernel-specific parameter-interaction term.  Real
    #: SPAPT surfaces are rugged and deceptive (the paper's premise is that
    #: "performance can be a complicated nonlinear function"); with weak
    #: interactions every strategy trivially localises one smooth optimum
    #: and the exploration/exploitation comparison degenerates.  0.45 gives
    #: multi-modal high-performance regions while the architectural trends
    #: (cache staircase, spill penalties) still dominate globally; the
    #: sensitivity of the Fig. 7 comparison to this knob is recorded in
    #: EXPERIMENTS.md.
    quirk_amplitude: float = 0.45
    #: Global scale bringing median times into the paper's sub-second regime.
    time_scale: float = 0.22
    #: False for nests whose dependences defeat SIMD entirely (seidel).
    vectorizable: bool = True
    #: Optional factory mapping the built space to Orio-style legality
    #: constraints (see repro.space.Constraint).  SPAPT problems are
    #: constrained search problems; the paper's 12 kernels are modelled
    #: unconstrained, but the suite supports them (used by the extras).
    constraint_builder: "object | None" = None

    def __post_init__(self) -> None:
        if len(self.loop_extents) != self.n_tile:
            raise ValueError(
                f"{self.name}: {self.n_tile} tile params but "
                f"{len(self.loop_extents)} loop extents"
            )

    @property
    def n_parameters(self) -> int:
        return self.n_tile + self.n_unroll + self.n_regtile + 2


def _space_for(desc: KernelDescriptor) -> ParameterSpace:
    """Build the kernel's parameter space in the canonical column order."""
    params = []
    for i in range(desc.n_tile):
        params.append(OrdinalParameter(f"T{i + 1}", TILE_SIZES))
    for i in range(desc.n_unroll):
        params.append(IntegerParameter(f"U{i + 1}", *UNROLL_RANGE))
    for i in range(desc.n_regtile):
        params.append(OrdinalParameter(f"RT{i + 1}", REGTILE_SIZES))
    params.append(BooleanParameter("SCR"))
    params.append(BooleanParameter("VEC"))
    return ParameterSpace(params)


class SpaptKernel(Benchmark):
    """A SPAPT kernel benchmark backed by the analytic cost model."""

    def __init__(
        self,
        descriptor: KernelDescriptor,
        machine: MachineModel = PLATFORM_A,
        protocol: MeasurementProtocol = KERNEL_PROTOCOL,
    ) -> None:
        space = _space_for(descriptor)
        if descriptor.constraint_builder is not None:
            space = ParameterSpace(
                space.parameters, descriptor.constraint_builder(space)
            )
        super().__init__(space, protocol)
        self.name = descriptor.name
        self.descriptor = descriptor

        nest = LoopNestSpec(
            name=descriptor.name,
            loop_extents=descriptor.loop_extents,
            arrays=tuple(
                ArrayRef(name=f"arr{k}", dims=dims, weight=w)
                for k, (dims, w) in enumerate(descriptor.arrays)
            ),
            flops=descriptor.flops,
            accesses=descriptor.accesses,
            base_registers=descriptor.base_registers,
            reuse_potential=descriptor.reuse_potential,
            vector_stride_dim=descriptor.vector_stride_dim,
            vectorizable=descriptor.vectorizable,
        )
        low = np.asarray(
            [p.encode(p.values[0]) for p in space.parameters], dtype=np.float64
        )
        high = np.asarray(
            [p.encode(p.values[-1]) for p in space.parameters], dtype=np.float64
        )
        # Two interaction terms: a kernel-intrinsic one (shared across
        # platforms — this is what makes cross-platform transfer viable)
        # and a weaker platform-specific one (real machines reorder the
        # mid-field: different SIMD units, prefetchers, cache policies).
        # On a non-vectorizable nest the VEC flag must never help, so it is
        # barred from the interaction terms (the architectural model already
        # charges it a misfire cost).
        vec_column = space.n_parameters - 1
        excluded = () if descriptor.vectorizable else (vec_column,)
        kernel_quirk = InteractionQuirk(
            key=descriptor.name,
            n_features=space.n_parameters,
            feature_low=low,
            feature_high=high,
            amplitude=descriptor.quirk_amplitude,
            exclude_features=excluded,
        )
        platform_quirk = InteractionQuirk(
            key=f"{descriptor.name}@{machine.name}",
            n_features=space.n_parameters,
            feature_low=low,
            feature_high=high,
            amplitude=descriptor.quirk_amplitude * 0.3,
            exclude_features=excluded,
        )
        self.cost_model = KernelCostModel(
            nest=nest,
            machine=machine,
            n_tile=descriptor.n_tile,
            n_unroll=descriptor.n_unroll,
            n_regtile=descriptor.n_regtile,
            quirk=(kernel_quirk, platform_quirk),
            time_scale=descriptor.time_scale,
        )

    def true_times_encoded(self, X: np.ndarray) -> np.ndarray:
        return self.cost_model.true_times(X)


def _d(**kw) -> KernelDescriptor:
    return KernelDescriptor(**kw)


#: The 12 kernels modelled in the paper (12 of SPAPT's 18 problems).
KERNEL_DESCRIPTORS: dict[str, KernelDescriptor] = {
    d.name: d
    for d in [
        _d(
            name="adi",
            description="ADI stencil: matrix sub/mult/div sweeps (Table I space)",
            n_tile=8,
            n_unroll=4,
            n_regtile=4,
            loop_extents=(1024, 1024, 1024, 1024, 512, 512, 256, 256),
            arrays=(
                ((0, 1), 1.0),  # X
                ((2, 3), 1.0),  # A
                ((4, 5), 1.0),  # B
                ((6, 7), 0.5),  # temporaries
            ),
            flops=6.0e8,
            accesses=7.5e8,
            reuse_potential=0.30,
            base_registers=8.0,
        ),
        _d(
            name="atax",
            description="matrix transpose & vector multiply (y = A^T (A x))",
            n_tile=3,
            n_unroll=3,
            n_regtile=2,
            loop_extents=(4096, 4096, 2048),
            arrays=(((0, 1), 1.0), ((1, 2), 0.6), ((0,), 0.2)),
            flops=4.0e8,
            accesses=5.2e8,
            reuse_potential=0.40,
        ),
        _d(
            name="bicgkernel",
            description="BiCG sub-kernel: two simultaneous matrix-vector products",
            n_tile=3,
            n_unroll=4,
            n_regtile=2,
            loop_extents=(4096, 4096, 1024),
            arrays=(((0, 1), 1.0), ((0, 2), 0.5), ((1,), 0.3)),
            flops=4.5e8,
            accesses=6.0e8,
            reuse_potential=0.42,
        ),
        _d(
            name="correlation",
            description="correlation-matrix computation over a data matrix",
            n_tile=4,
            n_unroll=4,
            n_regtile=2,
            loop_extents=(2048, 2048, 1024, 1024),
            arrays=(((0, 1), 1.0), ((1, 2), 0.8), ((2, 3), 0.6)),
            flops=9.0e8,
            accesses=7.0e8,
            reuse_potential=0.50,
            base_registers=7.0,
        ),
        _d(
            name="dgemv3",
            description="three-matrix DGEMV composition (largest SPAPT space)",
            n_tile=12,
            n_unroll=12,
            n_regtile=12,
            loop_extents=(1024,) * 6 + (512,) * 6,
            arrays=(
                ((0, 1), 1.0),
                ((2, 3), 1.0),
                ((4, 5), 1.0),
                ((6, 7), 0.7),
                ((8, 9), 0.7),
                ((10, 11), 0.7),
            ),
            flops=8.0e8,
            accesses=1.0e9,
            reuse_potential=0.35,
            base_registers=10.0,
        ),
        _d(
            name="gemver",
            description="vector multiplication and matrix addition (BLAS gemver)",
            n_tile=6,
            n_unroll=4,
            n_regtile=2,
            loop_extents=(2048, 2048, 2048, 1024, 1024, 512),
            arrays=(((0, 1), 1.0), ((2, 3), 0.9), ((4, 5), 0.5)),
            flops=6.5e8,
            accesses=8.0e8,
            reuse_potential=0.38,
        ),
        _d(
            name="gesummv",
            description="scalar, vector and matrix multiplication (gesummv)",
            n_tile=2,
            n_unroll=2,
            n_regtile=2,
            loop_extents=(4096, 4096),
            arrays=(((0, 1), 2.0), ((1,), 0.3)),
            flops=3.5e8,
            accesses=6.4e8,
            reuse_potential=0.25,
        ),
        _d(
            name="hessian",
            description="3x3 Hessian image-processing stencil",
            n_tile=3,
            n_unroll=3,
            n_regtile=2,
            loop_extents=(3072, 3072, 512),
            arrays=(((0, 1), 1.0), ((0, 1), 0.8), ((2,), 0.2)),
            flops=7.0e8,
            accesses=6.0e8,
            reuse_potential=0.45,
            base_registers=9.0,
        ),
        _d(
            name="jacobi",
            description="Jacobi 1-D/2-D relaxation sweeps",
            n_tile=3,
            n_unroll=3,
            n_regtile=2,
            loop_extents=(4096, 4096, 256),
            arrays=(((0, 1), 1.0), ((0, 1), 1.0)),
            flops=4.0e8,
            accesses=6.8e8,
            reuse_potential=0.30,
        ),
        _d(
            name="lu",
            description="LU decomposition loop nest",
            n_tile=4,
            n_unroll=4,
            n_regtile=3,
            loop_extents=(1536, 1536, 1536, 512),
            arrays=(((0, 1), 1.0), ((1, 2), 1.0), ((0, 2), 1.0)),
            flops=1.1e9,
            accesses=7.5e8,
            reuse_potential=0.55,
            base_registers=8.0,
        ),
        _d(
            name="mm",
            description="dense matrix-matrix multiply (triply nested)",
            n_tile=6,
            n_unroll=4,
            n_regtile=4,
            loop_extents=(1024, 1024, 1024, 256, 256, 256),
            arrays=(((0, 1), 1.0), ((1, 2), 1.0), ((0, 2), 1.0), ((3, 4, 5), 0.4)),
            flops=1.4e9,
            accesses=7.0e8,
            reuse_potential=0.60,
            base_registers=8.0,
        ),
        _d(
            name="mvt",
            description="matrix-vector product and transpose (smallest space)",
            n_tile=2,
            n_unroll=2,
            n_regtile=2,
            loop_extents=(4096, 4096),
            arrays=(((0, 1), 2.0), ((0,), 0.2), ((1,), 0.2)),
            flops=3.0e8,
            accesses=5.5e8,
            reuse_potential=0.30,
        ),
    ]
}

SPAPT_KERNEL_NAMES: tuple[str, ...] = tuple(KERNEL_DESCRIPTORS)


def make_kernel(name: str) -> SpaptKernel:
    """Instantiate one of the 12 kernels by name."""
    try:
        desc = KERNEL_DESCRIPTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown SPAPT kernel {name!r}; known: {', '.join(SPAPT_KERNEL_NAMES)}"
        ) from None
    return SpaptKernel(desc)


def _register_all() -> None:
    for kernel_name in SPAPT_KERNEL_NAMES:
        # Bind by value: the registry must construct the right kernel later.
        register_benchmark(kernel_name, lambda n=kernel_name: make_kernel(n))


_register_all()
