"""The six SPAPT problems the paper does *not* model.

SPAPT ships 18 search problems; the paper evaluates 12 because "the
transformation and compilation of some kernels are very time consuming".
For suite completeness we define the remaining six — covariance, fdtd,
seidel, stencil3d, tensor and trmm — with the same Table I parameter
conventions.  They are registered in the benchmark registry (usable with
every strategy, example and the CLI) but excluded from
:data:`repro.kernels.SPAPT_KERNEL_NAMES`, which drives the paper's
figures.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.spapt import KernelDescriptor, SpaptKernel
from repro.space import Constraint, ParameterSpace
from repro.workloads.registry import register_benchmark

__all__ = ["EXTRA_KERNEL_DESCRIPTORS", "EXTRA_KERNEL_NAMES", "make_extra_kernel"]


def _d(**kw) -> KernelDescriptor:
    return KernelDescriptor(**kw)


def _trmm_constraints(space: ParameterSpace) -> tuple[Constraint, ...]:
    """Orio-style legality: the register-tile volume must fit inside the
    innermost cache tile (a tile of 1 means 'untiled' and is exempt)."""
    t1 = list(space.names).index("T1")
    rt = [list(space.names).index(f"RT{i}") for i in (1, 2, 3)]

    def fits(X: np.ndarray) -> np.ndarray:
        volume = X[:, rt].prod(axis=1)
        tile = X[:, t1]
        return (tile <= 1.0) | (volume <= tile)

    return (Constraint("regtile-volume-fits-cache-tile", fits),)


def _tensor_constraints(space: ParameterSpace) -> tuple[Constraint, ...]:
    """Orio guards the unroll-jam product against code-size explosion.

    The bound keeps roughly the best third of the space admissible — large
    enough for rejection sampling, small enough to genuinely trim the
    pathological code-size corner.
    """
    u_cols = [j for j, n in enumerate(space.names) if n.startswith("U")]

    def bounded(X: np.ndarray) -> np.ndarray:
        return X[:, u_cols].prod(axis=1) <= 2.0**21

    return (Constraint("unroll-product-bounded", bounded),)


EXTRA_KERNEL_DESCRIPTORS: dict[str, KernelDescriptor] = {
    d.name: d
    for d in [
        _d(
            name="covariance",
            description="covariance-matrix computation (correlation's sibling)",
            n_tile=4,
            n_unroll=4,
            n_regtile=2,
            loop_extents=(2048, 2048, 1024, 1024),
            arrays=(((0, 1), 1.0), ((1, 2), 0.8), ((2, 3), 0.5)),
            flops=8.5e8,
            accesses=6.8e8,
            reuse_potential=0.48,
            base_registers=7.0,
        ),
        _d(
            name="fdtd",
            description="2-D finite-difference time-domain electromagnetic stencil",
            n_tile=5,
            n_unroll=4,
            n_regtile=2,
            loop_extents=(2048, 2048, 1024, 1024, 256),
            arrays=(((0, 1), 1.0), ((0, 1), 1.0), ((2, 3), 0.8), ((4,), 0.1)),
            flops=7.5e8,
            accesses=9.0e8,
            reuse_potential=0.32,
            base_registers=9.0,
        ),
        _d(
            name="seidel",
            description="Gauss-Seidel 2-D sweep (loop-carried dependences limit SIMD)",
            n_tile=3,
            n_unroll=3,
            n_regtile=2,
            loop_extents=(4096, 4096, 512),
            arrays=(((0, 1), 2.0),),
            flops=5.0e8,
            accesses=7.0e8,
            reuse_potential=0.28,
            vectorizable=False,  # loop-carried dependences defeat SIMD
        ),
        _d(
            name="stencil3d",
            description="27-point 3-D stencil sweep",
            n_tile=3,
            n_unroll=3,
            n_regtile=3,
            loop_extents=(512, 512, 512),
            arrays=(((0, 1, 2), 1.0), ((0, 1, 2), 1.0)),
            flops=9.5e8,
            accesses=1.1e9,
            reuse_potential=0.40,
            base_registers=10.0,
        ),
        _d(
            name="tensor",
            description="4-index tensor contraction (GPU-paper workload, CPU variant)",
            n_tile=6,
            n_unroll=6,
            n_regtile=4,
            loop_extents=(512, 512, 512, 256, 256, 256),
            arrays=(((0, 1, 3), 1.0), ((1, 2, 4), 1.0), ((0, 2, 5), 1.0)),
            flops=1.6e9,
            accesses=8.0e8,
            reuse_potential=0.58,
            base_registers=9.0,
            constraint_builder=_tensor_constraints,
        ),
        _d(
            name="trmm",
            description="triangular matrix-matrix multiply (BLAS trmm)",
            n_tile=4,
            n_unroll=4,
            n_regtile=3,
            loop_extents=(1536, 1536, 1536, 512),
            arrays=(((0, 1), 1.0), ((1, 2), 1.0), ((0, 2), 1.0)),
            flops=9.0e8,
            accesses=6.0e8,
            reuse_potential=0.52,
            base_registers=8.0,
            constraint_builder=_trmm_constraints,
        ),
    ]
}

EXTRA_KERNEL_NAMES: tuple[str, ...] = tuple(EXTRA_KERNEL_DESCRIPTORS)


def make_extra_kernel(name: str) -> SpaptKernel:
    """Instantiate one of the six non-paper SPAPT kernels by name."""
    try:
        desc = EXTRA_KERNEL_DESCRIPTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown extra SPAPT kernel {name!r}; "
            f"known: {', '.join(EXTRA_KERNEL_NAMES)}"
        ) from None
    return SpaptKernel(desc)


def _register_all() -> None:
    for kernel_name in EXTRA_KERNEL_NAMES:
        register_benchmark(kernel_name, lambda n=kernel_name: make_extra_kernel(n))


_register_all()
