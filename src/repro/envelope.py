"""Typed loading of ``.npz`` envelopes (forests, surrogates, workloads).

Every persistence format in this package is a flat ``.npz`` archive with
a schema stamp: the forest format (:mod:`repro.forest.serialize`), the
surrogate envelope (:mod:`repro.surrogate.serialize`), and the distilled
workload envelope (:mod:`repro.workloads.surrogate`).  All three loaders
route file I/O through :func:`read_npz_payload`, so a truncated download,
a stray text file, or an archive missing its schema keys surfaces as one
typed, actionable :class:`EnvelopeError` — naming the file and the
expected schema — instead of leaking ``zipfile.BadZipFile`` / ``KeyError``
internals to callers (the tuning service turns it into a clean 400).
"""

from __future__ import annotations

import io
import zipfile
import zlib

import numpy as np

__all__ = ["EnvelopeError", "read_npz_payload", "require_keys", "describe_file"]


class EnvelopeError(ValueError):
    """A ``.npz`` envelope that cannot be read or fails its schema.

    ``source`` names what was being read (a path, or a description of an
    in-memory buffer), ``expected`` the schema the loader wanted, and
    ``detail`` what actually went wrong.  The rendered message carries all
    three so the error is actionable without a traceback.
    """

    def __init__(self, source: str, expected: str, detail: str) -> None:
        super().__init__(
            f"{source}: cannot load as {expected} — {detail}"
        )
        self.source = source
        self.expected = expected
        self.detail = detail


def describe_file(file) -> str:
    """A human-readable identity for ``file`` (path or file object)."""
    if isinstance(file, (str, bytes)):
        return file.decode() if isinstance(file, bytes) else file
    name = getattr(file, "name", None)
    if isinstance(name, str):
        return name
    if isinstance(file, io.BytesIO):
        return "<in-memory bytes>"
    return f"<{type(file).__name__}>"


def read_npz_payload(file, expected: str) -> "dict[str, np.ndarray]":
    """Read every array of an ``.npz`` archive into a flat dict.

    ``expected`` describes the schema the caller wants (e.g. ``"a repro
    surrogate envelope (.npz, surrogate_schema <= 1)"``) and is embedded in
    the :class:`EnvelopeError` raised for any unreadable file: missing,
    truncated, not a zip archive, corrupt members, or pickled content.
    """
    source = describe_file(file)
    try:
        with np.load(file, allow_pickle=False) as data:
            return {key: np.asarray(data[key]) for key in data.files}
    except FileNotFoundError as exc:
        raise EnvelopeError(source, expected, "file not found") from exc
    except IsADirectoryError as exc:
        raise EnvelopeError(source, expected, "path is a directory") from exc
    except (zipfile.BadZipFile, zlib.error) as exc:
        raise EnvelopeError(
            source, expected, f"not a readable npz archive ({exc})"
        ) from exc
    except EOFError as exc:
        raise EnvelopeError(
            source, expected, f"file is empty or truncated ({exc})"
        ) from exc
    except (ValueError, KeyError, OSError) as exc:
        raise EnvelopeError(
            source, expected, f"corrupt or foreign file ({exc})"
        ) from exc


def require_keys(
    payload: "dict[str, np.ndarray]", keys, source: str, expected: str
) -> None:
    """Raise :class:`EnvelopeError` naming any schema key absent from ``payload``."""
    missing = [k for k in keys if k not in payload]
    if missing:
        raise EnvelopeError(
            source,
            expected,
            f"archive is missing required key(s) {', '.join(missing)} "
            f"(present: {', '.join(sorted(payload)) or 'none'})",
        )
