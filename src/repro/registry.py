"""Generic name→value registry shared by the strategy, surrogate, and
workload registries.

Each domain registry used to carry its own copy of the same machinery:
a module-level dict, duplicate-id rejection, a sorted ``available()``
listing, and a did-you-mean :class:`KeyError` on unknown names.  This
module factors that machinery into :class:`NameRegistry` so the three
registries behave identically — same duplicate-rejection contract, same
error shapes — and a new registry costs one instantiation.

A :class:`NameRegistry` is dict-like on purpose: ``name in reg``,
``iter(reg)``, ``len(reg)``, and ``reg.pop(name, default)`` all work, so
tests that need to inject and clean up a temporary entry can treat it
like the plain dict it replaced.
"""

from __future__ import annotations

import difflib
from typing import Any, Iterator

__all__ = ["NameRegistry"]


class NameRegistry:
    """A mapping of names to registered values for one *kind* of thing.

    ``kind`` is the singular noun used in error messages ("strategy",
    "surrogate", "benchmark").  Registration rejects duplicates loudly —
    a silently shadowed entry would corrupt comparisons — unless the
    caller passes ``overwrite=True`` to replace one deliberately.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    # -- mutation ----------------------------------------------------------
    def register(self, name: str, value: Any, overwrite: bool = False) -> None:
        """Bind ``value`` under ``name``; duplicate names raise.

        Registering an existing name raises :class:`ValueError` unless
        ``overwrite=True`` — a silently shadowed entry would corrupt
        comparisons.
        """
        if not overwrite and name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; a silently "
                f"shadowed {self.kind} would corrupt comparisons — pass "
                "overwrite=True to replace it deliberately"
            )
        # repro: allow[SPAWN001] registries are populated at import time (and in test setup), before any worker exists
        self._entries[name] = value

    def pop(self, name: str, default: Any = None) -> Any:
        """Remove and return ``name``'s value (dict-style; for test cleanup)."""
        # repro: allow[SPAWN001] only test teardown removes entries, never worker code
        return self._entries.pop(name, default)

    # -- lookup ------------------------------------------------------------
    def get(self, name: str) -> Any:
        """Return the value registered under ``name``.

        Unknown names raise :class:`KeyError` with a closest-match
        suggestion and the full known-name listing.
        """
        try:
            return self._entries[name]
        except KeyError:
            close = difflib.get_close_matches(name, self._entries, n=1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise KeyError(
                f"unknown {self.kind} {name!r}{hint} "
                f"(known: {', '.join(sorted(self._entries))})"
            ) from None

    def available(self) -> tuple[str, ...]:
        """Every registered name, sorted."""
        return tuple(sorted(self._entries))

    # -- dict-like protocol ------------------------------------------------
    def __delitem__(self, name: str) -> None:
        # repro: allow[SPAWN001] only test teardown removes entries, never worker code
        del self._entries[name]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NameRegistry(kind={self.kind!r}, n={len(self._entries)})"
