"""Parameter-space definitions for tuning problems.

A :class:`ParameterSpace` is an ordered collection of named parameters
(integer ranges, ordinal value lists, categoricals, booleans).  Spaces know
how to

* report their cardinality (SPAPT spaces reach :math:`10^{10}`–:math:`10^{30}`),
* draw uniform random configurations,
* encode configurations into a dense ``float64`` feature matrix for the
  random-forest surrogate and decode them back.

The :class:`DataPool` wraps the encoded representative sample of a space
(7000 configurations in the paper) and tracks which entries are still
available to the active learner.
"""

from repro.space.parameters import (
    BooleanParameter,
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
)
from repro.space.constraints import Constraint
from repro.space.space import Configuration, ParameterSpace
from repro.space.pool import DataPool
from repro.space.serialize import space_from_dict, space_to_dict

__all__ = [
    "space_to_dict",
    "space_from_dict",
    "Parameter",
    "IntegerParameter",
    "OrdinalParameter",
    "CategoricalParameter",
    "BooleanParameter",
    "Constraint",
    "ParameterSpace",
    "Configuration",
    "DataPool",
]
