"""The unlabeled data pool of Algorithm 1.

The paper represents the (enormous) parameter space by a pool of 7000
uniformly sampled configurations; the active learner repeatedly removes
selected entries.  :class:`DataPool` stores the encoded matrix once and
tracks availability with an index set, so "remove" is O(batch) and no matrix
copies are made during the learning loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["DataPool"]


class DataPool:
    """An encoded configuration pool with removal bookkeeping.

    Indices handed out by :meth:`available_indices` (and accepted by
    :meth:`take`) are *global* row indices into :attr:`X`; they stay valid for
    the lifetime of the pool even as entries are removed.
    """

    def __init__(self, X: np.ndarray) -> None:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"pool matrix must be 2-D, got shape {X.shape}")
        if len(X) == 0:
            raise ValueError("pool must contain at least one configuration")
        self._X = X
        self._X.setflags(write=False)
        self._available = np.ones(len(X), dtype=bool)

    # -- views -----------------------------------------------------------
    @property
    def X(self) -> np.ndarray:
        """The full (immutable) encoded matrix, including removed rows."""
        return self._X

    @property
    def n_total(self) -> int:
        return len(self._X)

    @property
    def n_available(self) -> int:
        return int(self._available.sum())

    def available_indices(self) -> np.ndarray:
        """Global row indices still available, ascending."""
        return np.flatnonzero(self._available)

    def available_X(self) -> np.ndarray:
        """Encoded rows still available (a copy-on-slice view)."""
        return self._X[self._available]

    def is_available(self, index: int) -> bool:
        """Whether global row ``index`` is still in the pool."""
        return bool(self._available[index])

    # -- mutation ----------------------------------------------------------
    def take(self, indices: "Sequence[int] | np.ndarray") -> np.ndarray:
        """Remove ``indices`` from the pool and return their encoded rows.

        Raises if any index is out of range, duplicated, or already taken —
        a strategy that re-selects an evaluated configuration is a bug the
        paper's framing explicitly rules out (samples are removed from the
        pool at line 8 of Algorithm 1).
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.ndim != 1:
            raise ValueError("take() expects a 1-D index sequence")
        if len(idx) == 0:
            return self._X[:0]
        if idx.min() < 0 or idx.max() >= self.n_total:
            raise IndexError(f"pool index out of range [0, {self.n_total})")
        if len(np.unique(idx)) != len(idx):
            raise ValueError("duplicate indices in a single take()")
        if not self._available[idx].all():
            taken = idx[~self._available[idx]]
            raise ValueError(f"indices already taken from pool: {taken.tolist()}")
        self._available[idx] = False
        return self._X[idx]

    def reset(self) -> None:
        """Make every row available again (used between repeated trials)."""
        self._available[:] = True

    def __len__(self) -> int:
        return self.n_available

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataPool({self.n_available}/{self.n_total} available)"
