"""Tunable-parameter types.

All SPAPT / kripke / hypre parameters are discrete.  Each parameter knows its
value list, how to sample uniformly, and how to encode values to the floats
the surrogate model consumes.

Encoding convention
-------------------
* Ordered parameters (integer ranges, ordinal lists, booleans) encode to the
  *numeric value itself* so the forest can exploit ordering (a tile size of
  64 really is between 32 and 128).
* Categorical parameters encode to their category *index*.  A CART tree can
  still carve out individual categories with a pair of threshold splits, which
  matches how the paper's scikit-learn forests consumed label-encoded
  categoricals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "IntegerParameter",
    "OrdinalParameter",
    "CategoricalParameter",
    "BooleanParameter",
]


class Parameter(ABC):
    """A named, discrete tunable parameter."""

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ValueError("parameter name must be a non-empty string")
        self.name = name

    # -- interface -----------------------------------------------------
    @property
    @abstractmethod
    def values(self) -> tuple[Any, ...]:
        """All admissible values, in canonical order."""

    @property
    def n_values(self) -> int:
        return len(self.values)

    @property
    def is_categorical(self) -> bool:
        return False

    @abstractmethod
    def encode(self, value: Any) -> float:
        """Map an admissible value to its float feature representation."""

    @abstractmethod
    def decode(self, code: float) -> Any:
        """Inverse of :meth:`encode` (must round-trip for admissible values)."""

    # -- shared behaviour ----------------------------------------------
    def sample(self, rng: np.random.Generator, size: int | None = None) -> Any:
        """Draw uniformly from the admissible values."""
        idx = rng.integers(0, self.n_values, size=size)
        if size is None:
            return self.values[int(idx)]
        return [self.values[int(i)] for i in np.atleast_1d(idx)]

    def sample_codes(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` encoded values as a float vector (vectorised path)."""
        idx = rng.integers(0, self.n_values, size=size)
        return self._codes_table()[idx]

    def _codes_table(self) -> np.ndarray:
        table = getattr(self, "_codes_cache", None)
        if table is None:
            table = np.asarray([self.encode(v) for v in self.values], dtype=np.float64)
            self._codes_cache = table
        return table

    def index_of(self, value: Any) -> int:
        """Position of ``value`` in :attr:`values`; raises ``ValueError`` if absent."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not an admissible value of parameter {self.name!r}"
            ) from None

    def __contains__(self, value: Any) -> bool:
        return value in self.values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        vals = self.values
        shown = vals if len(vals) <= 6 else vals[:3] + ("...",) + vals[-2:]
        return f"{type(self).__name__}({self.name!r}, values={shown})"


class IntegerParameter(Parameter):
    """A contiguous (optionally strided) integer range, ordered.

    Example: SPAPT unroll-jam factors ``1..31`` → ``IntegerParameter("U1", 1, 31)``.
    """

    def __init__(self, name: str, low: int, high: int, step: int = 1) -> None:
        super().__init__(name)
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if high < low:
            raise ValueError(f"empty range [{low}, {high}] for parameter {name!r}")
        self.low = int(low)
        self.high = int(high)
        self.step = int(step)
        self._values = tuple(range(self.low, self.high + 1, self.step))

    @property
    def values(self) -> tuple[int, ...]:
        return self._values

    def encode(self, value: Any) -> float:
        if value not in self:
            raise ValueError(
                f"{value!r} is not an admissible value of parameter {self.name!r}"
            )
        return float(value)

    def decode(self, code: float) -> int:
        # Snap to the nearest admissible value.
        idx = int(round((float(code) - self.low) / self.step))
        idx = min(max(idx, 0), self.n_values - 1)
        return self._values[idx]


class OrdinalParameter(Parameter):
    """An explicit ordered list of numeric values.

    Example: SPAPT cache-tile sizes ``1, 16, 32, 64, 128, 256, 512``.
    """

    def __init__(self, name: str, values: Sequence[float]) -> None:
        super().__init__(name)
        if len(values) == 0:
            raise ValueError(f"ordinal parameter {name!r} needs at least one value")
        vals = tuple(values)
        if len(set(vals)) != len(vals):
            raise ValueError(f"ordinal parameter {name!r} has duplicate values")
        if list(vals) != sorted(vals):
            raise ValueError(f"ordinal parameter {name!r} values must be ascending")
        self._values = vals

    @property
    def values(self) -> tuple[float, ...]:
        return self._values

    def encode(self, value: Any) -> float:
        self.index_of(value)
        return float(value)

    def decode(self, code: float) -> Any:
        arr = np.asarray(self._values, dtype=np.float64)
        return self._values[int(np.argmin(np.abs(arr - float(code))))]


class CategoricalParameter(Parameter):
    """An unordered set of categories, encoded as the category index.

    Example: kripke data layout ``DGZ, DZG, GDZ, GZD, ZDG, ZGD``.
    """

    def __init__(self, name: str, categories: Sequence[Any]) -> None:
        super().__init__(name)
        if len(categories) == 0:
            raise ValueError(f"categorical parameter {name!r} needs at least one category")
        cats = tuple(categories)
        if len(set(map(repr, cats))) != len(cats):
            raise ValueError(f"categorical parameter {name!r} has duplicate categories")
        self._values = cats

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    @property
    def is_categorical(self) -> bool:
        return True

    def encode(self, value: Any) -> float:
        return float(self.index_of(value))

    def decode(self, code: float) -> Any:
        idx = int(round(float(code)))
        if not 0 <= idx < self.n_values:
            raise ValueError(
                f"code {code!r} out of range for categorical {self.name!r} "
                f"with {self.n_values} categories"
            )
        return self._values[idx]


class BooleanParameter(CategoricalParameter):
    """A two-valued flag (e.g. SPAPT scalar replacement on/off)."""

    def __init__(self, name: str) -> None:
        super().__init__(name, (False, True))

    def encode(self, value: Any) -> float:
        if not isinstance(value, (bool, np.bool_)):
            raise ValueError(f"parameter {self.name!r} expects a bool, got {value!r}")
        return float(bool(value))

    def decode(self, code: float) -> bool:
        return bool(round(float(code)))
