"""Constraints over parameter spaces.

Real SPAPT search problems are *constrained*: Orio rejects transformation
combinations that are illegal or pointless (register tiles exceeding the
cache tile, unroll products blowing past the register file, ...).  A
:class:`Constraint` is a named, vectorised predicate over encoded
configuration matrices; a constrained :class:`~repro.space.ParameterSpace`
samples by rejection and filters its grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["Constraint"]


@dataclass(frozen=True)
class Constraint:
    """A named validity predicate over encoded configurations.

    ``predicate`` receives an ``(n, d)`` float matrix and must return a
    boolean vector of length ``n`` (True = admissible).  Predicates must
    be deterministic and row-wise independent.
    """

    name: str
    predicate: Callable[[np.ndarray], np.ndarray]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("constraint needs a non-empty name")

    def holds(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the predicate with shape checking."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        mask = np.asarray(self.predicate(X))
        if mask.dtype != bool or mask.shape != (len(X),):
            raise RuntimeError(
                f"constraint {self.name!r} returned {mask.dtype} of shape "
                f"{mask.shape}; expected bool of shape ({len(X)},)"
            )
        return mask
