"""Parameter spaces: ordered collections of parameters with encoding.

The space is the interface between *benchmark definitions* (which speak in
named parameter values) and the *surrogate model / sampling machinery* (which
speak in dense float matrices).
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.space.constraints import Constraint
from repro.space.parameters import Parameter

__all__ = ["ParameterSpace", "Configuration"]

#: A configuration is a mapping from parameter name to an admissible value.
Configuration = dict


class ParameterSpace:
    """An ordered, named collection of :class:`Parameter` objects.

    Parameters keep their insertion order; that order defines the feature
    columns of the encoded matrix.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        constraints: Sequence[Constraint] = (),
    ) -> None:
        if len(parameters) == 0:
            raise ValueError("a parameter space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names: {dupes}")
        self._params: tuple[Parameter, ...] = tuple(parameters)
        self._by_name: dict[str, Parameter] = {p.name: p for p in self._params}
        self.constraints: tuple[Constraint, ...] = tuple(constraints)

    # -- basic introspection --------------------------------------------
    @property
    def parameters(self) -> tuple[Parameter, ...]:
        return self._params

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self._params)

    @property
    def n_parameters(self) -> int:
        return len(self._params)

    @property
    def categorical_mask(self) -> np.ndarray:
        """Boolean vector marking categorical feature columns."""
        return np.asarray([p.is_categorical for p in self._params], dtype=bool)

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no parameter named {name!r} in this space") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def size(self) -> int:
        """Cardinality of the full cartesian space (exact big integer)."""
        return math.prod(p.n_values for p in self._params)

    def log10_size(self) -> float:
        """``log10`` of the cardinality — SPAPT sizes span 1e10..1e30."""
        return float(sum(math.log10(p.n_values) for p in self._params))

    # -- encoding --------------------------------------------------------
    def encode(self, configs: "Configuration | Sequence[Mapping[str, Any]]") -> np.ndarray:
        """Encode one configuration (dict) or a sequence of them.

        Returns a ``(n, d)`` float64 matrix (``(1, d)`` for a single dict).
        """
        if isinstance(configs, Mapping):
            configs = [configs]
        rows = np.empty((len(configs), self.n_parameters), dtype=np.float64)
        for i, cfg in enumerate(configs):
            missing = set(self.names) - set(cfg)
            if missing:
                raise ValueError(f"configuration missing parameters: {sorted(missing)}")
            extra = set(cfg) - set(self.names)
            if extra:
                raise ValueError(f"configuration has unknown parameters: {sorted(extra)}")
            for j, p in enumerate(self._params):
                rows[i, j] = p.encode(cfg[p.name])
        return rows

    def decode(self, X: np.ndarray) -> list[Configuration]:
        """Decode an encoded matrix back into configuration dicts."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_parameters:
            raise ValueError(
                f"expected {self.n_parameters} feature columns, got {X.shape[1]}"
            )
        return [
            {p.name: p.decode(row[j]) for j, p in enumerate(self._params)}
            for row in X
        ]

    def decode_one(self, x: np.ndarray) -> Configuration:
        """Decode a single encoded row."""
        return self.decode(np.atleast_2d(x))[0]

    # -- constraints ---------------------------------------------------------
    @property
    def is_constrained(self) -> bool:
        return len(self.constraints) > 0

    def satisfies(self, X: np.ndarray) -> np.ndarray:
        """Boolean mask of rows satisfying every constraint."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        mask = np.ones(len(X), dtype=bool)
        for c in self.constraints:
            mask &= c.holds(X)
        return mask

    def feasible_fraction(self, rng: np.random.Generator, n_probe: int = 2000) -> float:
        """Monte-Carlo estimate of the admissible fraction of the space."""
        if not self.is_constrained:
            return 1.0
        X = self._raw_sample_encoded(rng, n_probe)
        return float(self.satisfies(X).mean())

    # -- sampling ----------------------------------------------------------
    def _raw_sample_encoded(self, rng: np.random.Generator, n: int) -> np.ndarray:
        X = np.empty((n, self.n_parameters), dtype=np.float64)
        for j, p in enumerate(self._params):
            X[:, j] = p.sample_codes(rng, n)
        return X

    def sample_encoded(
        self, rng: np.random.Generator, n: int, max_tries: int = 64
    ) -> np.ndarray:
        """Draw ``n`` uniform admissible configurations in encoded form.

        With constraints, sampling is uniform-by-rejection over the
        admissible subset; spaces whose admissible fraction is vanishing
        raise rather than loop forever.
        """
        if n < 0:
            raise ValueError(f"cannot sample a negative count: {n}")
        if not self.is_constrained:
            return self._raw_sample_encoded(rng, n)
        rows = []
        have = 0
        for _ in range(max_tries):
            if have >= n:
                break
            batch = self._raw_sample_encoded(rng, max(n - have, 32) * 2)
            ok = batch[self.satisfies(batch)]
            rows.append(ok)
            have += len(ok)
        if have < n:
            raise RuntimeError(
                f"could not draw {n} admissible configurations after "
                f"{max_tries} rejection rounds; the constraints may be "
                f"near-infeasible"
            )
        return np.vstack(rows)[:n]

    def sample(self, rng: np.random.Generator, n: int) -> list[Configuration]:
        """Draw ``n`` uniform configurations as dicts."""
        return self.decode(self.sample_encoded(rng, n))

    def sample_lhs_encoded(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Latin-hypercube sample of ``n`` configurations (encoded form).

        LHS stratifies every parameter axis, giving better one-dimensional
        coverage than iid uniform draws for the same pool size — an
        alternative pool-construction policy (the paper uses iid uniform).
        Not supported on constrained spaces: filtering would destroy the
        stratification that is LHS's point.
        """
        if n < 0:
            raise ValueError(f"cannot sample a negative count: {n}")
        if self.is_constrained:
            raise ValueError(
                "Latin-hypercube sampling is not supported on constrained "
                "spaces; use sample_encoded (rejection) instead"
            )
        from scipy.stats import qmc

        sampler = qmc.LatinHypercube(d=self.n_parameters, rng=rng)
        U = sampler.random(n)  # (n, d) in [0, 1)
        X = np.empty((n, self.n_parameters), dtype=np.float64)
        for j, p in enumerate(self._params):
            idx = np.minimum((U[:, j] * p.n_values).astype(np.intp), p.n_values - 1)
            X[:, j] = p._codes_table()[idx]
        return X

    def sample_unique_encoded(
        self, rng: np.random.Generator, n: int, max_tries: int = 64
    ) -> np.ndarray:
        """Draw ``n`` *distinct* configurations in encoded form.

        For huge SPAPT spaces collisions are vanishingly rare and this is a
        single vectorised draw; for small spaces (hypre has only a few
        thousand points) it falls back to enumerating and permuting the grid.
        """
        total = self.size()
        if n > total:
            raise ValueError(f"requested {n} unique configs but the space has {total}")
        # Small space: enumerate exactly (the grid is constraint-filtered).
        if total <= max(4 * n, 100_000) and total <= 1_000_000:
            grid = self.grid_encoded()
            if n > len(grid):
                raise ValueError(
                    f"requested {n} unique configs but only {len(grid)} are admissible"
                )
            pick = rng.permutation(len(grid))[:n]
            return grid[pick]
        seen: set[bytes] = set()
        out = np.empty((n, self.n_parameters), dtype=np.float64)
        filled = 0
        for _ in range(max_tries):
            need = n - filled
            if need == 0:
                break
            batch = self.sample_encoded(rng, need + max(8, need // 4))
            for row in batch:
                key = row.tobytes()
                if key in seen:
                    continue
                seen.add(key)
                out[filled] = row
                filled += 1
                if filled == n:
                    break
        if filled < n:
            raise RuntimeError(
                f"could not draw {n} unique configurations after {max_tries} rounds"
            )
        return out

    def grid_encoded(self) -> np.ndarray:
        """Enumerate the *admissible* space in encoded form (small spaces only)."""
        total = self.size()
        if total > 2_000_000:
            raise ValueError(
                f"space of size {total} is too large to enumerate; sample instead"
            )
        axes = [p._codes_table() for p in self._params]
        mesh = np.meshgrid(*axes, indexing="ij")
        grid = np.stack([m.reshape(-1) for m in mesh], axis=1)
        if self.is_constrained:
            grid = grid[self.satisfies(grid)]
        return grid

    # -- misc ---------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable inventory used by the Table I–III printers."""
        lines = [f"{'name':<14}{'kind':<14}{'#values':>8}  values"]
        for p in self._params:
            kind = type(p).__name__.replace("Parameter", "").lower()
            vals = ", ".join(map(str, p.values[:8]))
            if p.n_values > 8:
                vals += ", ..."
            lines.append(f"{p.name:<14}{kind:<14}{p.n_values:>8}  {vals}")
        lines.append(f"total configurations: {self.size():,} (1e{self.log10_size():.1f})")
        for c in self.constraints:
            lines.append(f"constraint: {c.name}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParameterSpace({self.n_parameters} params, "
            f"|space|=1e{self.log10_size():.1f})"
        )
