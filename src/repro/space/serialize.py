"""Parameter-space serialization: a JSON-safe round trip for spaces.

Distilled workloads (:mod:`repro.workloads.surrogate`) must reconstruct
the source benchmark's :class:`~repro.space.ParameterSpace` in a process
that never imports the source kernel module, so the space itself travels
inside the distilled envelope as plain data.  Every built-in parameter
kind round-trips; *constraints* do not — they are arbitrary predicates —
so :func:`space_to_dict` records their names only and the caller decides
whether dropping them is acceptable (the distiller stamps the dropped
names into the envelope's provenance).
"""

from __future__ import annotations

import json
from typing import Any

from repro.space.parameters import (
    BooleanParameter,
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
)
from repro.space.space import ParameterSpace

__all__ = ["space_to_dict", "space_from_dict"]

#: Bumped on any incompatible change to the serialized space form.
SPACE_SCHEMA_VERSION = 1


def _parameter_to_dict(p: Parameter) -> dict:
    # BooleanParameter subclasses CategoricalParameter: check it first.
    if isinstance(p, BooleanParameter):
        return {"kind": "boolean", "name": p.name}
    if isinstance(p, CategoricalParameter):
        return {"kind": "categorical", "name": p.name, "categories": list(p.values)}
    if isinstance(p, IntegerParameter):
        return {
            "kind": "integer",
            "name": p.name,
            "low": p.low,
            "high": p.high,
            "step": p.step,
        }
    if isinstance(p, OrdinalParameter):
        return {"kind": "ordinal", "name": p.name, "values": list(p.values)}
    raise ValueError(
        f"parameter {p.name!r} of type {type(p).__name__} is not "
        "serializable; only the built-in parameter kinds round-trip"
    )


def space_to_dict(space: ParameterSpace) -> dict:
    """The space as a JSON-safe dict (constraints recorded by name only).

    Raises :class:`ValueError` if any parameter kind or categorical value
    does not survive a JSON round trip.
    """
    out = {
        "schema": SPACE_SCHEMA_VERSION,
        "parameters": [_parameter_to_dict(p) for p in space.parameters],
        "constraints": [c.name for c in space.constraints],
    }
    try:
        json.dumps(out)
    except TypeError as exc:
        raise ValueError(
            f"parameter space is not JSON-serializable: {exc} "
            "(categorical values must be plain JSON types)"
        ) from exc
    return out


def _parameter_from_dict(d: dict) -> Parameter:
    kind = d.get("kind")
    if kind == "boolean":
        return BooleanParameter(d["name"])
    if kind == "categorical":
        return CategoricalParameter(d["name"], d["categories"])
    if kind == "integer":
        return IntegerParameter(d["name"], d["low"], d["high"], d.get("step", 1))
    if kind == "ordinal":
        return OrdinalParameter(d["name"], d["values"])
    raise ValueError(f"unknown serialized parameter kind {kind!r}")


def space_from_dict(payload: dict) -> ParameterSpace:
    """Inverse of :func:`space_to_dict` (constraints are *not* restored)."""
    schema = int(payload.get("schema", SPACE_SCHEMA_VERSION))
    if schema > SPACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported space schema {schema} "
            f"(this build reads <= {SPACE_SCHEMA_VERSION})"
        )
    params: "list[Any]" = [_parameter_from_dict(d) for d in payload["parameters"]]
    return ParameterSpace(params)
