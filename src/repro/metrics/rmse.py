"""Prediction-error metrics (Equation 2).

The paper evaluates the model only where it matters for tuning: the top
``100α%`` of the *test set's performance ranking* (shortest observed
execution times).  ``top_alpha_rmse`` implements Equation 2 literally:
sort the test set by observed performance, keep the best ``m = ⌊nα⌋``
samples, compute RMSE there.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmse", "top_alpha_rmse"]


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Plain root-mean-square error."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if len(y_true) == 0:
        raise ValueError("cannot compute RMSE of zero samples")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def top_alpha_rmse(y_true: np.ndarray, y_pred: np.ndarray, alpha: float) -> float:
    """Equation 2: RMSE over the top ``⌊nα⌋`` samples of the performance ranking.

    High performance = short execution time, so the ranking is ascending in
    ``y_true``.  Requires ``⌊nα⌋ >= 1``.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    m = int(np.floor(len(y_true) * alpha))
    if m < 1:
        raise ValueError(
            f"test set of {len(y_true)} samples has no top-{alpha:.0%} slice"
        )
    order = np.argsort(y_true, kind="stable")[:m]
    return rmse(y_true[order], y_pred[order])
