"""Evaluation metrics of Section III-C."""

from repro.metrics.rmse import rmse, top_alpha_rmse
from repro.metrics.cost import (
    cost_to_reach,
    cumulative_cost,
    speedup_at_level,
)
from repro.metrics.calibration import CalibrationReport, uncertainty_calibration

__all__ = [
    "rmse",
    "top_alpha_rmse",
    "cumulative_cost",
    "cost_to_reach",
    "speedup_at_level",
    "CalibrationReport",
    "uncertainty_calibration",
]
