"""Uncertainty-calibration diagnostics for the surrogate's σ.

Every sampling strategy in this package consumes the model's uncertainty;
if σ is systematically off, the exploration/exploitation balance the PWU
score strikes is off too.  These diagnostics quantify σ's quality the
standard way: normalised residuals ``z = (y - μ)/σ`` should be roughly
standard-normal, so ~68% of |z| should fall below 1 and ~95% below 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CalibrationReport", "uncertainty_calibration"]


@dataclass(frozen=True)
class CalibrationReport:
    """Coverage and sharpness summary of a (μ, σ) predictive pair."""

    coverage_1sigma: float
    coverage_2sigma: float
    mean_z: float
    rms_z: float
    n: int

    @property
    def overconfident(self) -> bool:
        """σ too small: far fewer points inside ±2σ than a Gaussian's 95%."""
        return self.coverage_2sigma < 0.80

    @property
    def underconfident(self) -> bool:
        """σ too large: essentially everything inside ±1σ."""
        return self.coverage_1sigma > 0.95

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = (
            "overconfident"
            if self.overconfident
            else "underconfident"
            if self.underconfident
            else "reasonably calibrated"
        )
        return (
            f"coverage@1σ={self.coverage_1sigma:.2f} "
            f"coverage@2σ={self.coverage_2sigma:.2f} "
            f"rms(z)={self.rms_z:.2f} → {verdict}"
        )


def uncertainty_calibration(
    y_true: np.ndarray,
    mu: np.ndarray,
    sigma: np.ndarray,
    min_sigma: float = 1e-12,
) -> CalibrationReport:
    """Compute coverage/z statistics for predictions with uncertainty.

    Points with ``σ < min_sigma`` (e.g. queries landing exactly on
    training data in an interpolating forest) are excluded from the
    z-statistics but still counted in coverage when the prediction is
    exact.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if not (y_true.shape == mu.shape == sigma.shape):
        raise ValueError(
            f"shape mismatch: y{y_true.shape} mu{mu.shape} sigma{sigma.shape}"
        )
    if len(y_true) == 0:
        raise ValueError("cannot calibrate zero predictions")
    if np.any(sigma < 0):
        raise ValueError("uncertainties must be non-negative")

    residual = np.abs(y_true - mu)
    usable = sigma >= min_sigma
    # Degenerate-σ points: covered iff the prediction is (numerically) exact.
    exact = ~usable & (residual <= min_sigma)
    inside_1 = (residual <= sigma) & usable | exact
    inside_2 = (residual <= 2.0 * sigma) & usable | exact

    if usable.any():
        z = residual[usable] / sigma[usable]
        mean_z = float(z.mean())
        rms_z = float(np.sqrt(np.mean(z * z)))
    else:
        mean_z = float("nan")
        rms_z = float("nan")
    return CalibrationReport(
        coverage_1sigma=float(inside_1.mean()),
        coverage_2sigma=float(inside_2.mean()),
        mean_z=mean_z,
        rms_z=rms_z,
        n=len(y_true),
    )
