"""Modeling-cost metrics (Equation 3 and the Fig. 7 speedup).

``CC`` is the cumulative time spent *labeling*: the sum of the measured
execution times of every training sample so far.  ``cost_to_reach`` walks an
error-versus-cost trace and reports the first cumulative cost at which a
target error level is reached; the Fig. 7 speedup is the ratio of those
costs between PBUS and PWU.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cumulative_cost", "cost_to_reach", "speedup_at_level"]


def cumulative_cost(y_train: np.ndarray) -> float:
    """Equation 3: total labeling time of the training set."""
    y = np.asarray(y_train, dtype=np.float64)
    if np.any(y < 0):
        raise ValueError("execution times cannot be negative")
    return float(y.sum())


def cost_to_reach(
    costs: np.ndarray, errors: np.ndarray, level: float
) -> float:
    """First cumulative cost at which ``errors`` drops to ``level`` or below.

    ``costs`` and ``errors`` are a learning trace (both aligned, costs
    non-decreasing).  Returns ``nan`` if the level is never reached.
    """
    costs = np.asarray(costs, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    if costs.shape != errors.shape:
        raise ValueError(f"shape mismatch: {costs.shape} vs {errors.shape}")
    if len(costs) == 0:
        raise ValueError("empty learning trace")
    if np.any(np.diff(costs) < -1e-9):
        raise ValueError("cumulative costs must be non-decreasing")
    hit = np.flatnonzero(errors <= level)
    if len(hit) == 0:
        return float("nan")
    return float(costs[hit[0]])


def speedup_at_level(
    costs_baseline: np.ndarray,
    errors_baseline: np.ndarray,
    costs_ours: np.ndarray,
    errors_ours: np.ndarray,
    level: float | None = None,
    tolerance: float = 1.05,
) -> tuple[float, float]:
    """Fig. 7: baseline-cost / our-cost to reach a common low error level.

    If ``level`` is not given it is chosen as the smallest error *both*
    traces reach (so the ratio is well defined), relaxed by ``tolerance``.
    Returns ``(speedup, level)``; speedup is ``nan`` when either trace never
    reaches the level.
    """
    eb = np.asarray(errors_baseline, dtype=np.float64)
    eo = np.asarray(errors_ours, dtype=np.float64)
    if level is None:
        level = max(float(eb.min()), float(eo.min())) * tolerance
    cb = cost_to_reach(costs_baseline, eb, level)
    co = cost_to_reach(costs_ours, eo, level)
    if np.isnan(cb) or np.isnan(co) or co <= 0:
        return float("nan"), float(level)
    return cb / co, float(level)
