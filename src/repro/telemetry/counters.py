"""Monotonic counters and gauges for the engine/learner/forest stack.

Counters are always on (an integer add under a lock — cheap enough for
per-call hot-path accounting) and process-local; the executor drains each
worker's counters after every job and merges them into the parent via
:func:`absorb`, so ``--jobs N`` runs report complete totals.

These unify the accounting that used to live ad hoc in
:mod:`repro.engine.progress`: the engine's executed/cached job counts,
the result store's resume hits, the forest's pool-cache hits and
re-traversed tree counts, and the oracle/cost-model evaluation counts all
land in one namespace (``engine.*``, ``forest.*``, ``learner.*``,
``costmodel.*``) and are exported alongside the span events by
:mod:`repro.telemetry.sink`.

The fault-tolerance layer reports through the same namespace, so
``repro trace summarize`` shows what a chaos run survived:

* ``engine.jobs.retried`` / ``engine.jobs.failed`` /
  ``engine.jobs.timeouts`` — attempt-level retries, permanent failures,
  and wall-clock timeouts;
* ``engine.pool.restarts`` / ``engine.pool.degraded_serial`` — worker
  pools rebuilt after a mid-run death, and batches that fell back to
  serial execution after repeated deaths;
* ``engine.faults.{crash,hang,exc,slow}`` — chaos faults injected by
  :mod:`repro.engine.faults` (``crash`` is counted in the worker that
  dies, so its increments are lost with the worker by design — observe
  crashes via ``engine.pool.restarts`` instead);
* ``engine.store.torn_tail_dropped`` / ``engine.store.corrupt_lines`` /
  ``engine.store.migrated_artifacts`` / ``engine.store.compactions`` —
  journal-replay repairs and maintenance in the result store.
"""

from __future__ import annotations

import threading

__all__ = [
    "inc",
    "gauge",
    "value",
    "counters_snapshot",
    "gauges_snapshot",
    "drain",
    "absorb",
    "reset",
]

_lock = threading.Lock()
_counts: "dict[str, float]" = {}
_gauges: "dict[str, float]" = {}


def inc(name: str, value: float = 1) -> None:
    """Add ``value`` to the monotonic counter ``name`` (creating it at 0)."""
    with _lock:
        _counts[name] = _counts.get(name, 0) + value


def gauge(name: str, value: float) -> None:
    """Set the gauge ``name`` to its latest observed ``value``."""
    with _lock:
        _gauges[name] = value


def value(name: str, default: float = 0) -> float:
    """Current value of one counter (``default`` when never incremented)."""
    with _lock:
        return _counts.get(name, default)


def counters_snapshot() -> "dict[str, float]":
    """Current counter values (copy; counters keep accumulating)."""
    with _lock:
        return dict(_counts)


def gauges_snapshot() -> "dict[str, float]":
    """Current gauge values (copy)."""
    with _lock:
        return dict(_gauges)


def drain() -> "dict[str, float]":
    """Return current counter values and reset them to zero.

    Used by pool workers to ship per-job counter deltas back to the
    parent process for merging.
    """
    with _lock:
        counts = dict(_counts)
        _counts.clear()
    return counts


def absorb(delta: "dict[str, float]") -> None:
    """Merge a counter delta drained from another process."""
    with _lock:
        for name, value in delta.items():
            _counts[name] = _counts.get(name, 0) + value


def reset() -> None:
    """Zero all counters and gauges (worker initialisation, tests)."""
    with _lock:
        _counts.clear()
        _gauges.clear()
