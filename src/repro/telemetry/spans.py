"""Nestable timed spans recorded into a process-local ring buffer.

A span times one named phase of work::

    with span("forest.fit", trees=30):
        ...

When tracing is disabled (the default), :func:`span` returns a shared
no-op context manager — the cost is one module-global load and one
function call, so instrumentation can live on hot paths.  Tracing is
switched on by the ``REPRO_TRACE`` environment variable, the CLI's
``--trace`` flag, or programmatically via :func:`enable` /
:func:`tracing`.

Events land in a bounded ring buffer (oldest events are dropped once
``capacity`` is exceeded; the drop count is recorded).  Each event is a
plain dict — ``{"kind": "span", "name", "ts", "dur", "pid", "tid",
"depth", "attrs"}`` — with ``ts`` an epoch timestamp (comparable across
processes) and ``dur`` measured with ``perf_counter``.  Worker processes
drain their buffer after every job and the executor merges the events
back into the parent's buffer (see :mod:`repro.engine.executor`), so a
``--jobs N`` trace is complete.

Spans never touch any random-number generator and never change control
flow: traced and untraced runs produce bit-identical experiment
histories (pinned by ``tests/test_trace_equivalence.py``).
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from collections import deque

__all__ = [
    "span",
    "enable",
    "disable",
    "enabled",
    "tracing",
    "record_event",
    "absorb_events",
    "drain_events",
    "clear",
    "dropped_events",
    "TRACE_ENV",
    "DEFAULT_CAPACITY",
]

#: Environment variable that switches tracing on at import time.
TRACE_ENV = "REPRO_TRACE"

#: Ring-buffer capacity (events); the oldest events are dropped beyond it.
DEFAULT_CAPACITY = 1 << 16

# repro: allow[DET004] import-time trace gate; tracing on/off is bit-identical (test_trace_equivalence)
_enabled: bool = os.environ.get(TRACE_ENV, "") not in ("", "0")
_lock = threading.Lock()
_buffer: "deque[dict]" = deque(maxlen=DEFAULT_CAPACITY)
_dropped = 0
_tls = threading.local()


def enabled() -> bool:
    """Whether span recording is currently on."""
    return _enabled


def enable() -> None:
    """Switch span recording on (idempotent)."""
    global _enabled
    # repro: allow[SPAWN001] process-wide gate flipped by the parent before jobs run; workers set their own in _worker_init
    _enabled = True


def disable() -> None:
    """Switch span recording off; buffered events are kept until drained."""
    global _enabled
    # repro: allow[SPAWN001] process-wide gate, as in enable()
    _enabled = False


@contextlib.contextmanager
def tracing(on: bool = True):
    """Scope the enabled state (used by tests and the API facade).

    Restores the previous enabled state on exit; buffered events are left
    for the caller to drain.
    """
    global _enabled
    previous = _enabled
    # repro: allow[SPAWN001] scoped gate flip in the controlling process (tests/facade), not worker code
    _enabled = on
    try:
        yield
    finally:
        # repro: allow[SPAWN001] restores the gate on scope exit, as above
        _enabled = previous


def record_event(event: dict) -> None:
    """Append one event dict to the ring buffer (drops oldest when full)."""
    global _dropped
    with _lock:
        if len(_buffer) == _buffer.maxlen:
            _dropped += 1
        _buffer.append(event)


def absorb_events(events: "list[dict]") -> None:
    """Merge events drained from another process into the local buffer."""
    global _dropped
    with _lock:
        for event in events:
            if len(_buffer) == _buffer.maxlen:
                _dropped += 1
            _buffer.append(event)


def drain_events() -> "list[dict]":
    """Return all buffered events and clear the buffer."""
    with _lock:
        events = list(_buffer)
        _buffer.clear()
    return events


def clear() -> None:
    """Discard all buffered events and reset the drop counter."""
    global _dropped
    with _lock:
        _buffer.clear()
        _dropped = 0


def dropped_events() -> int:
    """How many events the ring buffer has dropped since the last clear."""
    return _dropped


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    """A live span: records one event when its ``with`` block exits."""

    __slots__ = ("name", "attrs", "_depth", "_ts", "_t0")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        depth = getattr(_tls, "depth", 0)
        self._depth = depth
        _tls.depth = depth + 1
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        _tls.depth = self._depth
        event = {
            "kind": "span",
            "name": self.name,
            "ts": self._ts,
            "dur": dur,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "depth": self._depth,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        record_event(event)
        return False


def span(name: str, **attrs):
    """A context manager timing one named phase.

    ``attrs`` are free-form JSON-serialisable annotations (counts, sizes,
    keys).  While tracing is disabled this returns a shared no-op object
    without touching the clock — the disabled fast path.
    """
    if not _enabled:
        return _NOOP
    return _Span(name, attrs)
