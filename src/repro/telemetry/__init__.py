"""Structured tracing and metrics for the engine/learner/forest stack.

Three pieces, all dependency-free:

- :mod:`repro.telemetry.spans` — nestable timed spans recorded into a
  process-local ring buffer, with a near-zero-cost no-op path while
  tracing is disabled (the default; enable with ``REPRO_TRACE=1`` or the
  CLI's ``--trace``).
- :mod:`repro.telemetry.counters` — always-on monotonic counters and
  gauges (pool-cache hits, trees re-traversed, evaluations, store
  resume hits) in one namespace.
- :mod:`repro.telemetry.sink` — JSONL trace export with a
  content-addressed run id, read-back, and the per-phase summary table
  behind ``repro trace summarize``.

The executor drains worker-process buffers through its result channel
and merges them here, so ``--jobs N`` traces are complete.  Tracing
never perturbs experiment results: traced and untraced runs are
bit-identical (``tests/test_trace_equivalence.py``).
"""

from .counters import (
    absorb,
    counters_snapshot,
    drain,
    gauge,
    gauges_snapshot,
    inc,
    reset,
    value,
)
from .sink import (
    LEARNER_PHASES,
    TRACE_SCHEMA_VERSION,
    phase_coverage,
    phase_totals,
    read_trace,
    run_id_for_keys,
    summarize,
    write_trace,
)
from .spans import (
    DEFAULT_CAPACITY,
    TRACE_ENV,
    absorb_events,
    clear,
    disable,
    drain_events,
    dropped_events,
    enable,
    enabled,
    record_event,
    span,
    tracing,
)

__all__ = [
    # spans
    "span",
    "enable",
    "disable",
    "enabled",
    "tracing",
    "record_event",
    "absorb_events",
    "drain_events",
    "clear",
    "dropped_events",
    "TRACE_ENV",
    "DEFAULT_CAPACITY",
    # counters
    "inc",
    "gauge",
    "value",
    "counters_snapshot",
    "gauges_snapshot",
    "drain",
    "absorb",
    "reset",
    # sink
    "TRACE_SCHEMA_VERSION",
    "LEARNER_PHASES",
    "run_id_for_keys",
    "write_trace",
    "read_trace",
    "phase_totals",
    "phase_coverage",
    "summarize",
]
