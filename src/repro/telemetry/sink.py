"""JSONL trace export and the end-of-run summary table.

A trace file is newline-delimited JSON: one header line (schema version,
content-addressed run id, creation time), one line per span event, and
one line per counter/gauge.  The run id is derived from the executed
job keys (see :func:`run_id_for_keys` and :mod:`repro.engine.jobs`), so
the same experiment always traces under the same id.

:func:`summarize` renders the per-phase accounting table the CLI's
``repro trace summarize <file>`` subcommand prints and traced runs show
on stderr: per span name the call count, total and self time (total
minus time spent in nested spans), plus the learner-phase coverage — the
fraction of traced job wall time accounted for by the
select/evaluate/refit/record phases — and all counters.
"""

from __future__ import annotations

import hashlib
import json
import math
import time

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "LEARNER_PHASES",
    "run_id_for_keys",
    "write_trace",
    "read_trace",
    "phase_totals",
    "phase_coverage",
    "summarize",
]

#: Bumped when the trace file layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: The learner phases whose totals partition a trial's wall time.
LEARNER_PHASES = (
    "learner.select",
    "learner.evaluate",
    "learner.refit",
    "learner.record",
)


def run_id_for_keys(keys: "list[str]") -> str:
    """Content-addressed run id: SHA-256 over the sorted job keys (16 hex)."""
    payload = "trace-run:" + ",".join(sorted(keys))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def write_trace(
    path: str,
    events: "list[dict]",
    counters: "dict[str, float] | None" = None,
    gauges: "dict[str, float] | None" = None,
    run_id: "str | None" = None,
    dropped: int = 0,
) -> str:
    """Write one trace file (header + span events + counters); returns ``path``.

    ``run_id`` defaults to the id recorded by the last ``engine.run`` span
    in ``events`` (or ``"untagged"`` if none ran).
    """
    if run_id is None:
        run_id = "untagged"
        for event in events:
            if event.get("name") == "engine.run":
                run_id = event.get("attrs", {}).get("run_id", run_id)
    header = {
        "kind": "header",
        "schema": TRACE_SCHEMA_VERSION,
        "run_id": run_id,
        "created": time.time(),
        "n_events": len(events),
        "dropped_events": int(dropped),
    }
    # repro: allow[IO001] observability output, never a result artifact; a torn trace is detectable via the header's n_events
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
        for name, value in sorted((counters or {}).items()):
            fh.write(
                json.dumps({"kind": "counter", "name": name, "value": value})
                + "\n"
            )
        for name, value in sorted((gauges or {}).items()):
            fh.write(
                json.dumps({"kind": "gauge", "name": name, "value": value})
                + "\n"
            )
    return path


def read_trace(path: str) -> dict:
    """Parse a trace file back into its parts.

    Returns ``{"header": dict, "events": [span dicts], "counters": {...},
    "gauges": {...}}``.  Unknown line kinds are ignored so newer traces
    stay readable.
    """
    header: dict = {}
    events: "list[dict]" = []
    counters: "dict[str, float]" = {}
    gauges: "dict[str, float]" = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "header":
                header = record
            elif kind == "span":
                events.append(record)
            elif kind == "counter":
                counters[record["name"]] = record["value"]
            elif kind == "gauge":
                gauges[record["name"]] = record["value"]
    return {
        "header": header,
        "events": events,
        "counters": counters,
        "gauges": gauges,
    }


def phase_totals(events: "list[dict]") -> "dict[str, dict]":
    """Per span name: ``{"count", "total", "self", "mean"}`` (seconds).

    Self time subtracts the duration of directly nested spans, recovered
    from the recorded per-thread nesting depths: within one ``(pid, tid)``
    stream, spans are well nested, so ordering by start time and popping
    a stack on non-increasing depth reconstructs the parent chain.
    """
    spans = [e for e in events if e.get("kind") == "span"]
    by_thread: "dict[tuple, list[dict]]" = {}
    for event in spans:
        by_thread.setdefault((event.get("pid"), event.get("tid")), []).append(event)
    child_time: "dict[int, float]" = {}
    for stream in by_thread.values():
        stream.sort(key=lambda e: (e["ts"], -e.get("depth", 0)))
        stack: "list[dict]" = []
        for event in stream:
            depth = event.get("depth", 0)
            while stack and stack[-1].get("depth", 0) >= depth:
                stack.pop()
            if stack:
                parent = stack[-1]
                child_time[id(parent)] = (
                    child_time.get(id(parent), 0.0) + event["dur"]
                )
            stack.append(event)
    totals: "dict[str, dict]" = {}
    for event in spans:
        entry = totals.setdefault(
            event["name"], {"count": 0, "total": 0.0, "self": 0.0}
        )
        entry["count"] += 1
        entry["total"] += event["dur"]
        entry["self"] += max(0.0, event["dur"] - child_time.get(id(event), 0.0))
    for entry in totals.values():
        entry["mean"] = entry["total"] / entry["count"]
    return totals


def phase_coverage(events: "list[dict]") -> "tuple[float, float, float]":
    """``(phase_total, job_wall, fraction)`` of learner-phase accounting.

    ``phase_total`` sums the :data:`LEARNER_PHASES` totals; ``job_wall``
    sums the ``engine.job`` span durations (falling back to the overall
    event extent when no job spans were recorded).  The fraction is the
    acceptance signal: the per-phase totals must explain (nearly) all of
    the traced wall time.
    """
    totals = phase_totals(events)
    # engine.prepare (the once-per-process benchmark split, incl. measuring
    # the test labels) is a direct child of the first engine.job and can
    # dominate it on tiny runs, so it counts toward the accounted time.
    phases = LEARNER_PHASES + ("engine.prepare",)
    phase_total = sum(totals[p]["total"] for p in phases if p in totals)
    if "engine.job" in totals:
        job_wall = totals["engine.job"]["total"]
    else:
        spans = [e for e in events if e.get("kind") == "span"]
        if spans:
            t0 = min(e["ts"] for e in spans)
            t1 = max(e["ts"] + e["dur"] for e in spans)
            job_wall = t1 - t0
        else:
            job_wall = 0.0
    fraction = phase_total / job_wall if job_wall > 0 else math.nan
    return phase_total, job_wall, fraction


def _format_row(cells: "list[str]", widths: "list[int]") -> str:
    return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()


def summarize(trace: "dict | list[dict]") -> str:
    """Render the summary table for a parsed trace (or a raw event list)."""
    if isinstance(trace, list):
        trace = {"header": {}, "events": trace, "counters": {}, "gauges": {}}
    events = trace.get("events", [])
    totals = phase_totals(events)
    header = trace.get("header", {})
    run_id = header.get("run_id", "untagged")
    lines = [
        f"[trace] run {run_id}: {len(events)} span events"
        + (
            f" ({header['dropped_events']} dropped)"
            if header.get("dropped_events")
            else ""
        )
    ]
    rows = [["phase", "count", "total(s)", "self(s)", "mean(ms)"]]
    for name in sorted(totals, key=lambda n: -totals[n]["total"]):
        entry = totals[name]
        rows.append(
            [
                name,
                str(entry["count"]),
                f"{entry['total']:.3f}",
                f"{entry['self']:.3f}",
                f"{entry['mean'] * 1e3:.2f}",
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines.extend(_format_row(r, widths) for r in rows)
    phase_total, job_wall, fraction = phase_coverage(events)
    if job_wall > 0:
        lines.append(
            f"accounted phases (select+evaluate+refit+record+prepare): "
            f"{phase_total:.3f}s of {job_wall:.3f}s traced job time "
            f"({fraction * 100:.1f}%)"
        )
    counters = trace.get("counters", {})
    gauges = trace.get("gauges", {})
    if counters or gauges:
        lines.append("counters:")
        for name, value in sorted({**counters, **gauges}.items()):
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name} = {shown}")
    return "\n".join(lines)
