"""The benchmark interface the active learner evaluates against."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from repro.noise import MeasurementProtocol
from repro.rng import as_generator
from repro.space import ParameterSpace

__all__ = ["Benchmark"]


class Benchmark(ABC):
    """A tuning search problem: a parameter space plus a timing oracle.

    Subclasses implement :meth:`true_times_encoded`, the deterministic
    noise-free response surface over encoded configurations.  Measurement
    (what ``Evaluate`` in Algorithm 1 does) adds system noise and averages
    repeats per the benchmark's :class:`MeasurementProtocol`.
    """

    #: Short identifier, e.g. ``"atax"`` or ``"kripke"``.
    name: str

    def __init__(self, space: ParameterSpace, protocol: MeasurementProtocol) -> None:
        self._space = space
        self._protocol = protocol

    # -- interface ---------------------------------------------------------
    @property
    def space(self) -> ParameterSpace:
        return self._space

    @property
    def protocol(self) -> MeasurementProtocol:
        return self._protocol

    @abstractmethod
    def true_times_encoded(self, X: np.ndarray) -> np.ndarray:
        """Noise-free execution time (seconds) for each encoded row of ``X``.

        Must be deterministic and vectorised: shape ``(n, d)`` in,
        shape ``(n,)`` out, all entries positive and finite.
        """

    # -- measurement -----------------------------------------------------------
    def evaluate_batch(self, X: np.ndarray, rng=None) -> np.ndarray:
        """Measure a whole batch of encoded configurations in one call.

        This is the batched evaluation contract the engine, the active
        learner, and the tuning service all route through: shape ``(n, d)``
        in, observed seconds shape ``(n,)`` out.  One call drives one
        vectorised :meth:`true_times_encoded` pass plus one noise draw from
        the measurement protocol — the closed-form cost models underneath
        are pure numpy, so evaluating a pool-sized batch costs barely more
        than evaluating one configuration (``benchmarks/perf/bench_engine.py``
        tracks the ratio).  Calling this once with ``n`` rows is
        bit-identical to what a single fused call has always produced; it is
        NOT equivalent to ``n`` single-row calls, which would consume the
        measurement RNG differently.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        t = self.true_times_encoded(X)
        t = np.asarray(t, dtype=np.float64)
        if t.shape != (len(X),):
            raise RuntimeError(
                f"{self.name}: true_times_encoded returned shape {t.shape} "
                f"for {len(X)} configurations"
            )
        if not np.isfinite(t).all() or np.any(t <= 0):
            raise RuntimeError(f"{self.name}: non-positive or non-finite true times")
        return self._protocol.observe(t, as_generator(rng))

    def measure_encoded(self, X: np.ndarray, rng=None) -> np.ndarray:
        """Observed (noisy, repeat-averaged) times for encoded configurations.

        This is the ``Evaluate`` step of Algorithm 1; its output is what the
        surrogate model trains on.  A thin alias of :meth:`evaluate_batch`
        kept for callers that think in single measurements.
        """
        return self.evaluate_batch(X, rng)

    def measure(self, config: Mapping, rng=None) -> float:
        """Measure a single configuration given as a dict."""
        X = self._space.encode(dict(config))
        return float(self.evaluate_batch(X, rng)[0])

    def true_time(self, config: Mapping) -> float:
        """Noise-free time of a single configuration dict."""
        X = self._space.encode(dict(config))
        return float(self.true_times_encoded(X)[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self._space.n_parameters} params, |space|=1e{self._space.log10_size():.1f})"
        )
