"""The benchmark interface the active learner evaluates against."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from repro.noise import MeasurementProtocol
from repro.rng import as_generator
from repro.space import ParameterSpace

__all__ = ["Benchmark"]


class Benchmark(ABC):
    """A tuning search problem: a parameter space plus a timing oracle.

    Subclasses implement :meth:`true_times_encoded`, the deterministic
    noise-free response surface over encoded configurations.  Measurement
    (what ``Evaluate`` in Algorithm 1 does) adds system noise and averages
    repeats per the benchmark's :class:`MeasurementProtocol`.
    """

    #: Short identifier, e.g. ``"atax"`` or ``"kripke"``.
    name: str

    def __init__(self, space: ParameterSpace, protocol: MeasurementProtocol) -> None:
        self._space = space
        self._protocol = protocol

    # -- interface ---------------------------------------------------------
    @property
    def space(self) -> ParameterSpace:
        return self._space

    @property
    def protocol(self) -> MeasurementProtocol:
        return self._protocol

    @abstractmethod
    def true_times_encoded(self, X: np.ndarray) -> np.ndarray:
        """Noise-free execution time (seconds) for each encoded row of ``X``.

        Must be deterministic and vectorised: shape ``(n, d)`` in,
        shape ``(n,)`` out, all entries positive and finite.
        """

    # -- measurement -----------------------------------------------------------
    def measure_encoded(self, X: np.ndarray, rng=None) -> np.ndarray:
        """Observed (noisy, repeat-averaged) times for encoded configurations.

        This is the ``Evaluate`` step of Algorithm 1; its output is what the
        surrogate model trains on.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        t = self.true_times_encoded(X)
        t = np.asarray(t, dtype=np.float64)
        if t.shape != (len(X),):
            raise RuntimeError(
                f"{self.name}: true_times_encoded returned shape {t.shape} "
                f"for {len(X)} configurations"
            )
        if not np.isfinite(t).all() or np.any(t <= 0):
            raise RuntimeError(f"{self.name}: non-positive or non-finite true times")
        return self._protocol.observe(t, as_generator(rng))

    def measure(self, config: Mapping, rng=None) -> float:
        """Measure a single configuration given as a dict."""
        X = self._space.encode(dict(config))
        return float(self.measure_encoded(X, rng)[0])

    def true_time(self, config: Mapping) -> float:
        """Noise-free time of a single configuration dict."""
        X = self._space.encode(dict(config))
        return float(self.true_times_encoded(X)[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"{self._space.n_parameters} params, |space|=1e{self._space.log10_size():.1f})"
        )
