"""Distilled surrogate workloads: frozen models as first-class benchmarks.

Eggensperger et al. ("Efficient Benchmarking of Algorithm Configuration
Procedures via Model-Based Surrogates") showed that a model trained on a
benchmark can *replace* the benchmark for method development: evaluating
the model costs microseconds where the real measurement protocol costs
repeat-averaged executions.  This module implements that pattern on top
of the :mod:`repro.surrogate` envelope:

:class:`SurrogateBenchmark`
    wraps any fitted surrogate (forest, gp, select, stack, ...) as a
    :class:`~repro.workloads.base.Benchmark` — the frozen model's mean
    prediction is the deterministic ``true_times_encoded`` response
    surface, a fitted log-normal :class:`~repro.noise.MeasurementProtocol`
    sits on top, and the source benchmark's
    :class:`~repro.space.ParameterSpace` is reconstructed from metadata
    stamped at distillation time.

:func:`distill_workload`
    runs a sampling campaign against a source benchmark, fits the named
    surrogate family, estimates the noise model, and returns the wrapped
    benchmark (``repro distill`` is the CLI verb).

:func:`save_distilled` / :func:`load_distilled`
    one ``.npz`` envelope: the surrogate envelope's arrays plus a
    ``workload_meta`` JSON blob (space, noise, provenance).  The file is
    a superset of the plain surrogate envelope, so
    :func:`repro.surrogate.load_surrogate` (and, for forests,
    :func:`repro.forest.load_forest`) still read it.

Distilled workloads resolve anywhere a benchmark name does —
``surrogate:<path.npz>`` loads a file directly, and files committed to
the zoo (``benchmarks/distilled/`` at the repository root) register as
``distilled:<stem>`` — so ``repro run``, :func:`repro.api.compare`, the
figure harness, and :class:`repro.service` sessions all accept them.
Because evaluation is one fused model prediction plus a single noise draw
(no 35-repeat averaging), they make near-zero-cost regression substrates
for strategy development against a *fixed* response surface.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

import numpy as np

from repro.envelope import EnvelopeError, describe_file, read_npz_payload
from repro.noise import MeasurementProtocol
from repro.rng import derive
from repro.space import ParameterSpace, space_from_dict, space_to_dict
from repro.telemetry import counters
from repro.workloads.base import Benchmark

__all__ = [
    "SurrogateBenchmark",
    "distill_workload",
    "save_distilled",
    "load_distilled",
    "zoo_dir",
    "zoo_entries",
    "NOISE_MODES",
    "WORKLOAD_SCHEMA_VERSION",
    "FILE_PREFIX",
    "ZOO_PREFIX",
]

#: Bumped on any incompatible change to the ``workload_meta`` schema.
WORKLOAD_SCHEMA_VERSION = 1

#: Name prefix resolving a distilled envelope straight from a file path.
FILE_PREFIX = "surrogate:"

#: Name prefix of committed zoo workloads (``distilled:<stem>``).
ZOO_PREFIX = "distilled:"

#: Noise-model estimation modes for :func:`distill_workload`:
#:
#: ``protocol``
#:     (default) one draw whose log-σ matches the *repeat-averaged* output
#:     of the source protocol (σ/√n_repeats) — same observation noise the
#:     learner saw, at 1/n_repeats the draw cost; outliers, which the
#:     averaging dilutes, are dropped.
#: ``residual``
#:     log-σ fitted from the distillation campaign's residuals
#:     ``std(log y − log μ)`` — captures model misfit as observation
#:     noise.
#: ``exact``
#:     the source protocol verbatim (repeats, outliers and all).
#: ``none``
#:     zero noise: observations are bit-identical to the frozen surface
#:     (see :attr:`MeasurementProtocol.is_exact`).
NOISE_MODES = ("protocol", "residual", "exact", "none")

_EXPECTED = (
    f"a repro distilled-workload .npz envelope (workload_meta JSON, "
    f"workload_schema <= {WORKLOAD_SCHEMA_VERSION}, surrogate arrays; "
    "see repro.workloads.surrogate)"
)


class SurrogateBenchmark(Benchmark):
    """A frozen surrogate model serving as a deterministic benchmark.

    ``true_times_encoded`` is the model's mean prediction (floored at
    ``time_floor`` — model extrapolations must stay positive); the
    measurement protocol on top is whatever the distiller fitted.  The
    instance also keeps the raw serialized payload so saving it again is
    byte-stable (no refit, no re-pack).
    """

    def __init__(
        self,
        name: str,
        space: ParameterSpace,
        protocol: MeasurementProtocol,
        model,
        meta: dict,
        payload: "dict[str, np.ndarray] | None" = None,
    ) -> None:
        super().__init__(space, protocol)
        self.name = name
        self.model = model
        self.meta = meta
        self._payload = payload
        self._time_floor = float(meta.get("time_floor", 1e-12))

    def true_times_encoded(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        mu = np.asarray(self.model.predict(X), dtype=np.float64)
        return np.maximum(mu, self._time_floor)

    @property
    def provenance(self) -> dict:
        """Distillation provenance stamped into the envelope."""
        return dict(self.meta.get("provenance", {}))


def _noise_protocol(
    mode: str,
    source_protocol: MeasurementProtocol,
    y: np.ndarray,
    mu: np.ndarray,
) -> MeasurementProtocol:
    if mode == "exact":
        return source_protocol
    if mode == "none":
        return MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0)
    if mode == "protocol":
        sigma = source_protocol.noise_sigma / np.sqrt(source_protocol.n_repeats)
        return MeasurementProtocol(
            n_repeats=1, noise_sigma=float(sigma), outlier_prob=0.0
        )
    if mode == "residual":
        sigma = float(np.std(np.log(y) - np.log(np.maximum(mu, 1e-300))))
        return MeasurementProtocol(
            n_repeats=1, noise_sigma=sigma, outlier_prob=0.0
        )
    raise ValueError(f"unknown noise mode {mode!r}; choose from {NOISE_MODES}")


def distill_workload(
    benchmark: Benchmark,
    surrogate: str = "forest",
    budget: int = 512,
    seed: int = 0,
    noise: str = "protocol",
    n_estimators: int = 30,
    name: "str | None" = None,
) -> SurrogateBenchmark:
    """Distill ``benchmark`` into a frozen surrogate workload.

    Runs a ``budget``-configuration sampling campaign (unique uniform
    draws, one fused :meth:`~Benchmark.evaluate_batch` measurement pass),
    fits the named surrogate family on the observations, estimates the
    noise model per ``noise`` (see :data:`NOISE_MODES`), and returns the
    wrapped :class:`SurrogateBenchmark` carrying full provenance.  All
    randomness derives from ``seed`` keyed by the source benchmark's name,
    so distilling twice produces bit-identical envelopes.

    The source space's *constraints* (arbitrary predicates) cannot travel
    through the envelope; they are dropped, and their names recorded in
    ``provenance["constraints_dropped"]`` — the frozen model still scores
    infeasible points, as extrapolations.
    """
    from repro._version import __version__
    from repro.surrogate import make_surrogate

    if budget < 2:
        raise ValueError(f"distillation budget must be >= 2, got {budget}")
    if noise not in NOISE_MODES:
        raise ValueError(f"unknown noise mode {noise!r}; choose from {NOISE_MODES}")

    campaign_rng = derive(seed, "distill", benchmark.name)
    X = benchmark.space.sample_unique_encoded(campaign_rng, budget)
    y = benchmark.evaluate_batch(X, campaign_rng)

    # Duck-typed config: the surrogate factories read the forest knobs via
    # getattr with the learner's historical defaults.
    config = SimpleNamespace(
        n_estimators=int(n_estimators),
        max_features="third",
        min_samples_leaf=1,
        uncertainty="across_trees",
    )
    model = make_surrogate(
        surrogate, config=config, rng=derive(seed, "distill", benchmark.name, "fit")
    )
    model.fit(X, y)

    mu = np.asarray(model.predict(X), dtype=np.float64)
    protocol = _noise_protocol(noise, benchmark.protocol, y, mu)
    workload_name = name or f"{benchmark.name}-{surrogate}"
    meta = {
        "schema": WORKLOAD_SCHEMA_VERSION,
        "name": workload_name,
        "space": space_to_dict(benchmark.space),
        "noise": protocol.to_dict(),
        "time_floor": float(np.min(y) * 1e-3),
        "provenance": {
            "source": benchmark.name,
            "surrogate": surrogate,
            "budget": int(budget),
            "seed": int(seed),
            "noise_mode": noise,
            "n_estimators": int(n_estimators),
            "package_version": __version__,
            "source_protocol": benchmark.protocol.to_dict(),
            "constraints_dropped": [c.name for c in benchmark.space.constraints],
            "fit_rmse_log": float(
                np.sqrt(np.mean((np.log(y) - np.log(np.maximum(mu, 1e-300))) ** 2))
            ),
        },
    }
    counters.inc("surrogate.distills")
    return SurrogateBenchmark(
        workload_name, space_from_dict(meta["space"]), protocol, model, meta
    )


def save_distilled(bench: SurrogateBenchmark, file) -> None:
    """Write a distilled workload's envelope to ``file`` (path or buffer).

    The envelope is the surrogate envelope plus a ``workload_schema``
    stamp and the ``workload_meta`` JSON blob, so plain surrogate (and,
    for forests, forest) loaders read the same file.
    """
    if bench._payload is not None:
        payload = dict(bench._payload)
    else:
        from repro.surrogate.serialize import SURROGATE_SCHEMA_VERSION

        payload = dict(bench.model.serialize())
        payload["surrogate_kind"] = np.asarray(bench.model.kind)
        payload["surrogate_schema"] = np.asarray(SURROGATE_SCHEMA_VERSION)
    payload["workload_schema"] = np.asarray(WORKLOAD_SCHEMA_VERSION)
    payload["workload_meta"] = np.asarray(
        json.dumps(bench.meta, sort_keys=True, separators=(",", ":"))
    )
    np.savez_compressed(file, **payload)


def load_distilled(file) -> SurrogateBenchmark:
    """Load a distilled workload saved by :func:`save_distilled`.

    Missing, truncated, or foreign files — including valid surrogate
    envelopes that were never distilled (no ``workload_meta``) — raise a
    typed :class:`~repro.envelope.EnvelopeError` naming the file and the
    expected schema.
    """
    source = describe_file(file)
    payload = read_npz_payload(file, _EXPECTED)
    if "workload_meta" not in payload:
        raise EnvelopeError(
            source,
            _EXPECTED,
            "archive has no workload_meta stamp — this is not a distilled "
            "workload (a plain surrogate/forest envelope cannot serve as a "
            "benchmark; run `repro distill` to create one)",
        )
    schema = int(payload.get("workload_schema", WORKLOAD_SCHEMA_VERSION))
    if schema > WORKLOAD_SCHEMA_VERSION:
        raise EnvelopeError(
            source,
            _EXPECTED,
            f"unsupported workload schema {schema} "
            f"(this build reads <= {WORKLOAD_SCHEMA_VERSION})",
        )
    try:
        meta = json.loads(str(payload["workload_meta"]))
        space = space_from_dict(meta["space"])
        protocol = MeasurementProtocol.from_dict(meta["noise"])
        name = str(meta["name"])
    except (KeyError, ValueError, TypeError) as exc:
        raise EnvelopeError(
            source, _EXPECTED, f"corrupt workload_meta ({exc})"
        ) from exc
    from repro.surrogate.serialize import surrogate_from_payload

    try:
        model = surrogate_from_payload(payload, source=source)
    except ValueError as exc:
        if isinstance(exc, EnvelopeError):
            raise
        raise EnvelopeError(source, _EXPECTED, str(exc)) from exc
    counters.inc("surrogate.distilled_loads")
    return SurrogateBenchmark(name, space, protocol, model, meta, payload=payload)


# -- the committed zoo --------------------------------------------------------


def zoo_dir() -> "Path | None":
    """The committed distilled-workload directory, if present.

    ``benchmarks/distilled/`` at the repository root (three levels above
    this module under the ``src/`` layout); ``None`` for installations
    without the repository checkout.
    """
    root = Path(__file__).resolve().parents[3]
    d = root / "benchmarks" / "distilled"
    return d if d.is_dir() else None


def zoo_entries() -> "dict[str, Path]":
    """Registry names → paths of every committed zoo envelope, sorted."""
    d = zoo_dir()
    if d is None:
        return {}
    return {f"{ZOO_PREFIX}{p.stem}": p for p in sorted(d.glob("*.npz"))}
