"""Global benchmark registry.

The experiment drivers look benchmarks up by name ("atax", "kripke", ...);
the kernel and application modules register factories at import time.
Factories (rather than instances) keep registry imports cheap and let each
experiment own a fresh benchmark object.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Benchmark

__all__ = ["register_benchmark", "get_benchmark", "all_benchmarks"]

_REGISTRY: dict[str, Callable[[], Benchmark]] = {}


def register_benchmark(name: str, factory: Callable[[], Benchmark]) -> None:
    """Register ``factory`` under ``name``; re-registration is an error."""
    if name in _REGISTRY:
        raise ValueError(
            f"benchmark {name!r} is already registered; remove the duplicate "
            "registration instead of shadowing it"
        )
    # repro: allow[SPAWN001] registry populated at import time, before any worker exists
    _REGISTRY[name] = factory


def get_benchmark(name: str) -> Benchmark:
    """Instantiate the benchmark registered under ``name``."""
    _ensure_loaded()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    return factory()


def all_benchmarks() -> tuple[str, ...]:
    """Names of all registered benchmarks (kernels first, then apps).

    The order is canonical — independent of which registering module
    happened to be imported first.
    """
    _ensure_loaded()
    from repro.kernels import SPAPT_KERNEL_NAMES

    canonical = [n for n in SPAPT_KERNEL_NAMES if n in _REGISTRY]
    canonical += [n for n in ("kripke", "hypre") if n in _REGISTRY]
    canonical += [n for n in _REGISTRY if n not in canonical]
    return tuple(canonical)


def _ensure_loaded() -> None:
    # Import for the side effect of registration; deferred to avoid cycles.
    import repro.kernels  # noqa: F401
    import repro.apps  # noqa: F401
