"""Global benchmark registry.

The experiment drivers look benchmarks up by name ("atax", "kripke", ...);
the kernel and application modules register factories at import time.
Factories (rather than instances) keep registry imports cheap and let each
experiment own a fresh benchmark object.

Beyond plain registered names, :func:`get_benchmark` resolves two
prefixed forms (see :mod:`repro.workloads.surrogate`):

``surrogate:<path.npz>``
    loads a distilled-workload envelope straight from a file — nothing
    to register, so ad-hoc distillations work everywhere a name does;
``distilled:<stem>``
    a distilled envelope committed to the zoo (``benchmarks/distilled/``
    at the repository root), registered lazily at first lookup.

Alias prefixes ``kernel:`` and ``app:`` strip to the plain name, so CLI
examples like ``kernel:atax`` resolve too.
"""

from __future__ import annotations

from typing import Callable

from repro.registry import NameRegistry
from repro.workloads.base import Benchmark

__all__ = ["register_benchmark", "get_benchmark", "all_benchmarks"]

_REGISTRY = NameRegistry("benchmark")

#: Prefixes that are plain aliases for the bare registered name.
_ALIAS_PREFIXES = ("kernel:", "app:")


def register_benchmark(
    name: str, factory: Callable[[], Benchmark], overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name``; re-registration is an error."""
    _REGISTRY.register(name, factory, overwrite=overwrite)


def get_benchmark(name: str) -> Benchmark:
    """Instantiate the benchmark named ``name``.

    Accepts registered names ("atax"), ``kernel:``/``app:`` aliases,
    ``surrogate:<path.npz>`` distilled-envelope files, and zoo names
    (``distilled:<stem>``).  Unknown names raise :class:`KeyError` with a
    closest-match suggestion; unreadable envelope files raise a typed
    :class:`~repro.envelope.EnvelopeError`.
    """
    from repro.workloads.surrogate import FILE_PREFIX, load_distilled

    if name.startswith(FILE_PREFIX):
        return load_distilled(name[len(FILE_PREFIX) :])
    for prefix in _ALIAS_PREFIXES:
        if name.startswith(prefix):
            name = name[len(prefix) :]
            break
    _ensure_loaded()
    return _REGISTRY.get(name)()


def all_benchmarks() -> tuple[str, ...]:
    """Names of all registered benchmarks (kernels, apps, then the zoo).

    The order is canonical — independent of which registering module
    happened to be imported first.
    """
    _ensure_loaded()
    from repro.kernels import SPAPT_KERNEL_NAMES

    canonical = [n for n in SPAPT_KERNEL_NAMES if n in _REGISTRY]
    canonical += [n for n in ("kripke", "hypre") if n in _REGISTRY]
    canonical += [n for n in _REGISTRY if n not in canonical]
    return tuple(canonical)


_ZOO_SCANNED = False


def _ensure_loaded() -> None:
    # Import for the side effect of registration; deferred to avoid cycles.
    import repro.kernels  # noqa: F401
    import repro.apps  # noqa: F401

    global _ZOO_SCANNED
    if _ZOO_SCANNED:
        return
    # repro: allow[SPAWN001] one-shot scan guard; the zoo directory is immutable per checkout and the scan is deterministic, so every worker process converges to the same registry
    _ZOO_SCANNED = True
    from repro.workloads.surrogate import load_distilled, zoo_entries

    for zoo_name, path in zoo_entries().items():
        if zoo_name in _REGISTRY:
            continue

        def _load(p=path) -> Benchmark:
            return load_distilled(p)

        _REGISTRY.register(zoo_name, _load)
