"""Global benchmark registry.

The experiment drivers look benchmarks up by name ("atax", "kripke", ...);
the kernel and application modules register factories at import time.
Factories (rather than instances) keep registry imports cheap and let each
experiment own a fresh benchmark object.
"""

from __future__ import annotations

from typing import Callable

from repro.registry import NameRegistry
from repro.workloads.base import Benchmark

__all__ = ["register_benchmark", "get_benchmark", "all_benchmarks"]

_REGISTRY = NameRegistry("benchmark")


def register_benchmark(
    name: str, factory: Callable[[], Benchmark], overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name``; re-registration is an error."""
    _REGISTRY.register(name, factory, overwrite=overwrite)


def get_benchmark(name: str) -> Benchmark:
    """Instantiate the benchmark registered under ``name``.

    Unknown names raise :class:`KeyError` with a closest-match
    suggestion.
    """
    _ensure_loaded()
    return _REGISTRY.get(name)()


def all_benchmarks() -> tuple[str, ...]:
    """Names of all registered benchmarks (kernels first, then apps).

    The order is canonical — independent of which registering module
    happened to be imported first.
    """
    _ensure_loaded()
    from repro.kernels import SPAPT_KERNEL_NAMES

    canonical = [n for n in SPAPT_KERNEL_NAMES if n in _REGISTRY]
    canonical += [n for n in ("kripke", "hypre") if n in _REGISTRY]
    canonical += [n for n in _REGISTRY if n not in canonical]
    return tuple(canonical)


def _ensure_loaded() -> None:
    # Import for the side effect of registration; deferred to avoid cycles.
    import repro.kernels  # noqa: F401
    import repro.apps  # noqa: F401
