"""Common benchmark interface and registry.

A *workload* (the paper says "search problem") couples a parameter space
with a way to measure the execution time of any configuration.  Both the 12
SPAPT kernels (:mod:`repro.kernels`) and the two parallel applications
(:mod:`repro.apps`) implement :class:`Benchmark`; the active-learning
machinery only ever sees this interface, exactly as the method only sees
``Evaluate`` in Algorithm 1.
"""

from repro.workloads.base import Benchmark
from repro.workloads.registry import all_benchmarks, get_benchmark, register_benchmark
from repro.workloads.surrogate import (
    SurrogateBenchmark,
    distill_workload,
    load_distilled,
    save_distilled,
    zoo_entries,
)

__all__ = [
    "Benchmark",
    "all_benchmarks",
    "get_benchmark",
    "register_benchmark",
    "SurrogateBenchmark",
    "distill_workload",
    "load_distilled",
    "save_distilled",
    "zoo_entries",
]
