"""Algorithm 1 — the active-learning loop.

Cold start: draw ``n_init`` random pool configurations, measure them, fit
the forest.  Iterate: the sampling strategy picks ``n_batch`` configurations
from the remaining pool using the fitted forest; they are measured, appended
to the training set, and the forest is refit (or partially refreshed) —
until the training set reaches ``n_max``.  After the cold start and after
every ``eval_every``-th iteration the model is evaluated on the held-out
test set (RMSE@α per Equation 2) and the trace recorded.

The loop body is exposed as two incremental entry points —
:meth:`ActiveLearner.suggest` (pick the next batch) and
:meth:`ActiveLearner.observe` (feed back the measured labels) — so
external drivers that *own the measurement step* (the tuning service's
client-evaluated sessions, interactive notebooks) reuse the exact
select/record logic instead of reimplementing it.  :meth:`ActiveLearner.run`
is a thin loop over the two and stays bit-identical to the historical
monolithic implementation (enforced by ``tests/test_trace_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.active.history import IterationRecord, LearningHistory
from repro.metrics import cumulative_cost, top_alpha_rmse
from repro.rng import as_generator
from repro.sampling.base import SamplingStrategy, consume_selection_stats
from repro.space import DataPool
from repro.surrogate import Surrogate, make_surrogate, supports_partial_update
from repro.surrogate.registry import surrogate_entry
from repro.telemetry import counters, span

__all__ = ["LearnerConfig", "ActiveLearner"]


@dataclass(frozen=True)
class LearnerConfig:
    """Algorithm 1 parameters (paper defaults from Section III-D)."""

    n_init: int = 10
    n_batch: int = 1
    n_max: int = 500
    #: α values to evaluate RMSE at after each evaluation point.
    alphas: tuple[float, ...] = (0.01, 0.05, 0.10)
    #: Evaluate the model every this many iterations (1 = paper protocol).
    eval_every: int = 1
    #: "scratch" refits all trees per iteration (paper default);
    #: "partial" refreshes only ``refresh_fraction`` of them.
    retrain: str = "scratch"
    refresh_fraction: float = 0.3
    #: Surrogate family, resolved through the :mod:`repro.surrogate`
    #: registry: "forest" (the paper's choice), "gp" (the Section II-B
    #: baseline), "select"/"stack" (cross-validated meta-surrogates),
    #: "transfer", or any downstream registration.
    surrogate: str = "forest"
    #: Free-form per-surrogate settings, normalised to a sorted tuple of
    #: ``(key, value)`` pairs (a dict is accepted and converted) — e.g.
    #: ``{"source": "model.npz"}`` for "transfer" or
    #: ``{"candidates": ("forest", "gp"), "k_folds": 5}`` for "select".
    surrogate_options: tuple = ()
    #: Forest hyper-parameters.
    n_estimators: int = 30
    max_features: "int | float | str | None" = "third"
    min_samples_leaf: int = 1
    uncertainty: str = "across_trees"

    def __post_init__(self) -> None:
        if self.n_init < 1:
            raise ValueError("n_init must be >= 1")
        if self.n_batch < 1:
            raise ValueError("n_batch must be >= 1")
        if self.n_max < self.n_init:
            raise ValueError("n_max must be >= n_init")
        if self.eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if self.retrain not in ("scratch", "partial"):
            raise ValueError(f"retrain must be 'scratch' or 'partial', got {self.retrain!r}")
        options = self.surrogate_options
        if not isinstance(options, tuple):
            options = tuple(sorted(dict(options).items()))
            object.__setattr__(self, "surrogate_options", options)
        try:
            surrogate_entry(self.surrogate)
        except KeyError as exc:
            # Config validation raises ValueError (like every other field);
            # the registry's did-you-mean message is preserved.
            raise ValueError(exc.args[0]) from None
        if self.retrain == "partial" and not supports_partial_update(self.surrogate):
            raise ValueError(
                f"the {self.surrogate!r} surrogate only supports retrain='scratch'"
            )
        if not self.alphas:
            raise ValueError("at least one alpha is required")
        if any(not 0.0 < a <= 1.0 for a in self.alphas):
            raise ValueError("alphas must lie in (0, 1]")


@dataclass
class ActiveLearner:
    """Runs Algorithm 1 against a pool, an oracle, and a test set.

    Parameters
    ----------
    pool:
        The unlabeled configuration pool (will be mutated by the run).
    evaluate:
        The labeling oracle: encoded matrix → measured times.  Typically
        ``lambda X: benchmark.measure_encoded(X, rng)``.
    X_test, y_test:
        Held-out test set (labels measured in advance, per Section III-C).
    strategy:
        The sampling strategy under study.
    config:
        Loop and forest parameters.
    seed:
        Root seed for the run's randomness (cold start, strategy
        tie-breaking, forest bootstrap).
    cold_start_indices:
        Optional explicit pool indices for the cold start instead of the
        random draw of Algorithm 1 line 1 — used by the transfer-learning
        extension (:mod:`repro.transfer`) to seed the run from a source
        model's beliefs.  Length must equal ``config.n_init``.
    """

    pool: DataPool
    evaluate: "callable"
    X_test: np.ndarray
    y_test: np.ndarray
    strategy: SamplingStrategy
    config: LearnerConfig = field(default_factory=LearnerConfig)
    seed: "int | np.random.Generator | None" = None
    cold_start_indices: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        self.rng = as_generator(self.seed)
        self.X_test = np.asarray(self.X_test, dtype=np.float64)
        self.y_test = np.asarray(self.y_test, dtype=np.float64)
        if len(self.X_test) != len(self.y_test):
            raise ValueError("test set features and labels disagree in length")
        if self.config.n_max > self.pool.n_total:
            raise ValueError(
                f"n_max={self.config.n_max} exceeds pool size {self.pool.n_total}"
            )
        m = int(np.floor(len(self.y_test) * min(self.config.alphas)))
        if m < 1:
            raise ValueError(
                f"test set of {len(self.y_test)} is too small for "
                f"alpha={min(self.config.alphas)}"
            )
        self.model: Surrogate | None = None
        self.X_train = np.empty((0, self.pool.X.shape[1]))
        self.y_train = np.empty(0)
        self.history = LearningHistory()
        self._pending_selected: list[int] = []
        self._pending_mu: list[float] = []
        self._pending_sigma: list[float] = []
        #: Batch issued by :meth:`suggest` and not yet fed to
        #: :meth:`observe`: ``(phase, indices, X, mu, sigma)`` or ``None``.
        self._awaiting: "tuple | None" = None
        self._iteration = 0

    # -- internals ---------------------------------------------------------
    def _make_model(self) -> Surrogate:
        cfg = self.config
        # The shared self.rng stream: surrogate construction and fitting
        # draw from the same generator as the strategy, so runs stay
        # bit-identical regardless of execution layout.
        return make_surrogate(
            cfg.surrogate,
            config=cfg,
            rng=self.rng,
            options=dict(cfg.surrogate_options),
        )

    def _refit(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        with span("learner.refit", n_train=len(self.y_train), mode=self.config.retrain):
            if self.model is None or self.config.retrain == "scratch":
                self.model = self._make_model()
                self.model.fit(self.X_train, self.y_train)
            else:
                self.model.update(X_new, y_new, self.config.refresh_fraction)
        counters.inc("learner.refits")

    def _evaluate(self, X: np.ndarray) -> np.ndarray:
        """Query the labeling oracle under the ``learner.evaluate`` span.

        The oracle is called exactly once per batch with the whole encoded
        matrix — the :meth:`~repro.workloads.base.Benchmark.evaluate_batch`
        contract — never once per configuration, so closed-form benchmarks
        amortise their vectorised evaluation and noise draw across the
        batch.  ``learner.batch_rows`` gauges the batch sizes flowing
        through (``n_init`` for the cold start, ``n_batch`` after).
        """
        with span("learner.evaluate", n=len(X)):
            y = np.asarray(self.evaluate(X), dtype=np.float64)
        counters.inc("learner.evaluations", len(X))
        counters.gauge("learner.batch_rows", len(X))
        return y

    def _record(self) -> None:
        assert self.model is not None
        with span("learner.record", n_train=len(self.y_train)):
            self._record_inner()

    def _record_inner(self) -> None:
        pred = self.model.predict(self.X_test)
        rmse = {
            f"{a:g}": top_alpha_rmse(self.y_test, pred, a)
            for a in self.config.alphas
        }
        self.history.append(
            IterationRecord(
                n_train=len(self.y_train),
                cumulative_cost=cumulative_cost(self.y_train),
                rmse=rmse,
                selected=tuple(self._pending_selected),
                selected_mu=tuple(self._pending_mu),
                selected_sigma=tuple(self._pending_sigma),
            )
        )
        self._pending_selected.clear()
        self._pending_mu.clear()
        self._pending_sigma.clear()

    # -- incremental entry points ------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the training set has reached ``config.n_max``."""
        return self.model is not None and len(self.y_train) >= self.config.n_max

    @property
    def n_labeled(self) -> int:
        """Number of labeled configurations in the training set so far."""
        return len(self.y_train)

    @property
    def pending(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """The outstanding suggested batch as ``(indices, X)``, or ``None``.

        Set by :meth:`suggest` and cleared by :meth:`observe`; the arrays
        are the pool indices and their encoded rows.
        """
        if self._awaiting is None:
            return None
        return self._awaiting[1], self._awaiting[2]

    def suggest(self, n: "int | None" = None) -> np.ndarray:
        """Pick the next batch to measure; returns its global pool indices.

        The first call performs the cold start (Algorithm 1 line 1): a
        random draw of ``config.n_init`` configurations (or the caller's
        ``cold_start_indices``).  Subsequent calls run the strategy's
        selection (line 6) with the live surrogate.  ``n`` overrides
        ``config.n_batch`` for this one batch (clamped to the remaining
        budget; ignored for the cold start, whose size is ``n_init``).

        Calling :meth:`suggest` again before :meth:`observe` returns the
        *same* outstanding batch without consuming any randomness — the
        idempotence the tuning service's crash-safe suggest/report
        protocol relies on.  Raises :class:`RuntimeError` once the budget
        is exhausted (:attr:`done`).
        """
        if self._awaiting is not None:
            return self._awaiting[1]
        if self.done:
            raise RuntimeError(
                f"budget exhausted: {len(self.y_train)} of "
                f"{self.config.n_max} labels collected"
            )
        cfg = self.config
        if self.model is None:
            # Cold start (lines 1-4): random initial sample, unless the
            # caller provided transfer-seeded indices.
            if self.cold_start_indices is not None:
                init_idx = np.asarray(self.cold_start_indices, dtype=np.intp)
                if len(init_idx) != cfg.n_init:
                    raise ValueError(
                        f"cold_start_indices has {len(init_idx)} entries, "
                        f"config.n_init is {cfg.n_init}"
                    )
            else:
                init_idx = self.rng.choice(
                    self.pool.available_indices(), size=cfg.n_init, replace=False
                )
            X0 = self.pool.take(init_idx)
            self._awaiting = ("cold", init_idx, X0, None, None)
            return init_idx
        if n is not None and n < 1:
            raise ValueError(f"suggest(n) requires n >= 1, got {n}")
        n_batch = min(n if n is not None else cfg.n_batch,
                      cfg.n_max - len(self.y_train))
        model_arg = self.model if self.strategy.requires_model else None
        with span("learner.select", n_batch=n_batch, iteration=self._iteration):
            batch_idx = np.asarray(
                self.strategy.select(model_arg, self.pool, n_batch, self.rng)
            )
            Xb = self.pool.take(batch_idx)
            # Selection-time model view of the batch (what Fig. 9 plots).
            # Score-based strategies stash the (mu, sigma) they just
            # ranked; reuse those instead of re-predicting the batch
            # (bit-identical — they are the same floats).  Model-free or
            # filter strategies stash nothing: fresh prediction.
            stats = consume_selection_stats(self.strategy, batch_idx)
            if stats is None:
                mu_b, sigma_b = self.model.predict_with_uncertainty(Xb)
            else:
                mu_b, sigma_b = stats
        counters.inc("learner.selections", n_batch)
        self._awaiting = ("step", batch_idx, Xb, mu_b, sigma_b)
        return batch_idx

    def observe(
        self, y: np.ndarray, indices: "np.ndarray | None" = None
    ) -> None:
        """Feed back measured labels for the batch :meth:`suggest` issued.

        ``y`` holds one label per suggested configuration, in suggestion
        order.  ``indices`` optionally re-states the batch's pool indices
        as a consistency check (a mismatch raises — the guard the service
        uses against out-of-order reports).  Updates the training set,
        refits the surrogate, and appends an evaluation record per the
        ``eval_every`` cadence.
        """
        if self._awaiting is None:
            raise RuntimeError("observe() without a pending suggest()")
        phase, batch_idx, Xb, mu_b, sigma_b = self._awaiting
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (len(Xb),):
            raise RuntimeError(
                f"oracle returned {y.shape} labels for {len(Xb)} configs"
            )
        if indices is not None:
            stated = np.asarray(indices, dtype=np.intp)
            if stated.shape != batch_idx.shape or not (
                stated == np.asarray(batch_idx, dtype=np.intp)
            ).all():
                raise ValueError(
                    f"observe() indices {stated.tolist()} do not match the "
                    f"pending suggestion {np.asarray(batch_idx).tolist()}"
                )
        self._awaiting = None
        if phase == "cold":
            self.X_train = np.asarray(Xb, dtype=np.float64).copy()
            self.y_train = y
            self._refit(Xb, y)
            self._pending_selected.extend(int(i) for i in batch_idx)
            self._record()
            return
        self.X_train = np.vstack([self.X_train, Xb])
        self.y_train = np.concatenate([self.y_train, y])
        self._refit(Xb, y)
        self._pending_selected.extend(int(i) for i in batch_idx)
        self._pending_mu.extend(float(m) for m in mu_b)
        self._pending_sigma.extend(float(s) for s in sigma_b)
        self._iteration += 1
        is_last = len(self.y_train) >= self.config.n_max
        if self._iteration % self.config.eval_every == 0 or is_last:
            self._record()

    # -- the loop --------------------------------------------------------------
    def run(self) -> LearningHistory:
        """Execute Algorithm 1 to completion and return the trace.

        A loop over :meth:`suggest` / :meth:`observe` with the labeling
        oracle in between — bit-identical to the historical monolithic
        implementation.
        """
        while not self.done:
            self.suggest()
            _, Xb = self.pending
            self.observe(self._evaluate(Xb))
        return self.history
