"""The active-learning loop (Algorithm 1) and its run history."""

from repro.active.history import IterationRecord, LearningHistory
from repro.active.learner import ActiveLearner, LearnerConfig

__all__ = ["ActiveLearner", "LearnerConfig", "LearningHistory", "IterationRecord"]
