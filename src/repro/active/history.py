"""Per-iteration records of an active-learning run.

The history is what every figure of the paper is drawn from: RMSE@α and
cumulative cost as functions of the number of labeled samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "LearningHistory"]


@dataclass(frozen=True)
class IterationRecord:
    """State after one Algorithm 1 evaluation point (or the cold start).

    ``selected`` covers *every* strategy selection since the previous
    record (evaluation may be sparser than selection when
    ``eval_every > 1``); ``selected_mu``/``selected_sigma`` are the model's
    prediction and uncertainty for those configurations *at selection
    time* — the quantities Fig. 9 plots.
    """

    n_train: int
    cumulative_cost: float
    #: RMSE@α on the held-out test set, one entry per evaluated α.
    rmse: dict[str, float]
    #: Global pool indices selected since the last record (cold-start
    #: indices for the first record).
    selected: tuple[int, ...] = ()
    #: Model prediction for each selected configuration at selection time.
    selected_mu: tuple[float, ...] = ()
    #: Model uncertainty for each selected configuration at selection time.
    selected_sigma: tuple[float, ...] = ()


@dataclass
class LearningHistory:
    """Append-only trace of a run, with array accessors for the metrics."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        if self.records and record.n_train <= self.records[-1].n_train:
            raise ValueError(
                "training-set size must strictly increase between records"
            )
        if self.records and record.cumulative_cost < self.records[-1].cumulative_cost:
            raise ValueError("cumulative cost cannot decrease")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def n_train(self) -> np.ndarray:
        return np.asarray([r.n_train for r in self.records], dtype=np.intp)

    @property
    def cumulative_cost(self) -> np.ndarray:
        return np.asarray(
            [r.cumulative_cost for r in self.records], dtype=np.float64
        )

    def rmse_series(self, alpha_key: str) -> np.ndarray:
        """RMSE trace for one α key (e.g. ``"0.01"``)."""
        try:
            return np.asarray(
                [r.rmse[alpha_key] for r in self.records], dtype=np.float64
            )
        except KeyError:
            known = sorted(self.records[0].rmse) if self.records else []
            raise KeyError(
                f"no RMSE series for alpha {alpha_key!r}; recorded: {known}"
            ) from None

    def alpha_keys(self) -> tuple[str, ...]:
        return tuple(sorted(self.records[0].rmse)) if self.records else ()

    def all_selected(self, include_cold_start: bool = False) -> tuple[int, ...]:
        """Every pool index the run labeled, in selection order."""
        records = self.records if include_cold_start else self.records[1:]
        return tuple(i for r in records for i in r.selected)

    def selection_statistics(self) -> tuple[np.ndarray, np.ndarray]:
        """Selection-time (μ, σ) of every strategy-selected configuration."""
        mu = [m for r in self.records[1:] for m in r.selected_mu]
        sigma = [s for r in self.records[1:] for s in r.selected_sigma]
        return np.asarray(mu, dtype=np.float64), np.asarray(sigma, dtype=np.float64)

    def to_dict(self) -> dict:
        """Lossless JSON-serialisable form.

        One schema serves both the engine's result store and ``dump_json``:
        the summary arrays (``n_train``/``cumulative_cost``/``rmse``) keep
        the historical shape external consumers read, while ``records``
        carries every :class:`IterationRecord` field so
        :meth:`from_dict` round-trips the trace exactly (JSON floats
        round-trip IEEE doubles losslessly).
        """
        return {
            "n_train": self.n_train.tolist(),
            "cumulative_cost": self.cumulative_cost.tolist(),
            "rmse": {k: self.rmse_series(k).tolist() for k in self.alpha_keys()},
            "records": [
                {
                    "n_train": int(r.n_train),
                    "cumulative_cost": float(r.cumulative_cost),
                    "rmse": {k: float(v) for k, v in r.rmse.items()},
                    "selected": [int(i) for i in r.selected],
                    "selected_mu": [float(m) for m in r.selected_mu],
                    "selected_sigma": [float(s) for s in r.selected_sigma],
                }
                for r in self.records
            ],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LearningHistory":
        """Inverse of :meth:`to_dict`.

        Accepts the full ``records`` schema as well as the legacy
        summary-only form (rebuilt with empty selection fields), so older
        ``dump_json`` artifacts remain loadable.
        """
        history = cls()
        if "records" in d:
            for rec in d["records"]:
                history.append(
                    IterationRecord(
                        n_train=int(rec["n_train"]),
                        cumulative_cost=float(rec["cumulative_cost"]),
                        rmse={k: float(v) for k, v in rec["rmse"].items()},
                        selected=tuple(int(i) for i in rec["selected"]),
                        selected_mu=tuple(float(m) for m in rec["selected_mu"]),
                        selected_sigma=tuple(
                            float(s) for s in rec["selected_sigma"]
                        ),
                    )
                )
            return history
        rmse = d.get("rmse", {})
        for i, (n, cost) in enumerate(zip(d["n_train"], d["cumulative_cost"])):
            history.append(
                IterationRecord(
                    n_train=int(n),
                    cumulative_cost=float(cost),
                    rmse={k: float(series[i]) for k, series in rmse.items()},
                )
            )
        return history
