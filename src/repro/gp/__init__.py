"""Gaussian-process surrogate — the baseline model the paper argues against.

Section II-B: *"A common choice of model is Gaussian Process ... It usually
works well for numerical features but not categorical features and fits
only noise-free or Gaussian noise observations."*  The paper adopts random
forests instead.  To make that argument testable rather than rhetorical,
this subpackage implements a standard GP regressor (RBF kernel, Gaussian
noise, marginal-likelihood hyper-parameter fitting) exposing the same
``predict`` / ``predict_with_uncertainty`` interface as the forest, so the
active-learning loop can run on either; ``bench_ablation_surrogate``
compares them on the mixed numerical/categorical SPAPT spaces.
"""

from repro.gp.gp import GaussianProcessRegressor
from repro.gp.kernels import rbf_kernel

__all__ = ["GaussianProcessRegressor", "rbf_kernel"]
