"""Gaussian-process regression with marginal-likelihood hyper-fitting.

Standard exact GP: RBF kernel plus Gaussian observation noise, inputs
z-scored per column and targets standardised internally.  Hyper-parameters
``(log ℓ, log σ_f, log σ_n)`` maximise the log marginal likelihood via
L-BFGS-B with analytic gradients, optionally from several restarts.

The class intentionally mirrors :class:`repro.forest.RandomForestRegressor`'s
inference interface (``fit`` / ``predict`` / ``predict_with_uncertainty``)
so either model can drive Algorithm 1.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from repro.gp.kernels import squared_distances
from repro.rng import as_generator

__all__ = ["GaussianProcessRegressor"]

_JITTER = 1e-10


class GaussianProcessRegressor:
    """Exact GP regression (RBF + Gaussian noise).

    Parameters
    ----------
    n_restarts:
        Hyper-parameter optimisation restarts (first start is a fixed
        heuristic; the rest are random perturbations).
    optimize_hypers:
        Disable to keep the heuristic initial hyper-parameters — used in
        the active-learning loop's early iterations where n is tiny.
    log_targets:
        Model ``log y`` instead of ``y``.  Execution times are positive
        and heavy-tailed; a plain GP's posterior mean can go negative on
        them (the failure mode Section II-B alludes to).  With
        ``log_targets`` the posterior is log-normal and predictions are
        positive by construction (delta-method back-transform).
    seed:
        Stream for restart perturbations.
    """

    def __init__(
        self,
        n_restarts: int = 2,
        optimize_hypers: bool = True,
        log_targets: bool = False,
        seed=None,
    ) -> None:
        if n_restarts < 0:
            raise ValueError("n_restarts must be >= 0")
        self.n_restarts = n_restarts
        self.optimize_hypers = optimize_hypers
        self.log_targets = log_targets
        self.rng = as_generator(seed)
        self._fitted = False

    # -- internals ---------------------------------------------------------
    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._x_mean) / self._x_scale

    @staticmethod
    def _neg_log_marginal(
        theta: np.ndarray, sq: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Negative log marginal likelihood and its gradient in θ=log(ℓ,σf,σn)."""
        log_ell, log_sf, log_sn = theta
        ell2 = np.exp(2.0 * log_ell)
        sf2 = np.exp(2.0 * log_sf)
        sn2 = np.exp(2.0 * log_sn)
        n = len(y)
        E = np.exp(-0.5 * sq / ell2)
        K = sf2 * E + (sn2 + _JITTER) * np.eye(n)
        try:
            L = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25, np.zeros(3)
        alpha = linalg.cho_solve((L, True), y)
        nll = (
            0.5 * float(y @ alpha)
            + float(np.log(np.diag(L)).sum())
            + 0.5 * n * np.log(2.0 * np.pi)
        )
        # Gradient: dnll/dθ_i = -0.5 tr((αα^T - K^{-1}) dK/dθ_i)
        Kinv = linalg.cho_solve((L, True), np.eye(n))
        W = np.outer(alpha, alpha) - Kinv
        dK_dlogell = sf2 * E * (sq / ell2)  # dK/dlogℓ
        dK_dlogsf = 2.0 * sf2 * E
        dK_dlogsn = 2.0 * sn2 * np.eye(n)
        grad = -0.5 * np.array(
            [
                float((W * dK_dlogell).sum()),
                float((W * dK_dlogsf).sum()),
                float((W * dK_dlogsn).sum()),
            ]
        )
        return nll, grad

    # -- fitting --------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit hyper-parameters and precompute the predictive solve."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) < 2:
            raise ValueError("GP needs at least two training samples")

        self._x_mean = X.mean(axis=0)
        self._x_scale = np.where(X.std(axis=0) > 1e-12, X.std(axis=0), 1.0)
        Z = self._standardize(X)
        y_work = y
        if self.log_targets:
            if np.any(y <= 0):
                raise ValueError("log_targets requires strictly positive targets")
            y_work = np.log(y)
        self._y_mean = float(y_work.mean())
        self._y_scale = float(y_work.std()) if y_work.std() > 1e-12 else 1.0
        t = (y_work - self._y_mean) / self._y_scale

        sq = squared_distances(Z, Z)
        # Heuristic start: ℓ = median pairwise distance, σf = 1, σn = 0.1.
        med = np.sqrt(np.median(sq[sq > 0])) if (sq > 0).any() else 1.0
        theta0 = np.log(np.array([max(med, 1e-3), 1.0, 0.1]))

        best_theta, best_nll = theta0, self._neg_log_marginal(theta0, sq, t)[0]
        if self.optimize_hypers:
            starts = [theta0] + [
                theta0 + self.rng.normal(0.0, 0.7, size=3)
                for _ in range(self.n_restarts)
            ]
            bounds = [(-5.0, 6.0), (-4.0, 4.0), (-7.0, 2.0)]
            for start in starts:
                res = optimize.minimize(
                    self._neg_log_marginal,
                    start,
                    args=(sq, t),
                    jac=True,
                    method="L-BFGS-B",
                    bounds=bounds,
                    options={"maxiter": 60},
                )
                if np.isfinite(res.fun) and res.fun < best_nll:
                    best_nll, best_theta = float(res.fun), res.x

        log_ell, log_sf, log_sn = best_theta
        self.lengthscale_ = float(np.exp(log_ell))
        self.signal_variance_ = float(np.exp(2.0 * log_sf))
        self.noise_variance_ = float(np.exp(2.0 * log_sn))

        n = len(t)
        K = self.signal_variance_ * np.exp(
            -0.5 * sq / self.lengthscale_**2
        ) + (self.noise_variance_ + _JITTER) * np.eye(n)
        self._L = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._L, True), t)
        self._Z = Z
        self._y = y.copy()
        self._fitted = True
        return self

    @property
    def training_targets(self) -> np.ndarray:
        """Labels the GP was fit on (used by incumbent-based strategies)."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted; call fit() first")
        return self._y

    # -- inference ---------------------------------------------------------------
    def _cross_cov(self, Xq: np.ndarray) -> np.ndarray:
        sq = squared_distances(self._standardize(Xq), self._Z)
        return self.signal_variance_ * np.exp(-0.5 * sq / self.lengthscale_**2)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Posterior mean, in the original target units."""
        mu, _ = self.predict_with_uncertainty(X)
        return mu

    def predict_with_uncertainty(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and std (original units), like the forest's API."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted; call fit() first")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Ks = self._cross_cov(X)
        mu = Ks @ self._alpha
        V = linalg.solve_triangular(self._L, Ks.T, lower=True)
        var = self.signal_variance_ - np.sum(V * V, axis=0)
        var = np.maximum(var, 0.0)
        mu_y = mu * self._y_scale + self._y_mean
        sd_y = np.sqrt(var) * self._y_scale
        if self.log_targets:
            # Delta-method back-transform of the log-normal posterior.
            mean = np.exp(mu_y + 0.5 * sd_y**2)
            std = mean * np.sqrt(np.maximum(np.expm1(sd_y**2), 0.0))
            return mean, std
        return mu_y, sd_y

    def log_marginal_likelihood(self) -> float:
        """Fitted model evidence (standardised-target units)."""
        if not self._fitted:
            raise RuntimeError("GP is not fitted; call fit() first")
        n = len(self._alpha)
        t = self._L @ (self._L.T @ self._alpha)  # reconstruct standardized y
        return -(
            0.5 * float(t @ self._alpha)
            + float(np.log(np.diag(self._L)).sum())
            + 0.5 * n * np.log(2.0 * np.pi)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._fitted:
            return "GaussianProcessRegressor(unfitted)"
        return (
            f"GaussianProcessRegressor(l={self.lengthscale_:.3g}, "
            f"sf2={self.signal_variance_:.3g}, sn2={self.noise_variance_:.3g})"
        )
