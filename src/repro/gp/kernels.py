"""Covariance functions for the GP surrogate."""

from __future__ import annotations

import numpy as np

__all__ = ["rbf_kernel", "squared_distances"]


def squared_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(len(A), len(B))``.

    Computed via the expansion ``|a-b|² = |a|² + |b|² - 2a·b`` (one GEMM
    instead of an O(n²d) Python loop), clipped at zero against rounding.
    """
    A = np.atleast_2d(np.asarray(A, dtype=np.float64))
    B = np.atleast_2d(np.asarray(B, dtype=np.float64))
    if A.shape[1] != B.shape[1]:
        raise ValueError(f"dimension mismatch: {A.shape[1]} vs {B.shape[1]}")
    aa = np.sum(A * A, axis=1)[:, None]
    bb = np.sum(B * B, axis=1)[None, :]
    sq = aa + bb - 2.0 * (A @ B.T)
    return np.maximum(sq, 0.0)


def rbf_kernel(
    A: np.ndarray,
    B: np.ndarray,
    lengthscale: float,
    signal_variance: float,
) -> np.ndarray:
    """Isotropic squared-exponential covariance.

    .. math:: k(a, b) = \\sigma_f^2 \\exp\\left(-\\frac{\\|a-b\\|^2}{2\\ell^2}\\right)
    """
    if lengthscale <= 0:
        raise ValueError(f"lengthscale must be positive, got {lengthscale}")
    if signal_variance <= 0:
        raise ValueError(f"signal_variance must be positive, got {signal_variance}")
    sq = squared_distances(A, B)
    return signal_variance * np.exp(-0.5 * sq / (lengthscale**2))
