"""System-noise model for simulated time measurements.

The paper's kernels run in well under a second and are visibly perturbed by
system noise; the authors mitigate this by stripping services and averaging
35 executions per configuration (Section III-B, following Balaprakash et
al.).  The applications are averaged over "several" runs against network
jitter.

We model one observed execution as

.. math:: t_{obs} = t_{true} \\cdot \\varepsilon \\cdot o

with :math:`\\varepsilon \\sim \\mathrm{LogNormal}(0, \\sigma)` multiplicative
jitter and, with small probability, an outlier factor :math:`o > 1`
(a daemon wake-up or page-cache miss storm — real timing outliers only ever
slow a run down).  :meth:`MeasurementProtocol.observe` then averages
``n_repeats`` such executions, exactly like the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MeasurementProtocol", "KERNEL_PROTOCOL", "APP_PROTOCOL"]


@dataclass(frozen=True)
class MeasurementProtocol:
    """How a configuration's execution time is observed.

    Parameters
    ----------
    n_repeats:
        Executions averaged per measurement (35 for kernels in the paper).
    noise_sigma:
        Log-scale std of the multiplicative jitter per execution.
    outlier_prob:
        Per-execution probability of an interference outlier.
    outlier_scale:
        Mean slowdown factor of an outlier execution.
    """

    n_repeats: int = 35
    noise_sigma: float = 0.03
    outlier_prob: float = 0.01
    outlier_scale: float = 4.0

    def __post_init__(self) -> None:
        if self.n_repeats < 1:
            raise ValueError("n_repeats must be >= 1")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if not 0.0 <= self.outlier_prob < 1.0:
            raise ValueError("outlier_prob must be in [0, 1)")
        if self.outlier_scale < 1.0:
            raise ValueError("outliers slow runs down: outlier_scale must be >= 1")

    @property
    def is_exact(self) -> bool:
        """Whether observations are bit-identical to the true times.

        A protocol with no jitter and no outliers observes the surface
        exactly; :meth:`observe` then consumes no randomness and performs
        no repeat-averaging (whose sum/divide round-off would otherwise
        perturb the last bits even with every draw equal to 1.0).
        Distilled workloads use this for fully deterministic regression
        surfaces.
        """
        return self.noise_sigma == 0.0 and self.outlier_prob == 0.0

    def observe(self, true_times: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Observed (repeat-averaged) times for a vector of true times."""
        t = np.atleast_1d(np.asarray(true_times, dtype=np.float64))
        if np.any(t <= 0):
            raise ValueError("true execution times must be positive")
        # repro: allow[FLOW002] the exact protocol consumes no randomness by design (see is_exact); callers derive per-trial streams either way
        if self.is_exact:
            return t.copy()
        n = len(t)
        shape = (n, self.n_repeats)
        eps = np.exp(rng.normal(0.0, self.noise_sigma, size=shape))
        if self.outlier_prob > 0:
            hit = rng.random(size=shape) < self.outlier_prob
            # Outlier magnitude itself is dispersed (exponential around scale-1).
            magnitude = 1.0 + rng.exponential(self.outlier_scale - 1.0, size=shape)
            eps = np.where(hit, eps * magnitude, eps)
        return (t[:, None] * eps).mean(axis=1)

    def observe_one(self, true_time: float, rng: np.random.Generator) -> float:
        return float(self.observe(np.asarray([true_time]), rng)[0])

    # -- serialization (distilled-workload envelopes) ----------------------
    def to_dict(self) -> dict:
        """JSON-safe form, round-tripped by :meth:`from_dict`."""
        return {
            "n_repeats": int(self.n_repeats),
            "noise_sigma": float(self.noise_sigma),
            "outlier_prob": float(self.outlier_prob),
            "outlier_scale": float(self.outlier_scale),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MeasurementProtocol":
        return cls(
            n_repeats=int(payload["n_repeats"]),
            noise_sigma=float(payload["noise_sigma"]),
            outlier_prob=float(payload["outlier_prob"]),
            outlier_scale=float(payload["outlier_scale"]),
        )


#: Kernel protocol: 35 repeats (paper, Section III-B), noticeable jitter.
KERNEL_PROTOCOL = MeasurementProtocol(
    n_repeats=35, noise_sigma=0.04, outlier_prob=0.01, outlier_scale=4.0
)

#: Application protocol: "several" repeats against network instability.
APP_PROTOCOL = MeasurementProtocol(
    n_repeats=5, noise_sigma=0.03, outlier_prob=0.005, outlier_scale=2.0
)
