"""Measurement-noise model and repeat-averaging protocol (Section III-B)."""

from repro.noise.measurement import MeasurementProtocol, KERNEL_PROTOCOL, APP_PROTOCOL

__all__ = ["MeasurementProtocol", "KERNEL_PROTOCOL", "APP_PROTOCOL"]
