"""Command-line interface: regenerate any table or figure of the paper.

Examples
--------
::

    repro tables                       # Tables I-IV
    repro fig2 --kernels atax mm       # RMSE vs #samples for two kernels
    repro fig7 --scale quick           # PWU/PBUS speedup table
    repro fig9                         # selection-distribution maps
    repro list                         # benchmarks and strategies
    repro all --scale smoke -o results # everything, persisted as JSON
    repro fig2 --jobs 8 --cache-dir ~/.cache/repro   # parallel + resumable
    repro fig6 --trace                 # + JSONL telemetry trace & summary
    repro trace summarize trace-*.jsonl
    repro lint --format json           # static reproducibility lint
    repro serve --port 8642 --data-dir /var/lib/repro   # tuning service

Scales: ``paper`` (the full Section III-D protocol), ``quick`` (default;
minutes on one core), ``smoke`` (seconds, CI-sized).

Every figure subcommand accepts ``--jobs N`` (fan trials over N worker
processes; traces are bit-identical to serial), ``--cache-dir DIR``
(persist completed trials in a crash-safe journal so re-runs and killed
runs skip finished work), ``--max-retries K`` / ``--job-timeout SECONDS``
(fault tolerance: failed, timed-out, or crash-lost trials are retried
with exponential backoff before being recorded as failed),
``--batch-size B`` (trials per worker future; 0 = automatic sizing,
1 = per-trial dispatch — results are bit-identical at any B), and
``--trace [FILE]`` (record telemetry spans — see :mod:`repro.telemetry` —
into a JSONL file and print a per-phase summary; results are
bit-identical with tracing on or off), and ``--surrogate NAME`` (swap the
model family under every strategy: ``forest`` — the paper's default —
``gp``, ``select``, ``stack``, or any :mod:`repro.surrogate`
registration).  The ``REPRO_FAULTS`` environment variable injects
deterministic chaos faults for testing (see :mod:`repro.engine.faults`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro._version import __version__
from repro.experiments.config import SCALES
from repro.experiments.report import dump_json
from repro.kernels import SPAPT_KERNEL_NAMES
from repro.sampling import STRATEGY_NAMES, available_strategies
from repro.workloads import all_benchmarks

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (one subcommand per figure)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_)
        p.add_argument(
            "--scale", choices=sorted(SCALES), default="quick", help="experiment scale"
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "-o", "--out-dir", default=None, help="directory for JSON results"
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for trial execution "
            "(default: $REPRO_JOBS or 1 = serial; results are bit-identical "
            "at any N)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="persistent trial store (default: $REPRO_CACHE_DIR); "
            "re-runs skip completed trials and killed runs resume",
        )
        p.add_argument(
            "--no-progress",
            action="store_true",
            help="suppress engine telemetry on stderr",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="force per-update progress lines even when stderr is not "
            "a TTY (non-TTY runs print only the final summary by default)",
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=None,
            metavar="K",
            help="re-attempts per failed/timed-out/crash-lost trial job "
            "before it is recorded as failed (default: $REPRO_MAX_RETRIES "
            "or 2)",
        )
        p.add_argument(
            "--job-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-attempt wall-clock limit for one trial job; a "
            "timed-out attempt is retried (default: $REPRO_JOB_TIMEOUT "
            "or unlimited)",
        )
        p.add_argument(
            "--batch-size",
            type=int,
            default=None,
            metavar="B",
            help="trial jobs dispatched per worker future (default: "
            "$REPRO_BATCH_SIZE or 0 = automatic; 1 = one future per "
            "trial; results are bit-identical at any B)",
        )
        p.add_argument(
            "--trace",
            nargs="?",
            const=True,
            default=None,
            metavar="FILE",
            help="record telemetry spans to a JSONL trace "
            "(default file: trace-<run_id>.jsonl) and print a per-phase "
            "summary to stderr; results are unchanged",
        )
        p.add_argument(
            "--surrogate",
            default="forest",
            metavar="NAME",
            help="surrogate family driving the loop (forest, gp, select, "
            "stack, ...; see `repro list`); default is the paper's forest",
        )
        return p

    sub.add_parser("list", help="list benchmarks and strategies")
    sub.add_parser("tables", help="print Tables I-IV")

    pd = sub.add_parser(
        "distill",
        help="freeze a workload into a distilled surrogate benchmark "
        "(.npz envelope runnable via surrogate:<file>)",
    )
    pd.add_argument(
        "workload", help="source benchmark name (e.g. atax or kernel:atax)"
    )
    pd.add_argument(
        "--surrogate",
        default="forest",
        metavar="NAME",
        help="surrogate family to distill into (default: forest)",
    )
    pd.add_argument(
        "--budget",
        type=int,
        default=512,
        metavar="N",
        help="configurations measured in the distillation campaign",
    )
    pd.add_argument("--seed", type=int, default=0)
    pd.add_argument(
        "--noise",
        choices=("protocol", "residual", "exact", "none"),
        default="protocol",
        help="noise model stamped on the frozen surface (default: protocol "
        "= the source's repeat-averaged sigma in one draw)",
    )
    pd.add_argument(
        "--n-estimators",
        type=int,
        default=30,
        metavar="K",
        help="trees in the distilled forest (forest-family surrogates)",
    )
    pd.add_argument(
        "--name",
        default=None,
        help="benchmark name stamped in the envelope "
        "(default: <source>-<surrogate>)",
    )
    pd.add_argument(
        "-o",
        "--out",
        required=True,
        metavar="FILE",
        help="output .npz envelope path",
    )

    pr = add(
        "run",
        "run one or more strategies on any workload "
        "(including surrogate:<file.npz> and distilled:<name>)",
    )
    pr.add_argument(
        "workload", help="benchmark name, surrogate:<file.npz>, or distilled:<name>"
    )
    pr.add_argument(
        "--strategy",
        nargs="+",
        default=["pwu"],
        metavar="NAME",
        help="strategy name(s); several names run as one comparison "
        "(default: pwu)",
    )
    pr.add_argument(
        "--budget", type=int, default=None, help="override the scale's n_max"
    )
    pr.add_argument(
        "--trials", type=int, default=None, help="override the scale's n_trials"
    )
    pr.add_argument("--alpha", type=float, default=0.05)

    ps = sub.add_parser(
        "serve",
        help="run the tuning service daemon (JSON-over-HTTP suggest/report)",
    )
    ps.add_argument(
        "--host",
        default=None,
        help="bind address (default: $REPRO_SERVICE_HOST or 127.0.0.1)",
    )
    ps.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port, 0 for ephemeral (default: $REPRO_SERVICE_PORT or 8642)",
    )
    ps.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="session journal directory (default: $REPRO_SERVICE_DATA_DIR "
        "or ./repro-service); open sessions found there are resumed",
    )

    from repro.analysis.cli import configure_parser as configure_lint

    configure_lint(
        sub.add_parser(
            "lint",
            help="static reproducibility lint (AST rules; see repro.analysis)",
        )
    )

    pt = sub.add_parser("trace", help="telemetry trace utilities")
    tsub = pt.add_subparsers(dest="trace_command", required=True)
    ts = tsub.add_parser(
        "summarize", help="print the per-phase summary of a JSONL trace file"
    )
    ts.add_argument("file", help="trace file written by --trace or repro.api")

    p2 = add("fig2", "RMSE vs #samples for the 12 kernels (also computes Fig. 3)")
    p2.add_argument("--kernels", nargs="+", default=list(SPAPT_KERNEL_NAMES))
    p2.add_argument("--alpha", type=float, default=0.01)

    p4 = add("fig4", "RMSE and CC vs #samples for kripke and hypre (also Fig. 5)")
    p4.add_argument("--alpha", type=float, default=0.01)

    p6 = add("fig6", "PBUS vs PWU at alpha in {0.01, 0.05, 0.10}")
    p6.add_argument("--benchmark", default="atax")

    p7 = add("fig7", "cost speedup of PWU over PBUS across benchmarks")
    p7.add_argument("--benchmarks", nargs="+", default=None)
    p7.add_argument("--alpha", type=float, default=0.01)

    p8 = add("fig8", "direct vs surrogate-annotated tuning")
    p8.add_argument("--benchmark", default="atax")

    p9 = add("fig9", "selected-sample distribution maps (PBUS vs PWU)")
    p9.add_argument("--benchmark", default="atax")

    add("all", "regenerate every table and figure")
    return parser


def _emit(result, out_dir: "str | None") -> None:
    print(result.render())
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        slug = result.name.lower().replace(" ", "").replace(".", "")
        path = os.path.join(out_dir, f"{slug}.json")
        dump_json(
            {"name": result.name, "description": result.description, "data": result.data},
            path,
        )
        print(f"[written {path}]")


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "lint":
        from repro.analysis.cli import run_from_args

        return run_from_args(args)

    if args.command == "distill":
        from repro import api

        bench = api.distill(
            args.workload,
            surrogate=args.surrogate,
            budget=args.budget,
            seed=args.seed,
            noise=args.noise,
            n_estimators=args.n_estimators,
            name=args.name,
            out=args.out,
        )
        prov = bench.provenance
        print(
            f"distilled {prov['source']} -> {args.out} "
            f"[{prov['surrogate']}, budget={prov['budget']}, "
            f"seed={prov['seed']}, noise={prov['noise_mode']}, "
            f"fit_rmse_log={prov['fit_rmse_log']:.4f}]"
        )
        print(f"run it:   repro run surrogate:{args.out}")
        return 0

    if args.command == "serve":
        import dataclasses as _dc

        from repro.service import serve, service_from_env

        base = service_from_env()
        return serve(
            _dc.replace(
                base,
                host=args.host if args.host is not None else base.host,
                port=args.port if args.port is not None else base.port,
                data_dir=(
                    args.data_dir if args.data_dir is not None else base.data_dir
                ),
            )
        )

    # Deferred imports keep `repro list --help` fast.
    from repro.experiments import figures

    if args.command == "list":
        from repro.surrogate import SURROGATE_NAMES, available_surrogates
        from repro.workloads import zoo_entries

        zoo = zoo_entries()
        extras = [s for s in available_strategies() if s not in STRATEGY_NAMES]
        sur_extras = [s for s in available_surrogates() if s not in SURROGATE_NAMES]
        print(
            "benchmarks:",
            ", ".join(n for n in all_benchmarks() if n not in zoo),
        )
        if zoo:
            print(
                "distilled: ",
                ", ".join(zoo),
                "(+ surrogate:<file.npz> for any envelope)",
            )
        print("strategies:", ", ".join(STRATEGY_NAMES),
              f"(+ variants: {', '.join(extras)})" if extras else "")
        print("surrogates:", ", ".join(SURROGATE_NAMES),
              f"(+ {', '.join(sur_extras)})" if sur_extras else "")
        print("scales:    ", ", ".join(sorted(SCALES)))
        return 0

    if args.command == "tables":
        print(figures.tables_1_to_4().render())
        return 0

    if args.command == "trace":
        from repro import telemetry

        try:
            print(telemetry.summarize(telemetry.read_trace(args.file)))
        except BrokenPipeError:  # e.g. `repro trace summarize f | head`
            sys.stderr.close()
        return 0

    from repro.engine import engine_from_env, use_engine

    import dataclasses

    base = engine_from_env()
    engine = dataclasses.replace(
        base,
        jobs=args.jobs if args.jobs is not None else base.jobs,
        cache_dir=args.cache_dir if args.cache_dir is not None else base.cache_dir,
        progress=base.progress and not args.no_progress,
        progress_force=base.progress_force or args.progress,
        max_retries=(
            args.max_retries if args.max_retries is not None else base.max_retries
        ),
        job_timeout=(
            args.job_timeout if args.job_timeout is not None else base.job_timeout
        ),
        batch_size=(
            args.batch_size if args.batch_size is not None else base.batch_size
        ),
    )
    with use_engine(engine):
        if args.trace is not None:
            from repro.api import _traced

            code, path = _traced(
                lambda: _dispatch(args, figures), args.trace, summary=True
            )
            print(f"[trace written {path}]", file=sys.stderr)
            return code
        return _dispatch(args, figures)


def _dispatch(args, figures) -> int:
    """Run one figure subcommand under the installed engine context."""
    scale = SCALES[args.scale]
    out = args.out_dir
    surrogate = getattr(args, "surrogate", "forest")

    if args.command == "run":
        return _run_command(args, scale, out, surrogate)

    if args.command == "fig2":
        f2, f3 = figures.fig2_fig3(
            scale, kernels=tuple(args.kernels), alpha=args.alpha, seed=args.seed,
            surrogate=surrogate,
        )
        _emit(f2, out)
        _emit(f3, out)
        return 0

    if args.command == "fig4":
        f4, f5 = figures.fig4_fig5(
            scale, alpha=args.alpha, seed=args.seed, surrogate=surrogate
        )
        _emit(f4, out)
        _emit(f5, out)
        return 0

    if args.command == "fig6":
        _emit(
            figures.fig6(
                scale, benchmark=args.benchmark, seed=args.seed, surrogate=surrogate
            ),
            out,
        )
        return 0

    if args.command == "fig7":
        benches = tuple(args.benchmarks) if args.benchmarks else None
        _emit(
            figures.fig7(
                scale, benchmarks=benches, alpha=args.alpha, seed=args.seed,
                surrogate=surrogate,
            ),
            out,
        )
        return 0

    if args.command == "fig8":
        _emit(
            figures.fig8(
                scale, benchmark_name=args.benchmark, seed=args.seed,
                surrogate=surrogate,
            ),
            out,
        )
        return 0

    if args.command == "fig9":
        _emit(
            figures.fig9(
                scale, benchmark_name=args.benchmark, seed=args.seed,
                surrogate=surrogate,
            ),
            out,
        )
        return 0

    if args.command == "all":
        print(figures.tables_1_to_4().render())
        f2, f3 = figures.fig2_fig3(scale, seed=args.seed, surrogate=surrogate)
        _emit(f2, out)
        _emit(f3, out)
        f4, f5 = figures.fig4_fig5(scale, seed=args.seed, surrogate=surrogate)
        _emit(f4, out)
        _emit(f5, out)
        _emit(figures.fig6(scale, seed=args.seed, surrogate=surrogate), out)
        pre = {k: {s: _trace_from_dict(d) for s, d in v.items()} for k, v in {**f2.data, **f4.data}.items()}
        _emit(
            figures.fig7(scale, seed=args.seed, precomputed=pre, surrogate=surrogate),
            out,
        )
        _emit(figures.fig8(scale, seed=args.seed, surrogate=surrogate), out)
        _emit(figures.fig9(scale, seed=args.seed, surrogate=surrogate), out)
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def _run_command(args, scale, out: "str | None", surrogate: str) -> int:
    """``repro run``: one workload, one or more strategies, plain output."""
    from repro import api

    strategies = list(args.strategy)
    common = dict(
        seed=args.seed,
        scale=scale,
        budget=args.budget,
        trials=args.trials,
        alpha=args.alpha,
        surrogate=surrogate,
    )
    if len(strategies) == 1:
        result = api.run(args.workload, strategies[0], **common)
        metrics = {strategies[0]: result.metrics}
    else:
        result = api.compare(args.workload, tuple(strategies), **common)
        metrics = result.metrics
    print(f"workload: {args.workload}  seed: {args.seed}")
    for name in strategies:
        m = metrics[name]
        rmse = ", ".join(f"a={k}: {v:.4f}" for k, v in m["final_rmse"].items())
        print(
            f"  {name:<8} final RMSE {rmse}  "
            f"cost {m['final_cost']:.3f}s  trials {m['n_trials']}"
        )
    if out:
        os.makedirs(out, exist_ok=True)
        slug = args.workload.replace(":", "-").replace("/", "-").replace(".", "-")
        path = os.path.join(out, f"run-{slug}.json")
        dump_json(
            {
                "workload": args.workload,
                "strategies": strategies,
                "seed": args.seed,
                "metrics": metrics,
            },
            path,
        )
        print(f"[written {path}]")
    return 0


def _trace_from_dict(d: dict):
    """Rehydrate an AveragedTrace from its to_dict() form (for `all`)."""
    from repro.experiments.aggregate import AveragedTrace

    return AveragedTrace.from_dict(d)


if __name__ == "__main__":
    sys.exit(main())
