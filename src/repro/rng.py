"""Seeding utilities.

Every stochastic component in this package takes an explicit
:class:`numpy.random.Generator` (or a seed convertible to one).  Experiments
that average over repeated trials derive independent child generators via
:func:`spawn`, which uses NumPy's ``SeedSequence`` spawning so that trials are
statistically independent yet fully reproducible from a single root seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn", "derive"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed: "SeedLike" = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can be
    handed a shared stream when the caller wants correlated behaviour, or a
    fresh one when it does not.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: "SeedLike", n: int) -> list[np.random.Generator]:
    """Create ``n`` independent child generators from ``seed``.

    Used by the experiment runner to give each repeated trial its own
    stream: trial *i* is reproducible regardless of how many trials run or
    in what order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def derive(seed: "SeedLike", *keys: "int | str") -> np.random.Generator:
    """Derive a generator deterministically keyed by ``keys``.

    This lets e.g. the benchmark response-surface for kernel ``"atax"`` be
    identical across processes and runs while remaining decoupled from the
    sampling randomness of any particular experiment.
    """
    material: list[int] = []
    if isinstance(seed, np.random.SeedSequence):
        material.extend(int(s) for s in np.atleast_1d(seed.generate_state(2)))
    elif isinstance(seed, np.random.Generator):
        material.append(int(seed.integers(0, 2**63 - 1)))
    elif seed is not None:
        material.append(int(seed))
    for key in keys:
        if isinstance(key, str):
            # Stable string hash (Python's hash() is salted per process).
            acc = 0
            for ch in key.encode("utf-8"):
                acc = (acc * 131 + ch) % (2**63 - 1)
            material.append(acc)
        else:
            material.append(int(key))
    return np.random.default_rng(np.random.SeedSequence(material))


def check_entropy_keys(keys: Sequence["int | str"]) -> None:
    """Validate key material for :func:`derive` (exposed for tests)."""
    for key in keys:
        if not isinstance(key, (int, str)):
            raise TypeError(f"derive keys must be int or str, got {type(key).__name__}")
