"""Inline suppression comments.

The grammar is ``# repro: allow[RULE_ID] reason`` — the marker may sit
at the end of the offending line or on the line directly above it, and
the reason is **mandatory**: a suppression without one does not
suppress (the finding is reported with a note instead), because an
unexplained waiver is indistinguishable from a stale one.

One marker waives exactly one rule; several markers may share a line
(``# repro: allow[DET002] ... allow[DET004] ...`` is two markers).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Suppression", "parse_suppressions", "suppression_for"]

_MARKER = re.compile(r"#\s*repro:\s*(allow\[[^\]]+\][^#]*)")
_ALLOW = re.compile(r"allow\[([A-Za-z0-9_]+)\]\s*([^#]*?)(?=allow\[|$)")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow[...]`` marker."""

    line: int
    rule: str
    reason: str

    @property
    def valid(self) -> bool:
        """Suppressions must carry a non-empty reason to take effect."""
        return bool(self.reason.strip())


def parse_suppressions(lines: "list[str]") -> "dict[int, list[Suppression]]":
    """All suppression markers in a file, keyed by 1-based line number."""
    table: "dict[int, list[Suppression]]" = {}
    for lineno, text in enumerate(lines, start=1):
        match = _MARKER.search(text)
        if not match:
            continue
        for allow in _ALLOW.finditer(match.group(1)):
            table.setdefault(lineno, []).append(
                Suppression(
                    line=lineno,
                    rule=allow.group(1),
                    reason=allow.group(2).strip(),
                )
            )
    return table


def suppression_for(
    table: "dict[int, list[Suppression]]", line: int, rule: str
) -> "Suppression | None":
    """The marker covering ``(line, rule)``, if any.

    A marker covers the line it sits on and the line directly below it
    (i.e. a comment-above suppresses the next line).  Invalid
    (reason-less) markers are returned too so the caller can annotate
    the surviving finding.
    """
    for candidate_line in (line, line - 1):
        for supp in table.get(candidate_line, ()):
            if supp.rule == rule:
                return supp
    return None
