"""Lightweight per-module symbol resolution for the rule checkers.

Full type inference is out of scope; what the determinism rules need is
much smaller and entirely syntactic:

* which local names are *imported modules* (``import numpy as np`` maps
  ``np`` → ``numpy``) or *imported attributes* (``from time import
  time`` maps ``time`` → ``time.time``), so a call site can be
  qualified back to the real dotted path it invokes;
* which module-level names are bound to *mutable containers*
  (dict/list/set/deque literals or constructor calls) — the state
  SPAWN001 guards;
* which module-level names are bound to ``threading.Lock()`` /
  ``RLock()`` — mutations under ``with <lock>:`` are concurrency-safe.

:func:`annotate_parents` threads a ``_repro_parent`` backlink through
the tree so checkers can walk outward (is this read a subscript store?
is this mutation inside a lock's ``with`` block?).
"""

from __future__ import annotations

import ast

__all__ = ["ModuleSymbols", "ModuleContext", "annotate_parents", "parent_chain"]

#: Constructor calls whose result is a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "deque",
    "OrderedDict",
    "defaultdict",
    "Counter",
}

_LOCK_CONSTRUCTORS = {"Lock", "RLock"}


def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``_repro_parent`` backlink to every node in ``tree``."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent_chain(node: ast.AST):
    """Yield ``node``'s ancestors, innermost first."""
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_repro_parent", None)


class ModuleSymbols:
    """Import aliases plus module-level mutable/lock bindings."""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias → dotted module path ("np" → "numpy").
        self.module_imports: "dict[str, str]" = {}
        #: local name → dotted origin ("time" → "time.time").
        self.attribute_imports: "dict[str, str]" = {}
        #: module-level names bound to mutable containers.
        self.mutable_globals: "set[str]" = set()
        #: module-level names bound to threading locks.
        self.lock_globals: "set[str]" = set()
        self._scan_block(tree.body)

    # -- construction -------------------------------------------------------
    def _scan_block(self, body: "list[ast.stmt]") -> None:
        """Scan module-level statements (descending into if/try blocks)."""
        for stmt in body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.module_imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    self.attribute_imports[alias.asname or alias.name] = (
                        f"{stmt.module}.{alias.name}"
                    )
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if self._is_mutable_literal(value):
                        self.mutable_globals.add(target.id)
                    elif self._is_lock_call(value):
                        self.lock_globals.add(target.id)
            elif isinstance(stmt, ast.If):
                self._scan_block(stmt.body)
                self._scan_block(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                self._scan_block(stmt.body)
                for handler in stmt.handlers:
                    self._scan_block(handler.body)
                self._scan_block(stmt.orelse)
                self._scan_block(stmt.finalbody)

    def _is_mutable_literal(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self._call_basename(node)
            return name in _MUTABLE_CONSTRUCTORS
        return False

    def _is_lock_call(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        qualified = self.qualified(node.func)
        if qualified in ("threading.Lock", "threading.RLock"):
            return True
        return self._call_basename(node) in _LOCK_CONSTRUCTORS

    @staticmethod
    def _call_basename(node: ast.Call) -> "str | None":
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    # -- queries ------------------------------------------------------------
    def qualified(self, node: ast.expr) -> "str | None":
        """Dotted origin of an expression, resolved through imports.

        ``np.random.seed`` → ``"numpy.random.seed"``; ``datetime.now``
        after ``from datetime import datetime`` → ``"datetime.datetime.now"``.
        Returns ``None`` for anything not rooted in an import (locals,
        attributes of call results, builtins).
        """
        if isinstance(node, ast.Name):
            if node.id in self.module_imports:
                return self.module_imports[node.id]
            if node.id in self.attribute_imports:
                return self.attribute_imports[node.id]
            return None
        if isinstance(node, ast.Attribute):
            base = self.qualified(node.value)
            return f"{base}.{node.attr}" if base else None
        return None


class ModuleContext:
    """Everything a checker needs about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        annotate_parents(tree)
        self.symbols = ModuleSymbols(tree)

    def line_text(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""
