"""Static reproducibility lint for the repro stack.

``repro.analysis`` parses source trees with :mod:`ast`, resolves a
lightweight per-module symbol table, and checks a registry of rules
against the repo's determinism and concurrency contracts — RNG streams
derive from job keys (DET001), result paths read no wall clocks
(DET002) or unordered sets (DET003) or ambient environment (DET004),
worker-visible module state is lock-guarded or justified (SPAWN001),
telemetry names are literal and namespace-disciplined (TEL001), file
writes go through the journal/atomic helpers (IO001), and no handler
swallows exceptions silently (EXC001).

On top of the per-module rules sits a whole-program pass: the
:mod:`~repro.analysis.graph` module builds a project-wide import graph
and a resolved intra-package call graph, and the FLOW/RACE/ARCH rule
families run dataflow over it — un-derived RNG reaching worker-reachable
code (FLOW001), generator parameters consumed on only one branch path
(FLOW002), shared state touched on thread-reachable paths without the
guarding lock (RACE001), inconsistent lock acquisition order (RACE002),
and the layering contract over imports (ARCH001).  Results are cached
incrementally (:mod:`~repro.analysis.cache`) with content-hash keys and
transitive invalidation through the import graph.

Run it as ``repro lint`` or ``python -m repro.analysis [paths...]``;
the pytest gate ``tests/test_lint_clean.py`` keeps ``src/repro``
violation-free.  See DESIGN.md §2f for the rule table and the
``# repro: allow[RULE] reason`` suppression grammar, and §2k for the
whole-program analysis design.
"""

from repro.analysis.config import (
    LintConfig,
    RuleConfig,
    default_config,
    permissive_config,
)
from repro.analysis.findings import Finding, LintUsageError
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    findings_from_json,
    render_json,
    render_text,
)
from repro.analysis.rules import (
    all_rules,
    get_rule,
    known_rule_ids,
    module_rules,
    project_rules,
)
from repro.analysis.runner import (
    LintResult,
    build_graph_for_paths,
    lint_paths,
)
from repro.analysis.cli import main

__all__ = [
    "Finding",
    "LintUsageError",
    "LintConfig",
    "RuleConfig",
    "LintResult",
    "lint_paths",
    "build_graph_for_paths",
    "default_config",
    "permissive_config",
    "all_rules",
    "get_rule",
    "known_rule_ids",
    "module_rules",
    "project_rules",
    "render_text",
    "render_json",
    "findings_from_json",
    "JSON_SCHEMA_VERSION",
    "main",
]
