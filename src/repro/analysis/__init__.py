"""Static reproducibility lint for the repro stack.

``repro.analysis`` parses source trees with :mod:`ast`, resolves a
lightweight per-module symbol table, and checks a registry of rules
against the repo's determinism and concurrency contracts — RNG streams
derive from job keys (DET001), result paths read no wall clocks
(DET002) or unordered sets (DET003) or ambient environment (DET004),
worker-visible module state is lock-guarded or justified (SPAWN001),
telemetry names are literal and namespace-disciplined (TEL001), file
writes go through the journal/atomic helpers (IO001), and no handler
swallows exceptions silently (EXC001).

Run it as ``repro lint`` or ``python -m repro.analysis [paths...]``;
the pytest gate ``tests/test_lint_clean.py`` keeps ``src/repro``
violation-free.  See DESIGN.md §2f for the full rule table and the
``# repro: allow[RULE] reason`` suppression grammar.
"""

from repro.analysis.config import (
    LintConfig,
    RuleConfig,
    default_config,
    permissive_config,
)
from repro.analysis.findings import Finding, LintUsageError
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    findings_from_json,
    render_json,
    render_text,
)
from repro.analysis.rules import all_rules, get_rule, known_rule_ids
from repro.analysis.runner import LintResult, lint_paths
from repro.analysis.cli import main

__all__ = [
    "Finding",
    "LintUsageError",
    "LintConfig",
    "RuleConfig",
    "LintResult",
    "lint_paths",
    "default_config",
    "permissive_config",
    "all_rules",
    "get_rule",
    "known_rule_ids",
    "render_text",
    "render_json",
    "findings_from_json",
    "JSON_SCHEMA_VERSION",
    "main",
]
