"""The lint driver: walk files, run rules, apply suppressions and baseline.

:func:`lint_paths` is the single entry point used by the CLI, the
pytest gate, and the fixture tests.  The walk is fully deterministic —
files are discovered with a sorted traversal, findings are sorted by
``(file, line, col, rule)`` — because the linter polices a determinism
contract and must honour it itself.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.config import LintConfig, default_config, path_matches
from repro.analysis.findings import Finding, LintUsageError
from repro.analysis.rules import all_rules
from repro.analysis.suppress import Suppression, parse_suppressions, suppression_for
from repro.analysis.symbols import ModuleContext

__all__ = ["LintResult", "lint_paths", "iter_python_files"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed: "list[tuple[str, Suppression]]" = field(default_factory=list)
    baselined: int = 0
    files_scanned: int = 0
    config: LintConfig = field(default_factory=default_config)

    @property
    def errors(self) -> "list[Finding]":
        """Findings at ``error`` severity — the ones that fail the run."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        """0 when no error-severity findings survived, else 1."""
        return 1 if self.errors else 0


def iter_python_files(
    paths: "list[str]", exclude: tuple = ()
) -> "list[tuple[Path, str]]":
    """``(absolute_path, report_name)`` for every ``.py`` under ``paths``.

    ``report_name`` is the path as the user referenced it (relative
    stays relative), which keeps report lines stable across machines.
    The traversal is sorted so runs are byte-identical.
    """
    seen: "set[Path]" = set()
    out: "list[tuple[Path, str]]" = []
    for root in paths:
        root_path = Path(root)
        if not root_path.exists():
            raise LintUsageError(f"path {root!r} does not exist")
        if root_path.is_file():
            candidates = [root_path]
        else:
            candidates = sorted(
                p for p in root_path.rglob("*.py") if p.is_file()
            )
        for path in candidates:
            name = path.as_posix()
            if path_matches(name, exclude):
                continue
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append((path, name))
    return out


def _lint_file(
    path: Path, name: str, config: LintConfig
) -> "tuple[list[Finding], list[tuple[str, Suppression]]]":
    """All post-suppression findings in one file."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintUsageError(f"cannot read {name!r}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=name)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    file=name,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="SYNTAX",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            [],
        )
    module = ModuleContext(name, source, tree)
    table = parse_suppressions(module.lines)
    occurrence: "dict[tuple[str, str], int]" = {}

    findings: "list[Finding]" = []
    suppressed: "list[tuple[str, Suppression]]" = []
    for rule in all_rules():
        rule_cfg = config.rule(rule.id)
        if not rule_cfg.enabled or path_matches(name, rule_cfg.allow_paths):
            continue
        for line, col, message in rule.run(module):
            marker = suppression_for(table, line, rule.id)
            if marker is not None and marker.valid:
                suppressed.append((name, marker))
                continue
            if marker is not None:
                message += " (suppression ignored: missing reason)"
            line_text = module.line_text(line)
            index = occurrence.get((rule.id, line_text.strip()), 0)
            occurrence[(rule.id, line_text.strip())] = index + 1
            findings.append(
                Finding(
                    file=name,
                    line=line,
                    col=col,
                    rule=rule.id,
                    message=message,
                    severity=rule_cfg.severity,
                ).with_fingerprint(line_text, index)
            )
    return findings, suppressed


def lint_paths(
    paths: "list[str]",
    config: "LintConfig | None" = None,
    baseline_path: "str | None" = None,
) -> LintResult:
    """Lint every Python file under ``paths``; see :class:`LintResult`."""
    config = config if config is not None else default_config()
    baseline = load_baseline(baseline_path) if baseline_path else set()

    result = LintResult(config=config)
    for path, name in iter_python_files([os.fspath(p) for p in paths], config.exclude):
        findings, suppressed = _lint_file(path, name, config)
        result.findings.extend(findings)
        result.suppressed.extend(suppressed)
        result.files_scanned += 1
    if baseline:
        kept, baselined = apply_baseline(result.findings, baseline)
        result.findings = kept
        result.baselined = len(baselined)
    result.findings.sort()
    return result
