"""The lint driver: walk files, run rules, apply suppressions and baseline.

:func:`lint_paths` is the single entry point used by the CLI, the
pytest gate, and the fixture tests.  The walk is fully deterministic —
files are discovered with a sorted traversal, findings are sorted by
``(file, line, col, rule)`` — because the linter polices a determinism
contract and must honour it itself.

Two passes run per invocation:

* the **module pass** runs every per-module rule over each file in
  isolation (parallelisable with ``jobs``, cacheable per file);
* the **project pass** builds the whole-program
  :class:`~repro.analysis.graph.ProjectGraph` and runs the FLOW/RACE/
  ARCH family, which needs every module at once (cacheable as a unit,
  keyed on the digest of the entire walk).

Suppression markers anchor to *statements*, not physical lines: a
finding reported inside a multi-line statement is covered by a marker
on (or directly above) the statement's first line, as well as by one on
or directly above the reported line itself.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.cache import (
    CacheStats,
    LintCache,
    compute_dirty,
    file_digest,
    run_module_pass,
)
from repro.analysis.config import LintConfig, default_config, path_matches
from repro.analysis.findings import Finding, LintUsageError
from repro.analysis.rules import (
    module_rules,
    project_rules,
    ruleset_digest_parts,
)
from repro.analysis.suppress import Suppression, parse_suppressions
from repro.analysis.symbols import ModuleContext

__all__ = [
    "LintResult",
    "ModuleRecord",
    "lint_paths",
    "iter_python_files",
    "lint_one_file",
    "build_graph_for_paths",
    "statement_spans",
    "find_suppression",
]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed: "list[tuple[str, Suppression]]" = field(default_factory=list)
    baselined: int = 0
    files_scanned: int = 0
    #: files that actually went through the module pass this run (the
    #: rest were served from the cache or out of ``--changed`` scope).
    files_linted: int = 0
    config: LintConfig = field(default_factory=default_config)
    cache: CacheStats = field(default_factory=CacheStats)

    @property
    def errors(self) -> "list[Finding]":
        """Findings at ``error`` severity — the ones that fail the run."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def exit_code(self) -> int:
        """0 when no error-severity findings survived, else 1."""
        return 1 if self.errors else 0


@dataclass
class ModuleRecord:
    """Module-pass output for one file (what the cache stores)."""

    name: str
    findings: "list[Finding]" = field(default_factory=list)
    suppressed: "list[tuple[str, Suppression]]" = field(default_factory=list)
    imports: "list[str]" = field(default_factory=list)
    #: parsed context, kept only when linting ran in-process (a pool
    #: worker drops it rather than pickling a whole AST back).
    context: "ModuleContext | None" = None


def iter_python_files(
    paths: "list[str]", exclude: tuple = ()
) -> "list[tuple[Path, str]]":
    """``(absolute_path, report_name)`` for every ``.py`` under ``paths``.

    ``report_name`` is the path as the user referenced it (relative
    stays relative), which keeps report lines stable across machines.
    The traversal is sorted so runs are byte-identical.
    """
    seen: "set[Path]" = set()
    out: "list[tuple[Path, str]]" = []
    for root in paths:
        root_path = Path(root)
        if not root_path.exists():
            raise LintUsageError(f"path {root!r} does not exist")
        if root_path.is_file():
            candidates = [root_path]
        else:
            candidates = sorted(
                p for p in root_path.rglob("*.py") if p.is_file()
            )
        for path in candidates:
            name = path.as_posix()
            if path_matches(name, exclude):
                continue
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append((path, name))
    return out


def statement_spans(tree: ast.AST) -> "dict[int, int]":
    """Map each line inside a multi-line statement to the statement start.

    Only the *innermost* covering statement counts (a single-line
    statement inside a ten-line ``if`` maps to itself, so a marker on
    the ``if`` head does not blanket-suppress the whole body).
    """
    spans: "dict[int, int]" = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        for lineno in range(node.lineno, end + 1):
            previous = spans.get(lineno)
            if previous is None or node.lineno > previous:
                spans[lineno] = node.lineno
    return spans


def find_suppression(
    table: "dict[int, list[Suppression]]",
    spans: "dict[int, int]",
    line: int,
    rule_id: str,
) -> "Suppression | None":
    """The marker covering ``(line, rule)``, statement-span aware.

    Candidates, in priority order: the reported line, the line above
    it, the first line of the enclosing multi-line statement, and the
    line above that.
    """
    candidates = [line, line - 1]
    start = spans.get(line)
    if start is not None and start != line:
        candidates.extend([start, start - 1])
    seen: "set[int]" = set()
    for candidate in candidates:
        if candidate in seen:
            continue
        seen.add(candidate)
        for supp in table.get(candidate, ()):
            if supp.rule == rule_id:
                return supp
    return None


def lint_one_file(path: Path, name: str, config: LintConfig) -> ModuleRecord:
    """Run the module pass over one file (also the pool-worker body)."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintUsageError(f"cannot read {name!r}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=name)
    except SyntaxError as exc:
        return ModuleRecord(
            name=name,
            findings=[
                Finding(
                    file=name,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="SYNTAX",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
        )
    from repro.analysis.graph import _collect_module, module_name_for

    module = ModuleContext(name, source, tree)
    table = parse_suppressions(module.lines)
    spans = statement_spans(tree)
    info = _collect_module(module_name_for(name), name, module)
    record = ModuleRecord(
        name=name,
        imports=sorted({target for _, _, target in info.import_sites}),
        context=module,
    )
    occurrence: "dict[tuple[str, str], int]" = {}
    for rule in module_rules():
        rule_cfg = config.rule(rule.id)
        if not rule_cfg.enabled or path_matches(name, rule_cfg.allow_paths):
            continue
        for line, col, message in rule.run(module):
            marker = find_suppression(table, spans, line, rule.id)
            if marker is not None and marker.valid:
                record.suppressed.append((name, marker))
                continue
            if marker is not None:
                message += " (suppression ignored: missing reason)"
            line_text = module.line_text(line)
            index = occurrence.get((rule.id, line_text.strip()), 0)
            occurrence[(rule.id, line_text.strip())] = index + 1
            record.findings.append(
                Finding(
                    file=name,
                    line=line,
                    col=col,
                    rule=rule.id,
                    message=message,
                    severity=rule_cfg.severity,
                ).with_fingerprint(line_text, index)
            )
    return record


def _parse_context(path: Path, name: str) -> "ModuleContext | None":
    """Parse one file for the project pass (``None`` if it cannot parse —
    the module pass already reported the SYNTAX finding)."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=name)
    except (OSError, UnicodeDecodeError, SyntaxError):
        return None
    return ModuleContext(name, source, tree)


def build_graph_for_paths(paths: "list[str]", config: "LintConfig | None" = None):
    """Build the :class:`ProjectGraph` over a walk (the ``--graph`` dump)."""
    from repro.analysis.graph import build_project_graph

    config = config if config is not None else default_config()
    modules = []
    for path, name in iter_python_files([os.fspath(p) for p in paths], config.exclude):
        context = _parse_context(path, name)
        if context is not None:
            modules.append((name, context))
    return build_project_graph(modules)


def _run_project_pass(
    files: "list[tuple[Path, str]]",
    contexts: "dict[str, ModuleContext]",
    config: LintConfig,
) -> "tuple[list[Finding], list[tuple[str, Suppression]]]":
    """Run every whole-program rule over the graph of ``files``."""
    from repro.analysis.graph import build_project_graph

    modules = []
    for path, name in files:
        context = contexts.get(name)
        if context is None:
            context = _parse_context(path, name)
        if context is not None:
            modules.append((name, context))
    graph = build_project_graph(modules)

    tables: "dict[str, dict]" = {}
    spans: "dict[str, dict]" = {}
    for name, context in modules:
        tables[name] = parse_suppressions(context.lines)
        spans[name] = statement_spans(context.tree)
    texts = {name: context for name, context in modules}

    findings: "list[Finding]" = []
    suppressed: "list[tuple[str, Suppression]]" = []
    for rule in project_rules():
        rule_cfg = config.rule(rule.id)
        if not rule_cfg.enabled:
            continue
        occurrence: "dict[tuple[str, str], int]" = {}
        for file, line, col, message in rule.run_project(graph):
            if file not in texts or path_matches(file, rule_cfg.allow_paths):
                continue
            marker = find_suppression(tables[file], spans[file], line, rule.id)
            if marker is not None and marker.valid:
                suppressed.append((file, marker))
                continue
            if marker is not None:
                message += " (suppression ignored: missing reason)"
            line_text = texts[file].line_text(line)
            index = occurrence.get((file, line_text.strip()), 0)
            occurrence[(file, line_text.strip())] = index + 1
            findings.append(
                Finding(
                    file=file,
                    line=line,
                    col=col,
                    rule=rule.id,
                    message=message,
                    severity=rule_cfg.severity,
                ).with_fingerprint(line_text, index)
            )
    return findings, suppressed


def _config_digest_parts(config: LintConfig) -> "list[str]":
    parts = [repr(tuple(config.exclude))]
    for rule_id in sorted(config.rules):
        parts.append(f"{rule_id}={config.rules[rule_id]!r}")
    return parts


def _ruleset_digest(config: LintConfig) -> str:
    h = hashlib.sha256()
    for part in ruleset_digest_parts():
        h.update(part.encode("utf-8", "replace"))
        h.update(b"\x00")
    for part in _config_digest_parts(config):
        h.update(part.encode("utf-8", "replace"))
        h.update(b"\x00")
    return h.hexdigest()


def _project_key(
    files: "list[tuple[Path, str]]", digests: "dict[str, str | None]"
) -> str:
    h = hashlib.sha256()
    for _path, name in files:
        h.update(name.encode("utf-8", "replace"))
        h.update(b"\x1f")
        h.update((digests.get(name) or "?").encode("ascii", "replace"))
        h.update(b"\x00")
    return h.hexdigest()


def lint_paths(
    paths: "list[str]",
    config: "LintConfig | None" = None,
    baseline_path: "str | None" = None,
    *,
    jobs: int = 1,
    cache_path: "str | Path | None" = None,
    changed: "set[str] | None" = None,
) -> LintResult:
    """Lint every Python file under ``paths``; see :class:`LintResult`.

    ``jobs`` fans the module pass over a process pool (output is
    byte-identical to serial).  ``cache_path`` enables the incremental
    cache.  ``changed`` restricts the *reported* findings (and the
    module pass) to the named files while still building the
    whole-program graph over the full walk; it disables the cache for
    the run, since a partial report must not overwrite whole-tree
    entries.
    """
    config = config if config is not None else default_config()
    baseline = load_baseline(baseline_path) if baseline_path else set()
    files = iter_python_files([os.fspath(p) for p in paths], config.exclude)

    if changed is not None:
        # Accept report names or absolute paths; work in report names.
        changed = {
            name
            for path, name in files
            if name in changed or path.resolve().as_posix() in changed
        }

    use_cache = cache_path is not None and changed is None
    stats = CacheStats(enabled=use_cache)
    result = LintResult(config=config, cache=stats)
    result.files_scanned = len(files)

    records: "dict[str, tuple[list[Finding], list[tuple[str, Suppression]]]]" = {}
    contexts: "dict[str, ModuleContext]" = {}

    cache: "LintCache | None" = None
    digests: "dict[str, str | None]" = {}
    if use_cache:
        cache = LintCache(cache_path, _ruleset_digest(config))
        digests = {name: file_digest(path) for path, name in files}
        dirty, stats.invalidated = compute_dirty(files, digests, cache)
        to_lint = [(path, name) for path, name in files if name in dirty]
    elif changed is not None:
        to_lint = [(path, name) for path, name in files if name in changed]
    else:
        to_lint = files

    for record in run_module_pass(to_lint, config, jobs):
        records[record.name] = (record.findings, record.suppressed)
        if record.context is not None:
            contexts[record.name] = record.context
        if cache is not None:
            digest = digests.get(record.name)
            if digest is not None:
                cache.store(
                    record.name,
                    digest,
                    record.imports,
                    record.findings,
                    [supp for _file, supp in record.suppressed],
                )
            stats.misses += 1
    result.files_linted = len(to_lint)

    if cache is not None:
        walked = {name for _path, name in files}
        for gone in cache.cached_names() - walked:
            cache.drop(gone)
        for path, name in files:
            if name in records:
                continue
            entry = cache.lookup(name, digests.get(name) or "")
            if entry is None:  # unreadable file raced the walk; lint it now
                record = lint_one_file(path, name, config)
                records[record.name] = (record.findings, record.suppressed)
                if record.context is not None:
                    contexts[record.name] = record.context
                stats.misses += 1
                continue
            records[name] = (
                entry.findings,
                [(name, supp) for supp in entry.suppressed],
            )
            stats.hits += 1

    for _path, name in files:
        found = records.get(name)
        if found is None:
            continue
        result.findings.extend(found[0])
        result.suppressed.extend(found[1])

    # -- whole-program pass --------------------------------------------------
    project_findings: "list[Finding]" = []
    project_suppressed: "list[tuple[str, Suppression]]" = []
    if files:
        key = _project_key(files, digests) if use_cache else ""
        cached_project = cache.project_lookup(key) if cache is not None else None
        if cached_project is not None:
            project_findings, project_suppressed = cached_project
            stats.project_hit = True
        else:
            project_findings, project_suppressed = _run_project_pass(
                files, contexts, config
            )
            if cache is not None:
                cache.project_store(key, project_findings, project_suppressed)
    result.findings.extend(project_findings)
    result.suppressed.extend(project_suppressed)

    if changed is not None:
        result.findings = [f for f in result.findings if f.file in changed]
        result.suppressed = [
            (file, supp) for file, supp in result.suppressed if file in changed
        ]

    if cache is not None:
        cache.save()
    stats.publish()

    if baseline:
        kept, baselined = apply_baseline(result.findings, baseline)
        result.findings = kept
        result.baselined = len(baselined)
    result.findings.sort()
    return result
