"""Text and JSON rendering of a lint run.

Text format (one line per finding, editor-clickable)::

    src/repro/foo.py:41:8 DET002 wall-clock read time.time() ...

JSON format — the machine interface CI artifacts and editors consume.
Schema (``JSON_SCHEMA_VERSION = 1``)::

    {
      "schema": 1,                       # bumped on incompatible change
      "tool": "repro.analysis",
      "paths": ["src", ...],             # the roots that were walked
      "files_scanned": 84,
      "rules": {                         # every *enabled* rule
        "DET001": {"summary": str, "severity": "error"|"warning"},
        ...
      },
      "findings": [                      # sorted (file, line, col, rule)
        {"file": str, "line": int, "col": int, "rule": str,
         "severity": str, "message": str, "fingerprint": str},
        ...
      ],
      "suppressed": [                    # waived by inline allow[...] markers
        {"file": str, "line": int, "rule": str, "reason": str}, ...
      ],
      "baselined": int,                  # findings absorbed by the baseline
      "summary": {"total": int, "errors": int, "warnings": int,
                  "by_rule": {rule_id: int, ...}}
    }

:func:`findings_from_json` is the inverse of the ``findings`` array —
``findings_from_json(json.loads(render_json(result)))`` round-trips to
the exact :class:`~repro.analysis.findings.Finding` objects, which the
test suite pins.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding

__all__ = [
    "JSON_SCHEMA_VERSION",
    "render_text",
    "render_json",
    "findings_from_json",
]

JSON_SCHEMA_VERSION = 1


def render_text(result) -> str:
    """Human/editor-facing report: one finding per line plus a summary."""
    lines = [finding.render() for finding in result.findings]
    n_err = sum(1 for f in result.findings if f.severity == "error")
    n_warn = len(result.findings) - n_err
    summary = (
        f"{len(result.findings)} finding(s) ({n_err} error, {n_warn} warning) "
        f"in {result.files_scanned} file(s); "
        f"{len(result.suppressed)} suppressed, {result.baselined} baselined"
    )
    if lines:
        lines.append(summary)
    else:
        lines = [f"clean: {summary}"]
    return "\n".join(lines)


def render_json(result, paths: "list[str]") -> str:
    """Machine-facing report (schema in the module docstring)."""
    from repro.analysis.rules import all_rules

    by_rule: "dict[str, int]" = {}
    for finding in result.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "paths": [str(p) for p in paths],
        "files_scanned": result.files_scanned,
        "rules": {
            r.id: {
                "summary": r.summary,
                "severity": result.config.rule(r.id).severity,
            }
            for r in all_rules()
            if result.config.rule(r.id).enabled
        },
        "findings": [
            {
                "file": f.file,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "severity": f.severity,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in result.findings
        ],
        "suppressed": [
            {"file": s_file, "line": s.line, "rule": s.rule, "reason": s.reason}
            for s_file, s in result.suppressed
        ],
        "baselined": result.baselined,
        "summary": {
            "total": len(result.findings),
            "errors": sum(1 for f in result.findings if f.severity == "error"),
            "warnings": sum(
                1 for f in result.findings if f.severity == "warning"
            ),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_from_json(payload: "dict | str") -> "list[Finding]":
    """Reconstruct :class:`Finding` objects from a JSON report."""
    if isinstance(payload, str):
        payload = json.loads(payload)
    return [
        Finding(
            file=entry["file"],
            line=entry["line"],
            col=entry["col"],
            rule=entry["rule"],
            message=entry["message"],
            severity=entry["severity"],
            fingerprint=entry["fingerprint"],
        )
        for entry in payload["findings"]
    ]
