"""Project-wide import graph and resolved intra-package call graph.

The per-module checkers see one file at a time; the whole-program rules
(FLOW/RACE/ARCH — :mod:`repro.analysis.graph_rules`) need to know how
files relate: who imports whom, which function calls which, what each
function does with RNG values, locks, and shared state.  This module
builds that picture in two passes over the already-parsed
:class:`~repro.analysis.symbols.ModuleContext` objects:

1. **collect** — per module: dotted module name (derived from
   ``__init__.py`` nesting on disk), every import statement (including
   function-local lazy imports and relative imports, resolved to
   absolute dotted targets), class skeletons (methods, lock attributes,
   mutable attributes, attribute types harvested from ``__init__``),
   and top-level function nodes;
2. **summarize** — per function: an ordered walk of the body producing
   a :class:`FunctionSummary` of resolved call sites (with the lock set
   syntactically held at each), RNG creations classified derived vs.
   un-derived, RNG parameters drawn from or forwarded, shared-state
   accesses, and lock acquisitions.

Resolution is deliberately syntactic and best-effort: local functions,
``from X import f`` aliases, ``self.method``, classes named by parameter
and return annotations (``def get(...) -> Session`` lets
``session = registry.get(id); session.suggest()`` resolve), and local
instances from direct construction.  Anything dynamic resolves to
nothing — the dataflow rules only act on edges that *provably* exist,
so an unresolved call can hide a violation but never invent one.

Entry points anchor the reachability analyses.  Two markers are
recognised on a ``def`` line::

    def execute_job(...):   # repro: worker-entry
    def handle(...):        # repro: thread-entry

and three patterns are auto-detected: functions submitted to an
executor (``pool.submit(f, ...)``, ``pool.map(f, ...)``), pool
initializers (``initializer=f``), thread targets
(``threading.Thread(target=f)``), and ``do_*`` methods of
``*HTTPRequestHandler`` subclasses.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.symbols import ModuleContext

__all__ = [
    "ProjectGraph",
    "FunctionSummary",
    "ClassInfo",
    "ModuleInfo",
    "build_project_graph",
    "module_name_for",
    "RNG_DRAW_METHODS",
]

#: Generator methods that consume draws from the stream.
RNG_DRAW_METHODS = {
    "random",
    "integers",
    "normal",
    "standard_normal",
    "uniform",
    "choice",
    "permutation",
    "permuted",
    "shuffle",
    "exponential",
    "standard_exponential",
    "beta",
    "gamma",
    "binomial",
    "poisson",
    "lognormal",
    "bytes",
    "bit_generator",
}

#: Container methods that mutate the receiver (shared with SPAWN001).
_MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "clear",
    "remove",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "sort",
    "reverse",
}

_MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "deque",
    "OrderedDict",
    "defaultdict",
    "Counter",
}

_ENTRY_MARK = re.compile(r"#\s*repro:\s*(worker|thread)-entry\b")

_POOL_SUBMIT_METHODS = {"submit", "map", "apply_async", "imap", "imap_unordered"}


# ---------------------------------------------------------------------------
# data model
# ---------------------------------------------------------------------------


@dataclass
class RngCreation:
    """One un-derived RNG constructed inside a function."""

    lineno: int
    col: int
    desc: str
    consumed: bool = False
    #: ``(callee_qualname, callee_param)`` pairs this value is passed to.
    passes: "list[tuple[str, str]]" = field(default_factory=list)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with the locks held at the site."""

    callee: str
    lineno: int
    col: int
    held: frozenset = frozenset()


@dataclass(frozen=True)
class Access:
    """One read/write of lock-scoped shared state."""

    kind: str  # "module" | "attr"
    owner: str  # module dotted name | class qualname
    attr: str
    write: bool
    lineno: int
    col: int
    held: frozenset = frozenset()


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` entry, with the locks already held."""

    key: str
    lineno: int
    col: int
    held_before: frozenset = frozenset()


@dataclass
class FunctionSummary:
    """What one function does, as far as the syntactic walk can see."""

    qualname: str
    module: str
    file: str
    lineno: int
    name: str
    params: "tuple[str, ...]"
    cls: "str | None" = None
    worker_entry: bool = False
    thread_entry: bool = False
    calls: "list[CallSite]" = field(default_factory=list)
    #: own parameters drawn from directly (``rng.normal()``).
    draws: "set[str]" = field(default_factory=set)
    #: ``(own_param, callee_qualname, callee_param)`` forwards.
    forwards: "list[tuple[str, str, str]]" = field(default_factory=list)
    creations: "list[RngCreation]" = field(default_factory=list)
    accesses: "list[Access]" = field(default_factory=list)
    acquisitions: "list[Acquisition]" = field(default_factory=list)


@dataclass
class ClassInfo:
    """Skeleton of one class: methods and the attribute tables."""

    qualname: str
    module: str
    name: str
    bases: "tuple[str, ...]" = ()
    methods: "dict[str, ast.AST]" = field(default_factory=dict)
    lock_attrs: "set[str]" = field(default_factory=set)
    mutable_attrs: "set[str]" = field(default_factory=set)
    #: attr → raw annotation text, resolved to qualnames in pass 2.
    attr_types_raw: "dict[str, str]" = field(default_factory=dict)
    attr_types: "dict[str, str]" = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module facts shared by the graph rules and the cache."""

    name: str
    file: str
    context: ModuleContext
    #: every import site, as ``(lineno, col, absolute dotted target)``.
    import_sites: "list[tuple[int, int, str]]" = field(default_factory=list)
    #: project-internal modules this module imports (for invalidation).
    project_imports: "set[str]" = field(default_factory=set)
    classes_local: "dict[str, ClassInfo]" = field(default_factory=dict)
    functions_local: "dict[str, ast.AST]" = field(default_factory=dict)


def module_name_for(path: "Path | str") -> str:
    """Dotted module name of ``path``, from ``__init__.py`` nesting.

    Walks up while the parent directory is a package; a loose file (no
    enclosing package) is just its stem.  ``pkg/__init__.py`` is the
    package ``pkg`` itself.
    """
    p = Path(path)
    parts = [p.stem]
    current = p.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        current = current.parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else p.stem


def _resolve_relative(module: str, is_package: bool, level: int, base: "str | None") -> "str | None":
    """Absolute dotted target of a ``from ...X import Y`` statement."""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    anchor = parts[: len(parts) - drop] if drop else parts
    if base:
        anchor = anchor + base.split(".")
    return ".".join(anchor) if anchor else None


def _annotation_text(node: "ast.expr | None") -> "str | None":
    """Raw dotted text of a simple annotation (``Session``, ``np.rng``).

    ``Optional[X]`` / ``X | None`` unwrap to ``X``; anything fancier
    resolves to nothing.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip()
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _annotation_text(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):
        head = _annotation_text(node.value)
        if head in ("Optional", "typing.Optional"):
            return _annotation_text(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_text(node.left)
        if left is not None:
            return left
        return _annotation_text(node.right)
    return None


# ---------------------------------------------------------------------------
# pass 1: per-module collection
# ---------------------------------------------------------------------------


def _collect_module(name: str, file: str, context: ModuleContext) -> ModuleInfo:
    info = ModuleInfo(name=name, file=file, context=context)
    is_package = Path(file).stem == "__init__"
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.import_sites.append((node.lineno, node.col_offset, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(name, is_package, node.level, node.module)
            else:
                base = node.module
            if base is None:
                continue
            for alias in node.names:
                # ``from X import Y`` may bind the submodule ``X.Y`` or an
                # attribute of ``X``; record the longer form, pass 2 keeps
                # it only if it names a real project module.
                info.import_sites.append(
                    (node.lineno, node.col_offset, f"{base}.{alias.name}")
                )
    for stmt in context.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions_local[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            info.classes_local[stmt.name] = _collect_class(name, stmt)
    return info


def _collect_class(module: str, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(
        qualname=f"{module}.{node.name}",
        module=module,
        name=node.name,
        bases=tuple(
            t for t in (_annotation_text(b) for b in node.bases) if t is not None
        ),
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = stmt
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and value is not None:
                    if _is_mutable_value(value):
                        cls.mutable_attrs.add(target.id)
    init = cls.methods.get("__init__")
    if init is not None:
        _collect_init_attrs(cls, init)
    return cls


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _is_lock_value(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in ("Lock", "RLock")
    if isinstance(func, ast.Attribute):
        return func.attr in ("Lock", "RLock")
    return False


def _collect_init_attrs(cls: ClassInfo, init: ast.AST) -> None:
    """Harvest ``self.x = ...`` bindings from ``__init__``."""
    param_ann: "dict[str, str]" = {}
    for arg in (*init.args.posonlyargs, *init.args.args, *init.args.kwonlyargs):
        text = _annotation_text(arg.annotation)
        if text:
            param_ann[arg.arg] = text
    for node in ast.walk(init):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                if value is not None and _is_lock_value(value):
                    cls.lock_attrs.add(attr)
                elif value is not None and _is_mutable_value(value):
                    cls.mutable_attrs.add(attr)
                if isinstance(node, ast.AnnAssign):
                    text = _annotation_text(node.annotation)
                    if text:
                        cls.attr_types_raw[attr] = text
                elif isinstance(value, ast.Name) and value.id in param_ann:
                    cls.attr_types_raw[attr] = param_ann[value.id]
                elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                    cls.attr_types_raw[attr] = value.func.id


# ---------------------------------------------------------------------------
# the project graph
# ---------------------------------------------------------------------------


class ProjectGraph:
    """The resolved whole-program view over one lint run's files."""

    def __init__(self) -> None:
        self.modules: "dict[str, ModuleInfo]" = {}
        self.classes: "dict[str, ClassInfo]" = {}
        self.functions: "dict[str, FunctionSummary]" = {}
        self.worker_entries: "set[str]" = set()
        self.thread_entries: "set[str]" = set()

    # -- queries -------------------------------------------------------------
    def call_edges(self) -> "dict[str, list[str]]":
        """qualname → sorted callee qualnames (resolved sites only)."""
        edges: "dict[str, list[str]]" = {}
        for qualname, fn in self.functions.items():
            edges[qualname] = sorted({c.callee for c in fn.calls})
        return edges

    def import_edges(self) -> "dict[str, list[str]]":
        """module → sorted project-internal modules it imports."""
        return {
            name: sorted(info.project_imports)
            for name, info in self.modules.items()
        }

    def resolve_class_ref(self, module: ModuleInfo, text: "str | None") -> "str | None":
        """Class qualname named by annotation ``text`` inside ``module``."""
        if not text:
            return None
        head, _, rest = text.partition(".")
        if not rest:
            if text in module.classes_local:
                return module.classes_local[text].qualname
            dotted = module.context.symbols.attribute_imports.get(text)
            if dotted and dotted in self.classes:
                return dotted
            return None
        root = module.context.symbols.module_imports.get(head, head)
        dotted = f"{root}.{rest}"
        if dotted in self.classes:
            return dotted
        # ``sibling.Class`` where ``sibling`` came in via from-import.
        dotted = module.context.symbols.attribute_imports.get(head)
        if dotted:
            candidate = f"{dotted}.{rest}"
            if candidate in self.classes:
                return candidate
        return None

    def to_json(self) -> dict:
        """The ``--graph`` dump: modules, edges, entries, function count."""
        return {
            "modules": {
                name: {
                    "file": info.file,
                    "imports": sorted(info.project_imports),
                }
                for name, info in sorted(self.modules.items())
            },
            "functions": len(self.functions),
            "call_edges": {
                src: dsts for src, dsts in sorted(self.call_edges().items()) if dsts
            },
            "worker_entries": sorted(self.worker_entries),
            "thread_entries": sorted(self.thread_entries),
        }


def build_project_graph(
    modules: "list[tuple[str, ModuleContext]]",
) -> ProjectGraph:
    """Build the graph over ``(file_name, context)`` pairs (two passes)."""
    graph = ProjectGraph()
    for file, context in modules:
        name = module_name_for(file)
        info = _collect_module(name, file, context)
        # Duplicate dotted names (two loose files with one stem) keep the
        # first, deterministically — inputs arrive in sorted walk order.
        if name not in graph.modules:
            graph.modules[name] = info
        for cls in info.classes_local.values():
            graph.classes[cls.qualname] = cls

    # Resolve import targets now that the project module set is known.
    for info in graph.modules.values():
        resolved_sites = []
        for lineno, col, target in info.import_sites:
            if target not in graph.modules:
                # ``from X import Y`` where Y is an attribute, not a
                # module: fall back to X (itself possibly external).
                parent = target.rpartition(".")[0]
                if parent in graph.modules:
                    target = parent
            resolved_sites.append((lineno, col, target))
            if target in graph.modules and target != info.name:
                info.project_imports.add(target)
        info.import_sites = resolved_sites

    # Resolve class attribute types and register functions.
    for info in graph.modules.values():
        for cls in info.classes_local.values():
            for attr, text in cls.attr_types_raw.items():
                resolved = graph.resolve_class_ref(info, text)
                if resolved:
                    cls.attr_types[attr] = resolved

    # Summarize every function/method body.
    for info in graph.modules.values():
        for fname, node in sorted(info.functions_local.items()):
            summary = _Summarizer(graph, info, node, cls=None).run()
            graph.functions[summary.qualname] = summary
        for cname, cls in sorted(info.classes_local.items()):
            handler = any(b.endswith("HTTPRequestHandler") for b in cls.bases)
            for mname, mnode in sorted(cls.methods.items()):
                summary = _Summarizer(graph, info, mnode, cls=cls).run()
                if handler and mname.startswith("do_"):
                    summary.thread_entry = True
                graph.functions[summary.qualname] = summary

    for qualname, fn in graph.functions.items():
        if fn.worker_entry:
            graph.worker_entries.add(qualname)
        if fn.thread_entry:
            graph.thread_entries.add(qualname)
    return graph


# ---------------------------------------------------------------------------
# pass 2: per-function summarization
# ---------------------------------------------------------------------------

#: descriptor kinds returned by ``_Summarizer._eval``:
#:   ("instance", class_qualname)   a value of a known project class
#:   ("class", class_qualname)      the class object itself
#:   ("func", func_qualname)        a resolvable function/method
#:   ("dotted", "a.b.c")            import-rooted external dotted path
#:   ("param", name)                one of the function's own parameters
#:   ("creation", idx)              an un-derived RNG (index into creations)
#:   ("objattr", cls, attr)         attribute of a known class instance
#:   None                           anything unresolvable


class _Summarizer:
    """Ordered single walk of one function body."""

    def __init__(
        self,
        graph: ProjectGraph,
        minfo: ModuleInfo,
        node: ast.AST,
        cls: "ClassInfo | None",
    ) -> None:
        self.graph = graph
        self.minfo = minfo
        self.node = node
        self.cls = cls
        self.symbols = minfo.context.symbols
        qualname = (
            f"{cls.qualname}.{node.name}" if cls else f"{minfo.name}.{node.name}"
        )
        params = tuple(
            a.arg
            for a in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
        )
        self.fn = FunctionSummary(
            qualname=qualname,
            module=minfo.name,
            file=minfo.file,
            lineno=node.lineno,
            name=node.name,
            params=params,
            cls=cls.qualname if cls else None,
        )
        self.params = set(params)
        self.locals: "set[str]" = set(params)
        self.local_types: "dict[str, str]" = {}
        self.underived: "dict[str, int]" = {}
        self.declared_global: "set[str]" = set()
        self.held: "list[str]" = []
        #: function-local lazy imports, same shape as ModuleSymbols.
        self.local_module_imports: "dict[str, str]" = {}
        self.local_attr_imports: "dict[str, str]" = {}
        self.in_init = cls is not None and node.name == "__init__"
        for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
            resolved = graph.resolve_class_ref(minfo, _annotation_text(arg.annotation))
            if resolved:
                self.local_types[arg.arg] = resolved

    def run(self) -> FunctionSummary:
        mark = _ENTRY_MARK.search(self.minfo.context.line_text(self.node.lineno))
        if mark:
            if mark.group(1) == "worker":
                self.fn.worker_entry = True
            else:
                self.fn.thread_entry = True
        self._visit_stmts(self.node.body)
        return self.fn

    # -- statements ----------------------------------------------------------
    def _visit_stmts(self, body: "list[ast.stmt]") -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs are folded into the parent: their bodies run
            # (eventually) in the parent's context and their calls are
            # the parent's edges for reachability purposes.
            self.locals.add(stmt.name)
            for arg in (
                *stmt.args.posonlyargs,
                *stmt.args.args,
                *stmt.args.kwonlyargs,
            ):
                self.locals.add(arg.arg)
            self._visit_stmts(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            self.locals.add(stmt.name)
        elif isinstance(stmt, ast.Global):
            self.declared_global.update(stmt.names)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._visit_assign(stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._visit_write_target(target)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._bind_target(stmt.target)
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._visit_stmts(stmt.body)
            self._visit_stmts(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self._visit_stmts(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.locals.add(handler.name)
                self._visit_stmts(handler.body)
            self._visit_stmts(stmt.orelse)
            self._visit_stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
            if stmt.cause is not None:
                self._eval(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                self.local_module_imports[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    if alias.name != "*":
                        self.local_attr_imports[alias.asname or alias.name] = (
                            f"{stmt.module}.{alias.name}"
                        )

    def _visit_assign(self, stmt: ast.stmt) -> None:
        value = stmt.value
        vdesc = self._eval(value) if value is not None else None
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                name = target.id
                if name in self.declared_global and self._is_module_mutable(name):
                    self._record_access("module", self.minfo.name, name, True, target)
                self.locals.add(name)
                self.local_types.pop(name, None)
                self.underived.pop(name, None)
                if vdesc is not None:
                    if vdesc[0] == "instance":
                        self.local_types[name] = vdesc[1]
                    elif vdesc[0] == "creation":
                        self.underived[name] = vdesc[1]
                if isinstance(stmt, ast.AnnAssign):
                    resolved = self.graph.resolve_class_ref(
                        self.minfo, _annotation_text(stmt.annotation)
                    )
                    if resolved:
                        self.local_types[name] = resolved
            else:
                self._visit_write_target(target)

    def _bind_target(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.locals.add(node.id)

    def _visit_write_target(self, target: ast.expr) -> None:
        """Record shared-state writes through subscript/attribute targets."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._visit_write_target(element)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            self._eval(target.slice)
            if isinstance(base, ast.Name) and self._is_module_mutable(base.id):
                self._record_access("module", self.minfo.name, base.id, True, target)
                return
            desc = self._eval(base)
            if desc is not None and desc[0] == "objattr":
                _, owner, attr = desc
                self._upgrade_access(owner, attr)
                self._maybe_attr_access(owner, attr, True, target)
            return
        if isinstance(target, ast.Attribute):
            desc = self._eval(target.value)
            if desc is not None and desc[0] == "instance":
                self._maybe_attr_access(desc[1], target.attr, True, target)
            return
        if isinstance(target, ast.Name):
            self.locals.add(target.id)
            return
        self._eval(target)

    def _visit_with(self, stmt: ast.stmt) -> None:
        acquired: "list[str]" = []
        for item in stmt.items:
            key = self._lock_key(item.context_expr)
            if key is not None:
                self.fn.acquisitions.append(
                    Acquisition(
                        key=key,
                        lineno=item.context_expr.lineno,
                        col=item.context_expr.col_offset,
                        held_before=frozenset(self.held),
                    )
                )
                self.held.append(key)
                acquired.append(key)
            else:
                self._eval(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars)
        self._visit_stmts(stmt.body)
        for _ in acquired:
            self.held.pop()

    # -- expression evaluation ----------------------------------------------
    def _eval(self, node: "ast.expr | None"):
        if node is None or isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Name):
            return self._resolve_name(node)
        if isinstance(node, ast.Attribute):
            return self._resolve_attr(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Lambda):
            for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
                self.locals.add(arg.arg)
            self._eval(node.body)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._eval(gen.iter)
                self._bind_target(gen.target)
                for cond in gen.ifs:
                    self._eval(cond)
            if isinstance(node, ast.DictComp):
                self._eval(node.key)
                self._eval(node.value)
            else:
                self._eval(node.elt)
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return None

    def _resolve_name(self, node: ast.Name):
        name = node.id
        if name == "self" and self.cls is not None:
            return ("instance", self.cls.qualname)
        if name in self.underived:
            return ("creation", self.underived[name])
        if name in self.local_types:
            return ("instance", self.local_types[name])
        if name in self.params:
            return ("param", name)
        if self._is_module_mutable(name):
            self._record_access("module", self.minfo.name, name, False, node)
            return None
        if name in self.locals:
            return None
        if name in self.minfo.classes_local:
            return ("class", self.minfo.classes_local[name].qualname)
        if name in self.minfo.functions_local:
            return ("func", f"{self.minfo.name}.{name}")
        dotted = (
            self.local_attr_imports.get(name)
            or self.local_module_imports.get(name)
            or self.symbols.attribute_imports.get(name)
            or self.symbols.module_imports.get(name)
        )
        if dotted:
            return self._classify_dotted(dotted)
        return None

    def _classify_dotted(self, dotted: str):
        if dotted in self.graph.classes:
            return ("class", dotted)
        if dotted in self.graph.functions or self._names_project_function(dotted):
            return ("func", dotted)
        return ("dotted", dotted)

    def _names_project_function(self, dotted: str) -> bool:
        """Whether ``dotted`` is ``<module>.<function>`` of a project module."""
        parent, _, leaf = dotted.rpartition(".")
        info = self.graph.modules.get(parent)
        return bool(info and leaf in info.functions_local)

    def _resolve_attr(self, node: ast.Attribute):
        base = self._eval(node.value)
        attr = node.attr
        if base is None:
            return None
        kind = base[0]
        if kind == "instance":
            cls = self.graph.classes.get(base[1])
            if cls is None:
                return None
            if attr in cls.methods:
                return ("func", f"{cls.qualname}.{attr}")
            if attr in cls.attr_types:
                return ("instance", cls.attr_types[attr])
            if attr in cls.mutable_attrs:
                # Record the read here; consumption sites that turn out
                # to be writes (subscript store, mutating method call)
                # upgrade it via _upgrade_access.
                self._maybe_attr_access(cls.qualname, attr, False, node)
                return ("objattr", cls.qualname, attr)
            if attr in cls.lock_attrs:
                return ("objattr", cls.qualname, attr)
            inherited = self._resolve_base_method(cls, attr)
            if inherited:
                return ("func", inherited)
            return None
        if kind == "class":
            cls = self.graph.classes.get(base[1])
            if cls is not None and attr in cls.methods:
                return ("func", f"{cls.qualname}.{attr}")
            return None
        if kind == "dotted":
            return self._classify_dotted(f"{base[1]}.{attr}")
        if kind == "objattr":
            # method lookup on a tracked container (self._cache.pop):
            # keep identifying the container; the call site classifies
            # the method as mutating or not.
            return base
        if kind in ("param", "creation"):
            # attribute of a tainted value; the caller (a Call node)
            # interprets draw methods, nobody else cares.
            return (f"{kind}attr", base[1], attr)
        return None

    def _resolve_base_method(self, cls: ClassInfo, attr: str) -> "str | None":
        """One level of same-project inheritance (``Base.method``)."""
        minfo = self.graph.modules.get(cls.module)
        if minfo is None:
            return None
        for base_name in cls.bases:
            qual = self.graph.resolve_class_ref(minfo, base_name)
            if qual:
                base_cls = self.graph.classes[qual]
                if attr in base_cls.methods:
                    return f"{qual}.{attr}"
        return None

    # -- calls ---------------------------------------------------------------
    def _eval_call(self, node: ast.Call):
        arg_descs = [self._eval(a) for a in node.args]
        kw_descs = [(kw.arg, self._eval(kw.value)) for kw in node.keywords]
        func = node.func

        self._detect_entry_registration(node, func)

        creation = self._rng_creation(node, func)
        if creation is not None:
            return ("creation", creation)

        # g.append(x) on a module-level mutable: classify before the
        # generic eval path records it as a bare read.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and self._is_module_mutable(func.value.id)
        ):
            self._record_access(
                "module",
                self.minfo.name,
                func.value.id,
                func.attr in _MUTATING_METHODS,
                node,
            )
            return None

        desc = self._eval(func)

        if desc is not None and desc[0] in ("paramattr", "creationattr"):
            _, owner, attr = desc
            if attr in RNG_DRAW_METHODS:
                if desc[0] == "paramattr":
                    self.fn.draws.add(owner)
                else:
                    self.fn.creations[owner].consumed = True
            return None

        if desc is not None and desc[0] == "objattr":
            owner, attr = desc[1], desc[2]
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
            ):
                # self._cache.pop(...): the read recorded during attribute
                # resolution was really a mutation.
                self._upgrade_access(owner, attr)
                self._maybe_attr_access(owner, attr, True, node)
            return None

        if desc is None:
            return None

        if desc[0] == "class":
            cls = self.graph.classes[desc[1]]
            if "__init__" in cls.methods:
                self._record_call(f"{desc[1]}.__init__", node, arg_descs, kw_descs, method=True)
            return ("instance", desc[1])

        if desc[0] == "func":
            qual = desc[1]
            is_method = self._callee_is_method(qual, func)
            self._record_call(qual, node, arg_descs, kw_descs, method=is_method)
            ret = self._return_class(qual)
            if ret:
                return ("instance", ret)
            return None

        if desc[0] == "dotted":
            # plain external call; receiver evaluation above already
            # recorded any shared-state reads among the arguments.
            return None
        return None

    def _callee_is_method(self, qual: str, func: ast.expr) -> bool:
        """Whether the call binds ``self`` implicitly (instance/self calls)."""
        if not isinstance(func, ast.Attribute):
            return False
        cls = qual.rpartition(".")[0]
        if cls not in self.graph.classes:
            return False
        # ``Class.method(x)`` passes self explicitly; ``obj.method(x)``
        # binds it.  Distinguish by the receiver descriptor kind.
        value_desc = self._peek_kind(func.value)
        return value_desc != "class"

    def _peek_kind(self, node: ast.expr) -> "str | None":
        """Descriptor kind of ``node`` without re-recording accesses."""
        if isinstance(node, ast.Name):
            name = node.id
            if name == "self" and self.cls is not None:
                return "instance"
            if name in self.underived:
                return "creation"
            if name in self.local_types:
                return "instance"
            if name in self.params:
                return "param"
            if name in self.locals or self._is_module_mutable(name):
                return None
            if name in self.minfo.classes_local:
                return "class"
            dotted = (
                self.local_attr_imports.get(name)
                or self.symbols.attribute_imports.get(name)
            )
            if dotted and dotted in self.graph.classes:
                return "class"
            return None
        return "instance" if isinstance(node, ast.Attribute) else None

    def _return_class(self, qual: str) -> "str | None":
        """Class qualname named by ``qual``'s return annotation, if any."""
        parent, _, leaf = qual.rpartition(".")
        node = None
        minfo = None
        if parent in self.graph.modules:
            minfo = self.graph.modules[parent]
            node = minfo.functions_local.get(leaf)
        elif parent in self.graph.classes:
            cls = self.graph.classes[parent]
            minfo = self.graph.modules.get(cls.module)
            node = cls.methods.get(leaf)
        if node is None or minfo is None:
            return None
        return self.graph.resolve_class_ref(minfo, _annotation_text(node.returns))

    def _record_call(
        self,
        qual: str,
        node: ast.Call,
        arg_descs: list,
        kw_descs: list,
        method: bool,
    ) -> None:
        self.fn.calls.append(
            CallSite(
                callee=qual,
                lineno=node.lineno,
                col=node.col_offset,
                held=frozenset(self.held),
            )
        )
        callee_params = self._callee_params(qual, skip_self=method)
        pairs: "list[tuple[str, object]]" = []
        for i, desc in enumerate(arg_descs):
            if desc is None or i >= len(callee_params):
                continue
            pairs.append((callee_params[i], desc))
        for kw, desc in kw_descs:
            if kw is not None and desc is not None:
                pairs.append((kw, desc))
        for callee_param, desc in pairs:
            if desc[0] == "param":
                self.fn.forwards.append((desc[1], qual, callee_param))
            elif desc[0] == "creation":
                self.fn.creations[desc[1]].passes.append((qual, callee_param))

    def _callee_params(self, qual: str, skip_self: bool) -> "tuple[str, ...]":
        parent, _, leaf = qual.rpartition(".")
        node = None
        if parent in self.graph.modules:
            node = self.graph.modules[parent].functions_local.get(leaf)
        elif parent in self.graph.classes:
            node = self.graph.classes[parent].methods.get(leaf)
        if node is None:
            return ()
        params = tuple(
            a.arg
            for a in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs)
        )
        if skip_self and params and params[0] in ("self", "cls"):
            return params[1:]
        return params

    # -- RNG creations -------------------------------------------------------
    def _rng_creation(self, node: ast.Call, func: ast.expr) -> "int | None":
        """Register an un-derived RNG construction; returns its index."""
        qualified = self.symbols.qualified(func)
        if qualified is None and isinstance(func, ast.Name):
            qualified = self.local_attr_imports.get(func.id)
        desc = None
        if qualified in ("numpy.random.default_rng", "repro.rng.as_generator") or (
            isinstance(func, ast.Name) and func.id in ("default_rng", "as_generator")
        ):
            label = qualified or func.id
            if not node.args and not node.keywords:
                desc = f"{label}() with no seed"
            elif (
                len(node.args) == 1
                and not node.keywords
                and isinstance(node.args[0], ast.Constant)
            ):
                desc = f"{label}({node.args[0].value!r}) with a constant seed"
        elif qualified == "random.Random":
            if not node.args or (
                len(node.args) == 1 and isinstance(node.args[0], ast.Constant)
            ):
                desc = "random.Random(...) with a constant or absent seed"
        if desc is None:
            return None
        idx = len(self.fn.creations)
        self.fn.creations.append(
            RngCreation(lineno=node.lineno, col=node.col_offset, desc=desc)
        )
        return idx

    # -- entry-point auto-detection ------------------------------------------
    def _detect_entry_registration(self, node: ast.Call, func: ast.expr) -> None:
        # pool.submit(f, ...) / pool.map(f, ...): f runs in a worker.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_SUBMIT_METHODS
            and node.args
        ):
            target = self._entry_target(node.args[0])
            if target:
                self._mark_entry(target, worker=True)
        # Executor(..., initializer=f): f runs in every worker.
        for kw in node.keywords:
            if kw.arg == "initializer":
                target = self._entry_target(kw.value)
                if target:
                    self._mark_entry(target, worker=True)
            elif kw.arg == "target":
                qualified = self.symbols.qualified(func)
                basename = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None
                )
                if qualified == "threading.Thread" or basename in ("Thread", "Timer"):
                    target = self._entry_target(kw.value)
                    if target:
                        self._mark_entry(target, worker=False)

    def _entry_target(self, node: ast.expr) -> "str | None":
        """Function qualname named by an entry-registration argument."""
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.minfo.functions_local:
                return f"{self.minfo.name}.{name}"
            dotted = self.local_attr_imports.get(name) or self.symbols.attribute_imports.get(name)
            if dotted and self._names_project_function(dotted):
                return dotted
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.cls is not None
            and node.attr in self.cls.methods
        ):
            return f"{self.cls.qualname}.{node.attr}"
        if isinstance(node, ast.Attribute):
            dotted = self.symbols.qualified(node)
            if dotted and self._names_project_function(dotted):
                return dotted
        return None

    def _mark_entry(self, qual: str, worker: bool) -> None:
        fn = self.graph.functions.get(qual)
        if fn is not None:
            if worker:
                fn.worker_entry = True
            else:
                fn.thread_entry = True
        # Summaries are built in module order, so the target may not be
        # summarized yet — record on the graph directly as well.
        if worker:
            self.graph.worker_entries.add(qual)
        else:
            self.graph.thread_entries.add(qual)

    # -- shared-state helpers ------------------------------------------------
    def _is_module_mutable(self, name: str) -> bool:
        return (
            name in self.symbols.mutable_globals
            and (name not in self.locals or name in self.declared_global)
        )

    def _record_access(
        self, kind: str, owner: str, attr: str, write: bool, node: ast.AST
    ) -> None:
        self.fn.accesses.append(
            Access(
                kind=kind,
                owner=owner,
                attr=attr,
                write=write,
                lineno=node.lineno,
                col=node.col_offset,
                held=frozenset(self.held),
            )
        )

    def _upgrade_access(self, owner: str, attr: str) -> None:
        """Drop the read just recorded for ``owner.attr`` (it was a write)."""
        if (
            self.fn.accesses
            and self.fn.accesses[-1].owner == owner
            and self.fn.accesses[-1].attr == attr
            and not self.fn.accesses[-1].write
        ):
            self.fn.accesses.pop()

    def _maybe_attr_access(
        self, owner: str, attr: str, write: bool, node: ast.AST
    ) -> None:
        """Record an instance-attribute access (``__init__`` populates freely)."""
        if self.in_init and self.cls is not None and owner == self.cls.qualname:
            return
        cls = self.graph.classes.get(owner)
        if cls is None or attr not in cls.mutable_attrs:
            return
        self._record_access("attr", owner, attr, write, node)

    # -- locks ---------------------------------------------------------------
    def _lock_key(self, expr: ast.expr) -> "str | None":
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.symbols.lock_globals and name not in self.locals:
                return f"{self.minfo.name}.{name}"
            return None
        if isinstance(expr, ast.Attribute):
            desc = self._eval(expr.value)
            if desc is not None and desc[0] == "instance":
                cls = self.graph.classes.get(desc[1])
                if cls is not None and expr.attr in cls.lock_attrs:
                    return f"{cls.qualname}.{expr.attr}"
            elif desc is not None and desc[0] == "dotted":
                # a lock imported from a sibling module: qualify it if the
                # target module declares it as a lock global.
                dotted = f"{desc[1]}.{expr.attr}"
                parent, _, leaf = dotted.rpartition(".")
                info = self.graph.modules.get(parent)
                if info and leaf in info.context.symbols.lock_globals:
                    return dotted
            return None
        return None
