"""Content-hash incremental lint cache and the multiprocess module pass.

The cache file (JSON, default ``.repro-lint-cache.json``) stores, per
linted file, the SHA-256 of its bytes, its import targets, and the
post-suppression module-rule results; plus one *project section* holding
the whole-program rule results keyed on a digest over every file in the
walk.  Both sections are also keyed on a digest of the registered rule
set and the active configuration, so changing a rule or a config flag
busts everything.

Invalidation is transitive through the import graph: when module A's
digest changes, every cached file that imports A (directly or through a
chain) is re-linted too — its module results cannot have changed (module
rules see one file), but its *relationship* to A can, and a stale entry
whose imports no longer exist would pin wrong graph facts.  The project
section is keyed on all digests, so any edit re-runs the whole-program
rules (over re-parsed trees, reusing the per-file module results).

A fully-warm run therefore parses nothing: every per-file entry hits and
the project section hits.  Cache health is observable through the
telemetry counters ``analysis.cache.hits`` / ``analysis.cache.misses``
/ ``analysis.cache.project_hits`` / ``analysis.cache.project_misses``
/ ``analysis.cache.corrupt`` — the incrementality tests assert on these
rather than wall-clock.

A corrupt or unreadable cache file is ignored (counted, never fatal),
and writes are atomic (temp file + ``os.replace``) so a crashed run
cannot tear the file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.suppress import Suppression
from repro.telemetry import counters

__all__ = ["LintCache", "CacheStats", "compute_dirty", "file_digest"]

CACHE_SCHEMA = 1


@dataclass
class CacheStats:
    """What the cache did during one run (mirrored into telemetry)."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0
    project_hit: bool = False
    enabled: bool = False

    def publish(self) -> None:
        if not self.enabled:
            return
        counters.inc("analysis.cache.hits", self.hits)
        counters.inc("analysis.cache.misses", self.misses)
        counters.inc("analysis.cache.invalidated", self.invalidated)
        if self.project_hit:
            counters.inc("analysis.cache.project_hits")
        else:
            counters.inc("analysis.cache.project_misses")


@dataclass
class FileEntry:
    """Cached module-pass results for one file."""

    digest: str
    imports: "list[str]"
    findings: "list[Finding]"
    suppressed: "list[Suppression]"


def file_digest(path: "Path | str") -> "str | None":
    """SHA-256 of the file's bytes (``None`` if unreadable)."""
    try:
        return hashlib.sha256(Path(path).read_bytes()).hexdigest()
    except OSError:
        return None


def _finding_to_json(f: Finding) -> list:
    return [f.file, f.line, f.col, f.rule, f.message, f.severity, f.fingerprint]


def _finding_from_json(row: list) -> Finding:
    return Finding(
        file=row[0],
        line=row[1],
        col=row[2],
        rule=row[3],
        message=row[4],
        severity=row[5],
        fingerprint=row[6],
    )


def _suppression_to_json(s: Suppression) -> list:
    return [s.line, s.rule, s.reason]


def _suppression_from_json(row: list) -> Suppression:
    return Suppression(line=row[0], rule=row[1], reason=row[2])


class LintCache:
    """One cache file: load leniently, serve lookups, write atomically."""

    def __init__(self, path: "Path | str", ruleset_digest: str) -> None:
        self.path = Path(path)
        self.ruleset = ruleset_digest
        self._files: "dict[str, FileEntry]" = {}
        self._project_key: "str | None" = None
        self._project_findings: "list[Finding]" = []
        self._project_suppressed: "list[tuple[str, Suppression]]" = []
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return
        except (OSError, UnicodeDecodeError, json.JSONDecodeError, ValueError):
            counters.inc("analysis.cache.corrupt")
            return
        try:
            if raw.get("schema") != CACHE_SCHEMA or raw.get("ruleset") != self.ruleset:
                return  # a stale rule set busts the whole cache
            for name, entry in raw.get("files", {}).items():
                self._files[name] = FileEntry(
                    digest=entry["digest"],
                    imports=list(entry.get("imports", [])),
                    findings=[_finding_from_json(r) for r in entry.get("findings", [])],
                    suppressed=[
                        _suppression_from_json(r)
                        for r in entry.get("suppressed", [])
                    ],
                )
            project = raw.get("project")
            if project:
                self._project_key = project.get("key")
                self._project_findings = [
                    _finding_from_json(r) for r in project.get("findings", [])
                ]
                self._project_suppressed = [
                    (row[0], _suppression_from_json(row[1]))
                    for row in project.get("suppressed", [])
                ]
        except (KeyError, TypeError, IndexError, AttributeError):
            # Structurally corrupt content: start cold, never crash.
            counters.inc("analysis.cache.corrupt")
            self._files = {}
            self._project_key = None
            self._project_findings = []
            self._project_suppressed = []

    # -- per-file section ----------------------------------------------------
    def lookup(self, name: str, digest: str) -> "FileEntry | None":
        entry = self._files.get(name)
        if entry is not None and entry.digest == digest:
            return entry
        return None

    def cached_names(self) -> "set[str]":
        return set(self._files)

    def imports_of(self, name: str) -> "list[str]":
        entry = self._files.get(name)
        return entry.imports if entry is not None else []

    def store(
        self,
        name: str,
        digest: str,
        imports: "list[str]",
        findings: "list[Finding]",
        suppressed: "list[Suppression]",
    ) -> None:
        self._files[name] = FileEntry(
            digest=digest,
            imports=sorted(imports),
            findings=list(findings),
            suppressed=list(suppressed),
        )

    def drop(self, name: str) -> None:
        self._files.pop(name, None)

    # -- project section -----------------------------------------------------
    def project_lookup(
        self, key: str
    ) -> "tuple[list[Finding], list[tuple[str, Suppression]]] | None":
        if self._project_key == key:
            return list(self._project_findings), list(self._project_suppressed)
        return None

    def project_store(
        self,
        key: str,
        findings: "list[Finding]",
        suppressed: "list[tuple[str, Suppression]]",
    ) -> None:
        self._project_key = key
        self._project_findings = list(findings)
        self._project_suppressed = list(suppressed)

    # -- persistence ---------------------------------------------------------
    def save(self) -> None:
        """Write the cache atomically; failures are silent (it's a cache)."""
        payload = {
            "schema": CACHE_SCHEMA,
            "ruleset": self.ruleset,
            "files": {
                name: {
                    "digest": entry.digest,
                    "imports": entry.imports,
                    "findings": [_finding_to_json(f) for f in entry.findings],
                    "suppressed": [
                        _suppression_to_json(s) for s in entry.suppressed
                    ],
                }
                for name, entry in sorted(self._files.items())
            },
            "project": {
                "key": self._project_key,
                "findings": [_finding_to_json(f) for f in self._project_findings],
                "suppressed": [
                    [name, _suppression_to_json(s)]
                    for name, s in self._project_suppressed
                ],
            },
        }
        text = json.dumps(payload, sort_keys=True)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.fspath(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                # repro: allow[IO001] cache file, not a result artifact; written atomically via os.replace below
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                os.replace(tmp, self.path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:  # repro: allow[EXC001] best-effort cache write; next run starts cold
            pass


def compute_dirty(
    files: "list[tuple[Path, str]]",
    digests: "dict[str, str | None]",
    cache: LintCache,
) -> "tuple[set[str], int]":
    """Files needing a fresh module pass, with transitive invalidation.

    Returns ``(dirty file names, transitively-invalidated count)``.  A
    file is directly dirty when its digest misses the cache; dirtiness
    then propagates backwards along cached import edges (if A changed,
    everything importing A re-lints) until a fixed point.
    """
    from repro.analysis.graph import module_name_for

    module_of: "dict[str, str]" = {}
    for _path, name in files:
        module_of[name] = module_name_for(name)

    dirty: "set[str]" = set()
    for _path, name in files:
        digest = digests.get(name)
        if digest is None or cache.lookup(name, digest) is None:
            dirty.add(name)
    # Files that vanished from the walk invalidate their importers too.
    walked = {name for _p, name in files}
    gone_modules = {
        module_name_for(name)
        for name in cache.cached_names() - walked
    }

    dirty_modules = {module_of[n] for n in dirty} | gone_modules
    invalidated = 0
    changed = True
    while changed:
        changed = False
        for _path, name in files:
            if name in dirty:
                continue
            for target in cache.imports_of(name):
                if (
                    target in dirty_modules
                    or target.rpartition(".")[0] in dirty_modules
                ):
                    dirty.add(name)
                    dirty_modules.add(module_of[name])
                    invalidated += 1
                    changed = True
                    break
    return dirty, invalidated


# ---------------------------------------------------------------------------
# the multiprocess module pass
# ---------------------------------------------------------------------------

_POOL_CONFIG = None


def _pool_init(config) -> None:
    global _POOL_CONFIG
    # repro: allow[SPAWN001] pool initializer installs the config once per worker before any file is linted
    _POOL_CONFIG = config


def _pool_lint_one(item: "tuple[str, str]"):
    """Worker body: lint one file under the installed config."""
    from repro.analysis.runner import lint_one_file

    path, name = item
    return lint_one_file(Path(path), name, _POOL_CONFIG)


def run_module_pass(files, config, jobs: int):
    """Run the module pass over ``files``; returns results in walk order.

    ``jobs > 1`` fans the per-file work out over a process pool; any
    failure to build the pool (sandboxes, exotic platforms) degrades to
    the serial path.  Results are merged back in input order, so the
    output is byte-identical to a serial run.
    """
    from repro.analysis.runner import lint_one_file

    if jobs > 1 and len(files) > 1:
        import multiprocessing

        try:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            ctx = multiprocessing.get_context(method)
            with ctx.Pool(
                processes=min(jobs, len(files)),
                initializer=_pool_init,
                initargs=(config,),
            ) as pool:
                items = [(os.fspath(path), name) for path, name in files]
                return pool.map(_pool_lint_one, items, chunksize=4)
        except (OSError, PermissionError, ValueError, ImportError):
            counters.inc("analysis.pool_fallback_serial")
    return [lint_one_file(path, name, config) for path, name in files]
