"""Per-rule enable/severity/path configuration for the linter.

The default configuration encodes the repo's reproducibility contract:
which files are the *blessed homes* of otherwise-forbidden constructs
(``rng.py`` for RNG construction, ``engine/context.py``,
``forest/_cgrower.py`` and ``service/config.py`` for environment reads,
``engine/store.py`` for raw file writes, the telemetry/progress modules
for wall clocks) and
which trees are harness code where a rule does not apply (tests and
benchmarks may read clocks and environment variables; tests may write
scratch files and use free-form telemetry names).

Path patterns are :mod:`fnmatch` globs matched against ``"/" + path``
with ``/`` separators, so ``*/repro/rng.py`` matches that file at any
depth and regardless of the lint root.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from pathlib import PurePath
from typing import Mapping

from repro.analysis.findings import SEVERITIES, LintUsageError

__all__ = [
    "RuleConfig",
    "LintConfig",
    "default_config",
    "permissive_config",
    "path_matches",
    "DEFAULT_EXCLUDES",
]

#: Trees the default walk skips entirely.  ``tests/fixtures`` holds the
#: deliberately-violating lint fixture package.
DEFAULT_EXCLUDES: tuple[str, ...] = (
    "*/tests/fixtures/*",
    "*/_cbuild/*",
    "*/.git/*",
    "*/__pycache__/*",
)


def path_matches(path: "str | PurePath", patterns: "tuple[str, ...]") -> bool:
    """Whether ``path`` matches any pattern (see module docstring)."""
    p = "/" + PurePath(path).as_posix().lstrip("/")
    return any(fnmatch(p, pattern) for pattern in patterns)


@dataclass(frozen=True)
class RuleConfig:
    """How one rule runs: on/off, its severity, and where it is waived.

    ``allow_paths`` are glob patterns naming files where the rule never
    fires — the contract's designated homes for the construct, plus
    harness trees where it does not apply.
    """

    enabled: bool = True
    severity: str = "error"
    allow_paths: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise LintUsageError(
                f"unknown severity {self.severity!r}; choose from {SEVERITIES}"
            )


@dataclass(frozen=True)
class LintConfig:
    """The full lint run configuration: per-rule settings plus excludes."""

    rules: "Mapping[str, RuleConfig]" = field(default_factory=dict)
    exclude: tuple[str, ...] = DEFAULT_EXCLUDES

    def rule(self, rule_id: str) -> RuleConfig:
        """Settings for ``rule_id`` (library default when unconfigured)."""
        return self.rules.get(rule_id, RuleConfig())

    def with_overrides(
        self,
        select: "tuple[str, ...] | None" = None,
        disable: tuple[str, ...] = (),
        severities: "Mapping[str, str] | None" = None,
    ) -> "LintConfig":
        """Apply CLI-style overrides; unknown rule ids raise."""
        from repro.analysis.rules import known_rule_ids

        known = known_rule_ids()
        for rule_id in (*(select or ()), *disable, *(severities or {})):
            if rule_id not in known:
                raise LintUsageError(
                    f"unknown rule id {rule_id!r} (known: {', '.join(known)})"
                )
        rules = dict(self.rules)
        for rule_id in known:
            cfg = rules.get(rule_id, RuleConfig())
            if select is not None:
                cfg = replace(cfg, enabled=rule_id in select)
            if rule_id in disable:
                cfg = replace(cfg, enabled=False)
            if severities and rule_id in severities:
                cfg = replace(cfg, severity=severities[rule_id])
            rules[rule_id] = cfg
        return replace(self, rules=rules)


def default_config() -> LintConfig:
    """The repo's reproducibility contract (see module docstring)."""
    harness = ("*/tests/*", "*/benchmarks/*", "*/examples/*")
    return LintConfig(
        rules={
            "DET001": RuleConfig(allow_paths=("*/repro/rng.py",)),
            "DET002": RuleConfig(
                allow_paths=(
                    "*/repro/telemetry/*",
                    "*/repro/engine/progress.py",
                    *harness,
                )
            ),
            "DET003": RuleConfig(),
            "DET004": RuleConfig(
                allow_paths=(
                    "*/repro/engine/context.py",
                    "*/repro/forest/_cgrower.py",
                    "*/repro/service/config.py",
                    *harness,
                )
            ),
            "SPAWN001": RuleConfig(
                # engine/shm.py is the blessed home of the worker-side
                # shared-memory manifest: installed once per process by
                # the pool initializer before any job runs.
                allow_paths=("*/repro/engine/shm.py",)
            ),
            "SHM001": RuleConfig(),
            "TEL001": RuleConfig(allow_paths=harness),
            "IO001": RuleConfig(
                allow_paths=("*/repro/engine/store.py", *harness)
            ),
            "EXC001": RuleConfig(),
            # rng.py is where underived generators are *made* — every
            # construction inside it would otherwise be its own source.
            "FLOW001": RuleConfig(allow_paths=("*/repro/rng.py", *harness)),
            "FLOW002": RuleConfig(allow_paths=harness),
            "RACE001": RuleConfig(allow_paths=harness),
            "RACE002": RuleConfig(allow_paths=harness),
            "ARCH001": RuleConfig(allow_paths=harness),
        },
    )


def permissive_config() -> LintConfig:
    """Every rule on everywhere: no allowlists, no excludes.

    This is what the fixture tests run, so seeded violations fire even
    though the fixture package lives under ``tests/fixtures/``.
    """
    return LintConfig(rules={}, exclude=())
