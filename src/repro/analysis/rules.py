"""The rule registry: id → (summary, rationale, checker, scope).

Checkers register themselves with the :func:`rule` (per-module) or
:func:`project_rule` (whole-program) decorator; duplicate ids are
rejected loudly (the same hygiene the strategy/benchmark registries
enforce — a silently shadowed rule would lint nothing while claiming
coverage).

A module-scope checker is a callable taking a
:class:`~repro.analysis.symbols.ModuleContext` and yielding
``(lineno, col, message)`` triples.  A project-scope checker takes the
:class:`~repro.analysis.graph.ProjectGraph` built over the whole walk
and yields ``(file, lineno, col, message)`` — it sees every module at
once, which is what the FLOW/RACE/ARCH families need.

Checker docstrings carry the ``Violating::`` / ``Clean::`` example
blocks that ``repro lint --explain RULE`` renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.symbols import ModuleContext

__all__ = [
    "Rule",
    "rule",
    "project_rule",
    "all_rules",
    "module_rules",
    "project_rules",
    "get_rule",
    "known_rule_ids",
]

Checker = Callable[[ModuleContext], Iterable[tuple]]

_RULES: "dict[str, Rule]" = {}


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, human rationale, checker, and scope."""

    id: str
    summary: str
    rationale: str
    checker: Checker
    scope: str = "module"

    def run(self, module: ModuleContext) -> "list[tuple[int, int, str]]":
        """Raw ``(line, col, message)`` hits of this module rule on one file."""
        return list(self.checker(module))

    def run_project(self, graph) -> "list[tuple[str, int, int, str]]":
        """Raw ``(file, line, col, message)`` hits of this project rule."""
        return list(self.checker(graph))


def _register(rule_id: str, summary: str, rationale: str, scope: str):
    def register(checker: Checker) -> Checker:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        # repro: allow[SPAWN001] rule registry populated by decorators at import time
        _RULES[rule_id] = Rule(
            id=rule_id,
            summary=summary,
            rationale=rationale,
            checker=checker,
            scope=scope,
        )
        return checker

    return register


def rule(rule_id: str, summary: str, rationale: str = "") -> "Callable[[Checker], Checker]":
    """Decorator registering a per-module ``checker`` under ``rule_id``.

    Re-registering an id raises — rule ids are part of the suppression
    and baseline contract and must stay unambiguous.
    """
    return _register(rule_id, summary, rationale, "module")


def project_rule(
    rule_id: str, summary: str, rationale: str = ""
) -> "Callable[[Checker], Checker]":
    """Decorator registering a whole-program ``checker`` under ``rule_id``."""
    return _register(rule_id, summary, rationale, "project")


def all_rules() -> "tuple[Rule, ...]":
    """Every registered rule, sorted by id."""
    _ensure_loaded()
    return tuple(_RULES[k] for k in sorted(_RULES))


def module_rules() -> "tuple[Rule, ...]":
    """The per-module rules, sorted by id."""
    return tuple(r for r in all_rules() if r.scope == "module")


def project_rules() -> "tuple[Rule, ...]":
    """The whole-program rules, sorted by id."""
    return tuple(r for r in all_rules() if r.scope == "project")


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id (:class:`KeyError` on unknown ids)."""
    _ensure_loaded()
    return _RULES[rule_id]


def known_rule_ids() -> "tuple[str, ...]":
    """Sorted ids of every registered rule."""
    _ensure_loaded()
    return tuple(sorted(_RULES))


def ruleset_digest_parts() -> "tuple[str, ...]":
    """Stable description of the registered rule set, for the cache key."""
    _ensure_loaded()
    return tuple(
        f"{r.id}\x1f{r.scope}\x1f{r.summary}\x1f{r.rationale}"
        for r in all_rules()
    )


def _ensure_loaded() -> None:
    # Import for the side effect of registration; deferred to avoid the
    # checkers ↔ registry import cycle.
    import repro.analysis.checkers  # noqa: F401
    import repro.analysis.graph_rules  # noqa: F401
