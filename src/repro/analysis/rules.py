"""The rule registry: id → (summary, rationale, checker).

Checkers register themselves with the :func:`rule` decorator; duplicate
ids are rejected loudly (the same hygiene the strategy/benchmark
registries enforce — a silently shadowed rule would lint nothing while
claiming coverage).  A checker is a callable taking a
:class:`~repro.analysis.symbols.ModuleContext` and yielding
``(lineno, col, message)`` triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.analysis.symbols import ModuleContext

__all__ = ["Rule", "rule", "all_rules", "get_rule", "known_rule_ids"]

Checker = Callable[[ModuleContext], Iterable[tuple]]

_RULES: "dict[str, Rule]" = {}


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, human rationale, and its checker."""

    id: str
    summary: str
    rationale: str
    checker: Checker

    def run(self, module: ModuleContext) -> "list[tuple[int, int, str]]":
        """Raw ``(line, col, message)`` hits of this rule on one module."""
        return list(self.checker(module))


def rule(rule_id: str, summary: str, rationale: str = "") -> "Callable[[Checker], Checker]":
    """Decorator registering ``checker`` under ``rule_id``.

    Re-registering an id raises — rule ids are part of the suppression
    and baseline contract and must stay unambiguous.
    """

    def register(checker: Checker) -> Checker:
        if rule_id in _RULES:
            raise ValueError(f"lint rule {rule_id!r} is already registered")
        # repro: allow[SPAWN001] rule registry populated by decorators at import time
        _RULES[rule_id] = Rule(
            id=rule_id, summary=summary, rationale=rationale, checker=checker
        )
        return checker

    return register


def all_rules() -> "tuple[Rule, ...]":
    """Every registered rule, sorted by id."""
    _ensure_loaded()
    return tuple(_RULES[k] for k in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id (:class:`KeyError` on unknown ids)."""
    _ensure_loaded()
    return _RULES[rule_id]


def known_rule_ids() -> "tuple[str, ...]":
    """Sorted ids of every registered rule."""
    _ensure_loaded()
    return tuple(sorted(_RULES))


def _ensure_loaded() -> None:
    # Import for the side effect of registration; deferred to avoid the
    # checkers ↔ registry import cycle.
    import repro.analysis.checkers  # noqa: F401
