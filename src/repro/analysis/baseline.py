"""Committed baseline of grandfathered findings.

A baseline lets the lint gate land before every historical finding is
fixed: findings whose ``(file, rule, fingerprint)`` appear in the
baseline are reported as *baselined* and do not fail the run.  Two hard
rules keep the mechanism honest:

* **Determinism may not be grandfathered.**  ``DET*`` and ``SPAWN*``
  entries are rejected at both load and write time — a determinism
  violation is fixed or inline-suppressed with a reason, never waved
  through silently.
* Fingerprints are content-addressed (file, rule, offending line text,
  occurrence index), so a baselined finding stays matched across
  unrelated edits and un-matches the moment the offending code changes.

The committed file is ``lint-baseline.json`` at the repo root; the
shipped tree needs no entries.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.analysis.findings import Finding, LintUsageError

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "NON_BASELINABLE_PREFIXES",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_SCHEMA_VERSION = 1

#: Rule-id prefixes that may never appear in a baseline.
NON_BASELINABLE_PREFIXES = ("DET", "SPAWN")


def _refuse_non_baselinable(rule_id: str, origin: str) -> None:
    if rule_id.startswith(NON_BASELINABLE_PREFIXES):
        raise LintUsageError(
            f"{origin}: determinism rule {rule_id} may not be baselined; "
            "fix the finding or add an inline 'repro: allow' with a reason"
        )


def load_baseline(path: str) -> "set[tuple[str, str, str]]":
    """Parse a baseline file into ``{(file, rule, fingerprint)}``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise LintUsageError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintUsageError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if payload.get("schema") != BASELINE_SCHEMA_VERSION:
        raise LintUsageError(
            f"baseline {path!r} has schema {payload.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA_VERSION}"
        )
    entries: "set[tuple[str, str, str]]" = set()
    for entry in payload.get("findings", []):
        rule_id = str(entry["rule"])
        _refuse_non_baselinable(rule_id, f"baseline {path}")
        entries.add((str(entry["file"]), rule_id, str(entry["fingerprint"])))
    return entries


def write_baseline(path: str, findings: "list[Finding]") -> int:
    """Write the baseline for ``findings``; returns how many were recorded.

    Refuses ``DET*``/``SPAWN*`` findings outright — callers must fix
    those first.  The write is atomic (temp file + ``os.replace``) so a
    crash cannot leave a torn baseline.
    """
    for finding in findings:
        _refuse_non_baselinable(finding.rule, "write-baseline")
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "comment": (
            "Grandfathered lint findings; DET*/SPAWN* determinism rules "
            "may not appear here. Regenerate with: repro lint --write-baseline"
        ),
        "findings": [
            {"file": f.file, "rule": f.rule, "fingerprint": f.fingerprint}
            for f in sorted(findings)
        ],
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-baseline-")
    try:
        # repro: allow[IO001] atomic tmp+fsync+os.replace, mirroring engine/store.py; importing it would drag numpy into the dependency-free linter
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        # repro: allow[EXC001] best-effort temp cleanup; original error re-raised
        except OSError:
            pass
        raise
    return len(payload["findings"])


def apply_baseline(
    findings: "list[Finding]", baseline: "set[tuple[str, str, str]]"
) -> "tuple[list[Finding], list[Finding]]":
    """Split findings into ``(kept, baselined)``."""
    kept: "list[Finding]" = []
    baselined: "list[Finding]" = []
    for finding in findings:
        if (finding.file, finding.rule, finding.fingerprint) in baseline:
            baselined.append(finding)
        else:
            kept.append(finding)
    return kept, baselined
