"""Finding records and stable fingerprints.

A :class:`Finding` is one rule violation at one source location.  Its
``fingerprint`` is content-addressed — a short SHA-256 over the file
name, the rule id, the *text* of the offending line, and an occurrence
index — so a committed baseline keeps matching a finding when unrelated
edits shift its line number, and stops matching the moment the offending
code itself changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

__all__ = ["Finding", "LintUsageError", "fingerprint", "SEVERITIES"]

#: Recognised severities, strongest first.  ``error`` findings fail the
#: run (exit code 1); ``warning`` findings are reported but do not.
SEVERITIES = ("error", "warning")


class LintUsageError(Exception):
    """A configuration or invocation problem (exit code 2, not a finding)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``file:line:col``."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"
    fingerprint: str = field(default="", compare=False)

    def render(self) -> str:
        """The canonical one-line form: ``file:line:col rule message``."""
        return f"{self.file}:{self.line}:{self.col} {self.rule} {self.message}"

    def with_fingerprint(self, source_line: str, index: int) -> "Finding":
        """Copy of this finding carrying its content fingerprint."""
        return replace(
            self, fingerprint=fingerprint(self.file, self.rule, source_line, index)
        )


def fingerprint(file: str, rule: str, source_line: str, index: int) -> str:
    """Line-number-independent identity of one finding.

    ``index`` disambiguates repeated identical lines in the same file
    (the n-th occurrence keeps the n-th fingerprint).
    """
    payload = "\x1f".join((file, rule, source_line.strip(), str(index)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
