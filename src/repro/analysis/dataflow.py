"""A small fixed-point engine over the project call graph.

The whole-program rules (see :mod:`repro.analysis.graph_rules`) all
reduce to propagating simple facts along call edges until nothing
changes — which functions can execute inside a pool worker, which
parameters ultimately feed RNG draws, which locks are held on every
thread path into a function.  :func:`fixed_point` is the one worklist
loop they share; the lattices differ only in their ``join``.

Facts are compared with ``==`` and must be hashable-free plain values
(bools, frozensets, ``None``); ``transfer`` callbacks let an edge modify
the fact in flight (e.g. a call site inside ``with self._lock`` adds
that lock to the callee's entry fact).  The iteration order is
deterministic — sorted seeds, sorted successor expansion — so two runs
over the same graph produce identical results, which the byte-identical
``--jobs N`` contract relies on.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

__all__ = ["fixed_point", "reachable", "union_join", "intersect_join", "or_join"]

#: Sentinel distinguishing "no fact yet" from a legitimate ``None`` fact.
_MISSING = object()

Edge = "tuple[Hashable, Callable | None]"


def fixed_point(
    seeds: "Mapping[Hashable, object]",
    edges: "Mapping[Hashable, Iterable[Edge]]",
    join: "Callable[[object, object], object]",
) -> "dict[Hashable, object]":
    """Propagate ``seeds`` along ``edges`` until the facts stabilise.

    ``edges`` maps a source node to ``(destination, transfer)`` pairs;
    ``transfer(fact)`` (identity when ``None``) is the edge's
    contribution to the destination, merged into the destination's
    current fact with ``join``.  A destination with no fact yet adopts
    the contribution unchanged — so ``join`` never sees the implicit
    bottom and each lattice can pick its own (union and intersection
    need different bottoms, which the sentinel sidesteps).

    Termination is the caller's contract: ``join`` must be monotone over
    a finite lattice (all uses here are boolean or finite lock/function
    sets).
    """
    facts: "dict[Hashable, object]" = dict(seeds)
    work = sorted(facts, key=repr)
    while work:
        node = work.pop()
        fact = facts[node]
        for dst, transfer in sorted(edges.get(node, ()), key=repr):
            contribution = transfer(fact) if transfer is not None else fact
            current = facts.get(dst, _MISSING)
            merged = (
                contribution if current is _MISSING else join(current, contribution)
            )
            if current is _MISSING or merged != current:
                facts[dst] = merged
                work.append(dst)
    return facts


def reachable(
    seeds: "Iterable[Hashable]",
    successors: "Mapping[Hashable, Iterable[Hashable]]",
) -> "set[Hashable]":
    """Transitive closure of ``seeds`` over the ``successors`` relation."""
    facts = fixed_point(
        {seed: True for seed in seeds},
        {src: tuple((dst, None) for dst in dsts) for src, dsts in successors.items()},
        or_join,
    )
    return {node for node, fact in facts.items() if fact}


def union_join(a: frozenset, b: frozenset) -> frozenset:
    """May-analysis join: a fact holds if it holds on *any* path."""
    return a | b


def intersect_join(a: frozenset, b: frozenset) -> frozenset:
    """Must-analysis join: a fact holds only if it holds on *every* path."""
    return a & b


def or_join(a: bool, b: bool) -> bool:
    """Boolean reachability join."""
    return a or b
