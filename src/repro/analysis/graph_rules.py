"""Whole-program rules over the project graph: FLOW001, RACE001/002, ARCH001.

These run once per lint invocation (not per file) against the
:class:`~repro.analysis.graph.ProjectGraph`, using the fixed-point
engine in :mod:`repro.analysis.dataflow` for the interprocedural parts:

* **FLOW001** — an RNG constructed without derivation (``default_rng()``
  with no or a constant seed, ``as_generator(None)``) is *consumed* —
  drawn from locally, or passed into a parameter that some callee
  transitively draws from — inside code reachable from a worker entry
  point.  Such draws make worker results depend on scheduling order.
* **RACE001** — lock-scoped shared state (module-level mutables, or
  mutable attributes of a lock-owning class) is accessed on a
  thread-reachable path without the guarding lock held — neither
  syntactically (enclosing ``with``) nor on every call path into the
  function (must-hold dataflow).
* **RACE002** — two locks are acquired in both nesting orders anywhere
  in the program (may-hold dataflow supplies locks held at function
  entry).  Inconsistent order is a latent deadlock even if today's
  schedules never interleave.
* **ARCH001** — the layering contract: an import whose source layer
  forbids the target layer.  The contract is the table below
  (mirrored in DESIGN.md §2k).

The layer of a module is the first dotted segment after its root
package (``repro.engine.store`` → ``engine``); the contract applies to
imports whose target shares the importer's root package (or targets
``repro.*``, so fixtures exercise the rule too).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.dataflow import fixed_point, intersect_join, reachable, union_join
from repro.analysis.graph import Access, ProjectGraph
from repro.analysis.rules import project_rule

__all__ = ["LAYER_CONTRACT", "layer_of"]

Hit = "tuple[str, int, int, str]"

#: Layers whose job is modeling/search — pure functions of their inputs.
#: None of them may know about execution, serving, or orchestration.
_MODEL_FORBIDS = ("engine", "service", "experiments", "api", "cli", "analysis")

#: layer → {"forbid": layers it must not import, "allow": exceptions to "*"}.
#: ``"*"`` forbids every project layer except the module's own and the
#: explicit allow list — the shape used for leaf utility layers.
LAYER_CONTRACT: "dict[str, dict[str, tuple[str, ...]]]" = {
    # leaf utilities: importable from anywhere, import (almost) nothing
    "_version": {"forbid": ("*",), "allow": ()},
    "rng": {"forbid": ("*",), "allow": ()},
    "envelope": {"forbid": ("*",), "allow": ()},
    "registry": {"forbid": ("*",), "allow": ()},
    "telemetry": {"forbid": ("*",), "allow": ("_version",)},
    # the linter itself: pure stdlib + counters for its cache stats
    "analysis": {"forbid": ("*",), "allow": ("telemetry",)},
    # modeling/search layers
    "workloads": {"forbid": _MODEL_FORBIDS},
    "forest": {"forbid": _MODEL_FORBIDS},
    "gp": {"forbid": _MODEL_FORBIDS},
    "surrogate": {"forbid": _MODEL_FORBIDS},
    "sampling": {"forbid": _MODEL_FORBIDS},
    "space": {"forbid": _MODEL_FORBIDS},
    "noise": {"forbid": _MODEL_FORBIDS},
    "kernels": {"forbid": _MODEL_FORBIDS},
    "apps": {"forbid": _MODEL_FORBIDS},
    "costmodel": {"forbid": _MODEL_FORBIDS},
    "machine": {"forbid": _MODEL_FORBIDS},
    "metrics": {"forbid": _MODEL_FORBIDS},
    "tuning": {"forbid": _MODEL_FORBIDS},
    "active": {"forbid": _MODEL_FORBIDS},
    "transfer": {"forbid": _MODEL_FORBIDS},
    # execution and serving: may use the layers above, not each other
    # upward — the service reaches the learner via active/surrogate
    # protocols, never the forest/gp internals.
    "engine": {"forbid": ("service", "api", "cli", "analysis")},
    "service": {"forbid": ("forest", "gp", "api", "cli", "analysis")},
    "experiments": {"forbid": ("service", "api", "cli", "analysis")},
}


def layer_of(module: str) -> str:
    """Architectural layer of a dotted module name (see module docstring)."""
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


def _call_edges_with_locks(graph: ProjectGraph):
    """Call edges whose transfer adds the locks held at the call site."""
    edges: "dict[str, list]" = {}
    for qual, fn in graph.functions.items():
        out = []
        for site in fn.calls:
            if site.callee not in graph.functions:
                continue

            def add_site_locks(fact, _extra=site.held):
                return fact | _extra

            out.append((site.callee, add_site_locks))
        edges[qual] = out
    return edges


def _scope_locks(graph: ProjectGraph, access: Access) -> "frozenset[str]":
    """The lock keys that could legitimately guard ``access``."""
    if access.kind == "module":
        info = graph.modules.get(access.owner)
        if info is None:
            return frozenset()
        return frozenset(
            f"{access.owner}.{name}"
            for name in info.context.symbols.lock_globals
        )
    cls = graph.classes.get(access.owner)
    if cls is None:
        return frozenset()
    return frozenset(f"{access.owner}.{attr}" for attr in cls.lock_attrs)


@project_rule(
    "FLOW001",
    "un-derived RNG consumed on a worker-reachable path",
    "Results must be a pure function of the job key; a Generator built "
    "from nothing (or a constant) and drawn from inside worker-reachable "
    "code makes outputs depend on scheduling and call order.  Derive "
    "every stream with repro.rng.derive/spawn from the job key.",
)
def check_flow001(graph: ProjectGraph) -> Iterator[Hit]:
    """Violating::

        def prepare(job):           # repro: worker-entry
            rng = np.random.default_rng()   # or default_rng(0)
            return rng.normal()

    Clean::

        def prepare(job):           # repro: worker-entry
            rng = derive(job.seed, "prepare")
            return rng.normal()
    """
    edges = graph.call_edges()
    worker = reachable(sorted(graph.worker_entries), edges)
    # (function, param) consumes-RNG lattice, propagated backwards over
    # parameter forwards: if callee draws from q and f forwards p → q,
    # then f consumes p.
    seeds = {}
    consume_edges: "dict[tuple, list]" = {}
    for qual, fn in graph.functions.items():
        for param in fn.draws:
            seeds[(qual, param)] = True
        for own_param, callee, callee_param in fn.forwards:
            consume_edges.setdefault((callee, callee_param), []).append(
                ((qual, own_param), None)
            )
    consumes = fixed_point(seeds, consume_edges, lambda a, b: a or b)

    for qual in sorted(worker):
        fn = graph.functions.get(qual)
        if fn is None:
            continue
        for creation in fn.creations:
            used = creation.consumed or any(
                consumes.get((callee, param), False)
                for callee, param in creation.passes
            )
            if not used:
                continue
            yield (
                fn.file,
                creation.lineno,
                creation.col,
                f"un-derived RNG ({creation.desc}) is consumed on a "
                f"worker-reachable path (via {qual}); derive it from the "
                "job key with repro.rng.derive/spawn",
            )


@project_rule(
    "RACE001",
    "shared state accessed on a thread-reachable path without its lock",
    "Under ThreadingHTTPServer every route handler runs concurrently; "
    "module-level mutables and the mutable attributes of lock-owning "
    "classes must be touched with the guarding lock held — either in an "
    "enclosing 'with', or on every call path into the function.",
)
def check_race001(graph: ProjectGraph) -> Iterator[Hit]:
    """Violating::

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}
            def put(self, k, v):        # repro: thread-entry
                self._items[k] = v      # lock exists but is not held

    Clean::

        def put(self, k, v):            # repro: thread-entry
            with self._lock:
                self._items[k] = v
    """
    # Must-hold: a lock is held at function entry iff it is held at
    # *every* thread-reachable call site.  Seeding only thread entries
    # confines the analysis to thread-reachable code.
    must = fixed_point(
        {entry: frozenset() for entry in sorted(graph.thread_entries)},
        _call_edges_with_locks(graph),
        intersect_join,
    )
    for qual in sorted(must):
        fn = graph.functions.get(qual)
        if fn is None:
            continue
        entry_held = must[qual]
        for access in fn.accesses:
            held = access.held | entry_held
            scope = _scope_locks(graph, access)
            if held & scope:
                continue
            if not access.write and not scope:
                # reads of never-locked state are per-process caches;
                # SPAWN001 already polices their writes.
                continue
            state = f"{access.owner}.{access.attr}"
            verb = "written" if access.write else "read"
            guard = (
                " or ".join(f"'with {k.rsplit('.', 1)[1]}'" for k in sorted(scope))
                if scope
                else "a lock"
            )
            yield (
                fn.file,
                access.lineno,
                access.col,
                f"shared state {state} {verb} on a thread-reachable path "
                f"(via {qual}) without holding {guard}",
            )


@project_rule(
    "RACE002",
    "locks acquired in inconsistent order across the program",
    "Two locks taken in both nesting orders deadlock the moment two "
    "threads interleave the orders; every pair of locks must have one "
    "global acquisition order.",
)
def check_race002(graph: ProjectGraph) -> Iterator[Hit]:
    """Violating::

        def a():
            with _x:
                with _y: ...
        def b():
            with _y:
                with _x: ...

    Clean::

        def a():
            with _x:
                with _y: ...
        def b():
            with _x:
                with _y: ...
    """
    # May-hold: locks possibly held at entry, from *any* call site.
    may = fixed_point(
        {qual: frozenset() for qual in sorted(graph.functions)},
        _call_edges_with_locks(graph),
        union_join,
    )
    #: (outer, inner) → earliest witness site of that nesting order.
    pairs: "dict[tuple[str, str], tuple[str, int, int]]" = {}
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        entry = may.get(qual, frozenset())
        for acq in fn.acquisitions:
            for outer in acq.held_before | entry:
                if outer == acq.key:
                    continue  # re-entrant RLock nesting is order-safe
                witness = (fn.file, acq.lineno, acq.col)
                pair = (outer, acq.key)
                if pair not in pairs or witness < pairs[pair]:
                    pairs[pair] = witness
    for a, b in sorted(pairs):
        if a >= b or (b, a) not in pairs:
            continue
        w_ab, w_ba = pairs[(a, b)], pairs[(b, a)]
        site, other = max(w_ab, w_ba), min(w_ab, w_ba)
        yield (
            site[0],
            site[1],
            site[2],
            f"locks {a} and {b} are acquired in both nesting orders "
            f"(the opposite order is at {other[0]}:{other[1]}); pick one "
            "global acquisition order",
        )


@project_rule(
    "ARCH001",
    "import violates the layering contract",
    "The dependency direction is part of the reproduction's design: "
    "model layers (workloads/forest/gp/surrogate/...) are pure functions "
    "importable by anything but importing no execution or serving code; "
    "the service reaches the learner only through active/surrogate "
    "protocols, never forest/gp internals.  See DESIGN.md §2k for the "
    "full layer table.",
)
def check_arch001(graph: ProjectGraph) -> Iterator[Hit]:
    """Violating::

        # in repro/workloads/kernel.py
        from repro.engine.executor import execute_job

    Clean::

        # in repro/workloads/kernel.py
        from repro.rng import derive
    """
    for name in sorted(graph.modules):
        if "." not in name:
            continue  # loose top-level files have no layer position
        info = graph.modules[name]
        source_layer = layer_of(name)
        contract = LAYER_CONTRACT.get(source_layer)
        if contract is None:
            continue
        root = name.split(".", 1)[0]
        forbid = contract["forbid"]
        allow = contract.get("allow", ())
        for lineno, col, target in info.import_sites:
            target_root = target.split(".", 1)[0]
            if target_root != root and target_root != "repro":
                continue
            if target == root or target == "repro":
                continue  # the bare package re-exports carry no layer
            target_layer = layer_of(target)
            if target_layer == source_layer:
                continue
            banned = (
                target_layer in forbid
                or ("*" in forbid and target_layer not in allow)
            )
            if not banned:
                continue
            yield (
                info.file,
                lineno,
                col,
                f"layer {source_layer!r} must not import layer "
                f"{target_layer!r} ({target}); layering contract in "
                "DESIGN.md §2k",
            )
