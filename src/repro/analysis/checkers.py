"""The per-module determinism/concurrency checkers.

Each checker enforces one clause of the repo's reproducibility contract
(see DESIGN.md §2f).  They are deliberately syntactic: the goal is a
fast, dependency-free pass over the whole tree that catches the
contract-breaking *patterns*, with inline suppressions carrying the
justification wherever a pattern is provably safe in context.  The
whole-program rules live in :mod:`repro.analysis.graph_rules`; FLOW002
is here because asymmetric-draw detection needs only one function body.

Checker docstrings carry the ``Violating::`` / ``Clean::`` blocks that
``repro lint --explain RULE`` renders.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.rules import rule
from repro.analysis.symbols import ModuleContext, parent_chain

__all__ = ["TELEMETRY_NAME_GRAMMAR"]

Hit = "tuple[int, int, str]"


def _hit(node: ast.AST, message: str) -> "tuple[int, int, str]":
    return (node.lineno, node.col_offset, message)


# -- DET001: ambient RNG state ---------------------------------------------

#: ``numpy.random`` attributes that construct explicit generators (fine)
#: rather than touching the hidden global stream (not fine).
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: ``random`` attributes that construct independent instances (fine).
_STDLIB_RANDOM_ALLOWED = {"Random", "SystemRandom"}


@rule(
    "DET001",
    "bare random.*/np.random.* global-state call",
    "Hidden module-global RNG streams make results depend on call order "
    "and process layout; every stream must be an explicit Generator "
    "derived from a job key (rng.py is the only blessed constructor site).",
)
def check_det001(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        np.random.seed(0)
        x = np.random.rand(3)

    Clean::

        rng = derive(seed, "sampling")   # repro.rng
        x = rng.random(3)
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.symbols.qualified(node.func)
        if not qualified:
            continue
        if qualified.startswith("random."):
            attr = qualified.split(".", 1)[1]
            if "." not in attr and attr not in _STDLIB_RANDOM_ALLOWED:
                yield _hit(
                    node,
                    f"global-state RNG call {qualified}(); derive an explicit "
                    "Generator via repro.rng instead",
                )
        elif qualified.startswith("numpy.random."):
            attr = qualified.split("numpy.random.", 1)[1]
            if "." not in attr and attr not in _NP_RANDOM_ALLOWED:
                yield _hit(
                    node,
                    f"global-state RNG call np.random.{attr}(); derive an "
                    "explicit Generator via repro.rng instead",
                )


# -- DET002: wall clocks in result paths -----------------------------------

_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@rule(
    "DET002",
    "wall-clock read in a result-affecting module",
    "Results must be a pure function of the job key; clock reads belong "
    "to telemetry/progress, which are allowlisted.",
)
def check_det002(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        started = time.time()        # in a result-affecting module

    Clean::

        with telemetry.span("engine.job"):   # clocks live in telemetry
            run(job)
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.symbols.qualified(node.func)
        if qualified in _WALL_CLOCKS:
            yield _hit(
                node,
                f"wall-clock read {qualified}() in a result-affecting module "
                "(telemetry/progress are the allowlisted homes)",
            )


# -- DET003: unordered set iteration ---------------------------------------


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _scopes(tree: ast.Module):
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_body_walk(scope: ast.AST):
    """Walk a scope without descending into nested function scopes."""
    stack = list(
        ast.iter_child_nodes(scope)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
        else scope.body  # type: ignore[union-attr]
    )
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


@rule(
    "DET003",
    "iteration over a set without sorted(...)",
    "Set iteration order depends on hash seeding and insertion history; "
    "anything feeding results must iterate a sorted materialisation.",
)
def check_det003(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        for name in {"b", "a"}:
            emit(name)

    Clean::

        for name in sorted({"b", "a"}):
            emit(name)
    """
    for scope in _scopes(module.tree):
        set_vars: "set[str]" = set()
        for node in _scope_body_walk(scope):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_vars.add(target.id)
        for node in _scope_body_walk(scope):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it) or (
                    isinstance(it, ast.Name) and it.id in set_vars
                ):
                    yield _hit(
                        it,
                        "iteration over a set has nondeterministic order; "
                        "iterate sorted(...) instead",
                    )


# -- DET004: ambient environment reads -------------------------------------


@rule(
    "DET004",
    "os.environ read outside the blessed config modules",
    "Environment is ambient, unrecorded input; all reads must funnel "
    "through engine/context.py (and the C-kernel escape hatch) so a run's "
    "configuration is auditable.",
)
def check_det004(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        jobs = int(os.environ.get("JOBS", 1))   # anywhere else

    Clean::

        jobs = context.jobs          # engine/context.py read it, once,
                                     # and recorded it in the run manifest
    """
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            qualified = module.symbols.qualified(node.func)
            if qualified == "os.getenv":
                yield _hit(node, "os.getenv() read outside engine/context.py")
            continue
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        if module.symbols.qualified(node) != "os.environ":
            continue
        parent = getattr(node, "_repro_parent", None)
        # ``os.environ.get(...)`` is reported at this node; the outer
        # Attribute (``.get``) has no ``os.environ`` qualification itself.
        if isinstance(parent, ast.Attribute):
            yield _hit(node, f"os.environ.{parent.attr} read outside engine/context.py")
            continue
        if isinstance(parent, ast.Subscript):
            if isinstance(parent.ctx, (ast.Store, ast.Del)):
                continue  # writes/deletes are test-harness territory
            yield _hit(node, "os.environ[...] read outside engine/context.py")
            continue
        yield _hit(node, "os.environ read outside engine/context.py")


# -- SPAWN001: unguarded module-level mutable state --------------------------

_MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "clear",
    "remove",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "sort",
    "reverse",
}


def _under_module_lock(node: ast.AST, lock_names: "set[str]") -> bool:
    for ancestor in parent_chain(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id in lock_names:
                    return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return False


@rule(
    "SPAWN001",
    "module-level mutable state mutated in worker-executed code",
    "Anything importable runs in pool workers; unsynchronised mutation of "
    "module globals is only safe per-process or under a module lock, and "
    "each such site must say which.",
)
def check_spawn001(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        _CACHE = {}
        def lookup(key):
            _CACHE[key] = compute(key)

    Clean::

        _CACHE = {}
        _LOCK = threading.Lock()
        def lookup(key):
            with _LOCK:
                _CACHE[key] = compute(key)
    """
    mutables = module.symbols.mutable_globals
    locks = module.symbols.lock_globals
    for scope in _scopes(module.tree):
        if isinstance(scope, ast.Module):
            continue  # import-time registration is single-threaded
        declared_global: "set[str]" = set()
        for node in _scope_body_walk(scope):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        for node in _scope_body_walk(scope):
            name = None
            how = "mutated"
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in mutables
                    ):
                        name = target.value.id
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        name = target.id
                        how = "rebound via 'global'"
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in mutables
                and node.func.attr in _MUTATING_METHODS
            ):
                name = node.func.value.id
            if name is None or _under_module_lock(node, locks):
                continue
            yield _hit(
                node,
                f"module-level state {name!r} {how} outside a module "
                "lock in worker-executable code",
            )


# -- TEL001: telemetry naming discipline -------------------------------------

#: The namespace grammar every span/counter/gauge name must satisfy.
TELEMETRY_NAME_GRAMMAR = re.compile(
    r"^(engine|forest|learner|costmodel|service|surrogate|analysis)"
    r"\.[a-z0-9_]+(\.[a-z0-9_]+)*$"
)

_TELEMETRY_CALL_SUFFIXES = (
    "telemetry.span",
    "telemetry.spans.span",
    "telemetry.inc",
    "telemetry.gauge",
    "telemetry.counters.inc",
    "telemetry.counters.gauge",
)


def _is_telemetry_call(module: ModuleContext, node: ast.Call) -> "str | None":
    qualified = module.symbols.qualified(node.func)
    if qualified and any(qualified.endswith(s) for s in _TELEMETRY_CALL_SUFFIXES):
        return qualified.rsplit(".", 1)[1]
    return None


@rule(
    "TEL001",
    "telemetry name violates the namespace grammar or is not a literal",
    "Span/counter names are a queryable schema: they must be string "
    "literals (greppable, summarizable) in the engine./forest./learner./ "
    "costmodel./service./surrogate. namespaces.",
)
def check_tel001(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        counters.inc(f"jobs_{kind}")     # computed, wrong namespace

    Clean::

        counters.inc("engine.jobs.executed")
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _is_telemetry_call(module, node)
        if kind is None or not node.args:
            continue
        name_arg = node.args[0]
        if not isinstance(name_arg, ast.Constant) or not isinstance(
            name_arg.value, str
        ):
            yield _hit(
                name_arg,
                f"telemetry {kind} name must be a string literal "
                "(computed names defeat grep and the trace summarizer)",
            )
        elif not TELEMETRY_NAME_GRAMMAR.match(name_arg.value):
            yield _hit(
                name_arg,
                f"telemetry name {name_arg.value!r} outside the "
                "engine.*/forest.*/learner.*/costmodel.*/service.*/"
                "surrogate.*/analysis.* namespace grammar",
            )


# -- IO001: raw file writes ---------------------------------------------------


def _write_mode(node: ast.Call, mode_position: int) -> "str | None":
    mode = None
    if len(node.args) > mode_position:
        mode = node.args[mode_position]
    else:
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if any(c in mode.value for c in "wax+"):
            return mode.value
    return None


@rule(
    "IO001",
    "raw file write bypassing the atomic-write/journal helpers",
    "Partially-written artifacts masquerade as results after a crash; "
    "writes in src/ must go through engine/store.py's fsync'd journal "
    "or atomic-replace helpers.",
)
def check_io001(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        with open(path, "w") as fh:
            fh.write(json.dumps(result))

    Clean::

        atomic_write_text(path, json.dumps(result))   # engine/store.py
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        qualified = module.symbols.qualified(func)
        if isinstance(func, ast.Name) and func.id == "open" or qualified == "io.open":
            mode = _write_mode(node, 1)
            if mode is not None:
                yield _hit(
                    node,
                    f"open(..., {mode!r}) bypasses the atomic-write/journal "
                    "helpers in engine/store.py",
                )
        elif qualified == "os.fdopen":
            mode = _write_mode(node, 1)
            if mode is not None:
                yield _hit(
                    node,
                    f"os.fdopen(..., {mode!r}) bypasses the atomic-write/"
                    "journal helpers in engine/store.py",
                )
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            yield _hit(
                node,
                f".{func.attr}() bypasses the atomic-write/journal helpers "
                "in engine/store.py",
            )


# -- SHM001: shared-memory segment lifecycle ---------------------------------


def _finally_method_calls(finalbody: "list[ast.stmt]") -> "set[str]":
    """Attribute-method names called anywhere under a ``finally`` body."""
    called: "set[str]" = set()
    for stmt in finalbody:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                called.add(node.func.attr)
    return called


def _creates_segment(node: ast.Call) -> bool:
    """Whether this ``SharedMemory(...)`` call owns a new segment.

    Attach sites (``create`` absent or false) borrow a name the creator
    owns; only creation sites carry the unlink obligation.
    """
    for kw in node.keywords:
        if kw.arg == "create":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    if len(node.args) > 1:  # SharedMemory(name, create, ...)
        arg = node.args[1]
        return isinstance(arg, ast.Constant) and arg.value is True
    return False


@rule(
    "SHM001",
    "SharedMemory(create=True) without close()/unlink() on a finally path",
    "A created segment is a named kernel object that outlives the "
    "process unless explicitly unlinked; every create site must sit in "
    "a try whose finally closes and unlinks it (ownership may transfer "
    "on success — engine/shm.py's registry tears down on the engine's "
    "finally path — but the error path must clean up in place).",
)
def check_shm001(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        seg = SharedMemory(create=True, size=n)

    Clean::

        seg = None
        try:
            seg = SharedMemory(create=True, size=n)
            ...
        finally:
            if seg is not None:
                seg.close()
                seg.unlink()
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        qualified = module.symbols.qualified(node.func)
        is_ctor = (
            qualified == "SharedMemory" or
            (qualified is not None and qualified.endswith(".SharedMemory"))
        ) or (
            isinstance(node.func, ast.Name) and node.func.id == "SharedMemory"
        )
        if not is_ctor or not _creates_segment(node):
            continue
        guarded = False
        for ancestor in parent_chain(node):
            if isinstance(ancestor, ast.Try) and ancestor.finalbody:
                called = _finally_method_calls(ancestor.finalbody)
                if "close" in called and "unlink" in called:
                    guarded = True
                    break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        if not guarded:
            yield _hit(
                node,
                "SharedMemory(create=True) is not enclosed in a try whose "
                "finally calls .close() and .unlink(); the segment can "
                "leak past the engine run",
            )


# -- EXC001: swallowed exceptions --------------------------------------------


def _is_silent_body(body: "list[ast.stmt]") -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@rule(
    "EXC001",
    "bare except or silently swallowed exception",
    "A swallowed error in the engine/executor path turns a lost result "
    "into silent data corruption; every handler must re-raise, record, "
    "or justify itself.",
)
def check_exc001(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        try:
            store.flush()
        except Exception:
            pass

    Clean::

        try:
            store.flush()
        except OSError as exc:
            log.warning("flush failed: %s", exc)
            raise
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield _hit(
                node,
                "bare 'except:' catches SystemExit/KeyboardInterrupt; name "
                "the exceptions",
            )
        elif _is_silent_body(node.body):
            yield _hit(
                node,
                "silently swallowed exception (handler body is pass); "
                "record, re-raise, or justify with a suppression",
            )


# -- FLOW002: path-asymmetric Generator consumption ---------------------------


def _generator_params(fn: ast.AST) -> "list[str]":
    """Parameters that carry an RNG stream: named ``rng`` or
    annotated with a ``Generator`` type."""
    out = []
    for arg in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs):
        if arg.arg == "rng":
            out.append(arg.arg)
            continue
        ann = arg.annotation
        text = ast.unparse(ann) if ann is not None else ""
        if "Generator" in text:
            out.append(arg.arg)
    return out


def _walk_no_nested(stmts: "list[ast.stmt]"):
    """Walk statement subtrees without descending into nested defs."""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _draw_nodes(stmts: "list[ast.stmt]", param: str) -> "list[ast.AST]":
    from repro.analysis.graph import RNG_DRAW_METHODS

    out = []
    for node in _walk_no_nested(stmts):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
            and node.func.attr in RNG_DRAW_METHODS
        ):
            out.append(node)
    return out


def _has(stmts: "list[ast.stmt]", kind) -> bool:
    return any(isinstance(n, kind) for n in _walk_no_nested(stmts))


@rule(
    "FLOW002",
    "Generator parameter drawn on one branch path but not the other",
    "When one path through a branch consumes draws and another silently "
    "skips them, the stream's position afterwards depends on the data — "
    "every later draw (and every later caller sharing the stream) "
    "diverges across inputs.  Draw unconditionally, or split the stream "
    "with derive()/spawn() per path.",
)
def check_flow002(module: ModuleContext) -> Iterator[Hit]:
    """Violating::

        def sample(x, rng):
            if x.cached:
                return x.value        # skips the draw below
            return x.value + rng.normal()

    Clean::

        def sample(x, rng):
            noise = rng.normal()      # stream advances on every path
            return x.value if x.cached else x.value + noise
    """
    for scope in _scopes(module.tree):
        if isinstance(scope, ast.Module):
            continue
        for param in _generator_params(scope):
            all_draws = _draw_nodes(scope.body, param)
            if not all_draws:
                continue  # pure pass-through parameters are fine
            for node in _walk_no_nested(scope.body):
                if not isinstance(node, ast.If):
                    continue
                body_draws = bool(_draw_nodes(node.body, param))
                else_draws = bool(_draw_nodes(node.orelse, param))
                hit = False
                # Guard-return: one side bails out drawless while draws
                # happen on the other side or after the branch.
                for side, drew in ((node.body, body_draws), (node.orelse, else_draws)):
                    if not side or drew:
                        continue
                    if not _has(side, ast.Return):
                        continue
                    other_drew = else_draws if side is node.body else body_draws
                    draws_after = any(
                        d.lineno > (node.end_lineno or node.lineno)
                        for d in all_draws
                    )
                    if other_drew or draws_after:
                        hit = True
                # Asymmetric fall-through: both sides continue, only one
                # consumes (a raising side is exceptional, not a path).
                if (
                    not hit
                    and node.body
                    and node.orelse
                    and body_draws != else_draws
                    and not _has(node.body, (ast.Return, ast.Raise))
                    and not _has(node.orelse, (ast.Return, ast.Raise))
                ):
                    hit = True
                if hit:
                    yield _hit(
                        node,
                        f"Generator parameter {param!r} is drawn on one "
                        "path through this branch but not the other; the "
                        "stream position diverges across inputs — draw "
                        "unconditionally or split with derive()/spawn()",
                    )
