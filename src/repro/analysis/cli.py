"""Argument parsing shared by ``repro lint`` and ``python -m repro.analysis``.

Exit codes: ``0`` clean (or warnings only), ``1`` at least one
error-severity finding survived suppressions and the baseline, ``2``
usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.findings import LintUsageError

__all__ = ["configure_parser", "run_from_args", "main"]

#: Paths linted when none are given (missing ones are skipped).
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests benchmarks, "
        "skipping those that do not exist)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json schema: see repro.analysis.reporters)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings (DET*/SPAWN* entries "
        "are rejected — determinism may not be grandfathered)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write surviving non-DET/SPAWN findings to FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (all others disabled)",
    )
    parser.add_argument(
        "--disable",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--severity",
        action="append",
        metavar="RULE=LEVEL",
        default=[],
        help="override one rule's severity (error|warning); repeatable",
    )
    parser.add_argument(
        "--no-defaults",
        action="store_true",
        help="drop the built-in path allowlists and excludes (every rule "
        "applies everywhere — what the fixture tests use)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its summary and exit",
    )
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    from repro.analysis.baseline import write_baseline
    from repro.analysis.config import default_config, permissive_config
    from repro.analysis.reporters import render_json, render_text
    from repro.analysis.rules import all_rules
    from repro.analysis.runner import lint_paths

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.summary}")
        return 0

    try:
        config = permissive_config() if args.no_defaults else default_config()
        severities = {}
        for item in args.severity:
            rule_id, sep, level = item.partition("=")
            if not sep:
                raise LintUsageError(
                    f"--severity expects RULE=LEVEL, got {item!r}"
                )
            severities[rule_id] = level
        select = tuple(args.select.split(",")) if args.select else None
        disable = tuple(args.disable.split(",")) if args.disable else ()
        if select or disable or severities:
            config = config.with_overrides(
                select=select, disable=disable, severities=severities
            )

        paths = list(args.paths)
        if not paths:
            import os

            paths = [p for p in DEFAULT_PATHS if os.path.isdir(p)]
            if not paths:
                raise LintUsageError(
                    "no paths given and none of src/, tests/, benchmarks/ "
                    "exist here"
                )
        result = lint_paths(paths, config=config, baseline_path=args.baseline)

        if args.write_baseline:
            recorded = write_baseline(args.write_baseline, result.findings)
            print(f"[baseline written {args.write_baseline}: {recorded} finding(s)]")
            return 0
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result, paths))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    parser = configure_parser(
        argparse.ArgumentParser(
            prog="python -m repro.analysis",
            description=__doc__,
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )
    )
    return run_from_args(parser.parse_args(argv))
