"""Argument parsing shared by ``repro lint`` and ``python -m repro.analysis``.

Exit codes: ``0`` clean (or warnings only), ``1`` at least one
error-severity finding survived suppressions and the baseline, ``2``
usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.findings import LintUsageError

__all__ = ["configure_parser", "run_from_args", "main"]

#: Paths linted when none are given (missing ones are skipped).
DEFAULT_PATHS = ("src", "tests", "benchmarks")

#: Where the incremental cache lives unless ``--cache-file`` overrides it.
DEFAULT_CACHE_FILE = ".repro-lint-cache.json"


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests benchmarks, "
        "skipping those that do not exist)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json schema: see repro.analysis.reporters)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings (DET*/SPAWN* entries "
        "are rejected — determinism may not be grandfathered)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write surviving non-DET/SPAWN findings to FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (all others disabled)",
    )
    parser.add_argument(
        "--disable",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--severity",
        action="append",
        metavar="RULE=LEVEL",
        default=[],
        help="override one rule's severity (error|warning); repeatable",
    )
    parser.add_argument(
        "--no-defaults",
        action="store_true",
        help="drop the built-in path allowlists and excludes (every rule "
        "applies everywhere — what the fixture tests use)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-file pass over N worker processes (0 = all "
        "cores); output is byte-identical to a serial run",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the incremental cache entirely (cold run, no writes)",
    )
    parser.add_argument(
        "--cache-file",
        metavar="FILE",
        default=DEFAULT_CACHE_FILE,
        help=f"incremental cache location (default: {DEFAULT_CACHE_FILE})",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="only report findings in files changed vs REF (git diff "
        "--name-only; default HEAD); the whole-program graph still "
        "covers the full tree",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="print the whole-program import/call graph as JSON and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print a rule's rationale with violating/clean examples and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its scope and summary, then exit",
    )
    return parser


def _explain_blocks(doc: "str | None") -> "dict[str, str]":
    """Extract the ``Violating::`` / ``Clean::`` example blocks."""
    import textwrap

    blocks: "dict[str, str]" = {}
    if not doc:
        return blocks
    current: "str | None" = None
    buffer: "list[str]" = []

    def flush() -> None:
        if current and buffer:
            blocks[current] = textwrap.dedent("\n".join(buffer)).strip("\n")

    for line in textwrap.dedent(doc).splitlines():
        stripped = line.strip()
        if stripped in ("Violating::", "Clean::"):
            flush()
            current = stripped[:-2].lower()
            buffer = []
        elif current is not None:
            if stripped and not line.startswith((" ", "\t")):
                flush()
                current = None
                buffer = []
            else:
                buffer.append(line)
    flush()
    return blocks


def _explain_rule(rule_id: str) -> int:
    from repro.analysis.rules import get_rule, known_rule_ids

    try:
        rule = get_rule(rule_id)
    except KeyError:
        print(
            f"repro lint: unknown rule id {rule_id!r} "
            f"(known: {', '.join(known_rule_ids())})",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.id} ({rule.scope}): {rule.summary}")
    if rule.rationale:
        print()
        print(rule.rationale)
    blocks = _explain_blocks(rule.checker.__doc__)
    for title in ("violating", "clean"):
        body = blocks.get(title)
        if body:
            print()
            print(f"{title.capitalize()}:")
            for line in body.splitlines():
                print(f"    {line}")
    return 0


def _changed_names(ref: str) -> "set[str]":
    """Resolved paths of tracked files changed vs ``ref`` (git diff)."""
    import subprocess
    from pathlib import Path

    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref],
            capture_output=True,
            text=True,
        )
    except OSError as exc:
        raise LintUsageError(f"--changed: cannot run git: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise LintUsageError(
            f"--changed: git diff vs {ref!r} failed"
            + (f": {detail[0]}" if detail else "")
        )
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
        ).stdout.strip()
    except OSError:
        top = ""
    root = Path(top) if top else Path.cwd()
    out: "set[str]" = set()
    for line in proc.stdout.splitlines():
        name = line.strip()
        if not name.endswith(".py"):
            continue
        out.add((root / name).resolve().as_posix())
    return out


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    from repro.analysis.baseline import write_baseline
    from repro.analysis.config import default_config, permissive_config
    from repro.analysis.reporters import render_json, render_text
    from repro.analysis.rules import all_rules
    from repro.analysis.runner import build_graph_for_paths, lint_paths

    if args.list_rules:
        rules = all_rules()
        width = max(len(r.id) for r in rules)
        for rule in rules:
            print(f"{rule.id:<{width}}  {rule.scope:<7}  {rule.summary}")
        return 0
    if args.explain:
        return _explain_rule(args.explain)

    try:
        config = permissive_config() if args.no_defaults else default_config()
        severities = {}
        for item in args.severity:
            rule_id, sep, level = item.partition("=")
            if not sep:
                raise LintUsageError(
                    f"--severity expects RULE=LEVEL, got {item!r}"
                )
            severities[rule_id] = level
        select = tuple(args.select.split(",")) if args.select else None
        disable = tuple(args.disable.split(",")) if args.disable else ()
        if select or disable or severities:
            config = config.with_overrides(
                select=select, disable=disable, severities=severities
            )

        paths = list(args.paths)
        if not paths:
            import os

            paths = [p for p in DEFAULT_PATHS if os.path.isdir(p)]
            if not paths:
                raise LintUsageError(
                    "no paths given and none of src/, tests/, benchmarks/ "
                    "exist here"
                )

        if args.graph:
            import json

            graph = build_graph_for_paths(paths, config=config)
            print(json.dumps(graph.to_json(), indent=2, sort_keys=True))
            return 0

        jobs = args.jobs
        if jobs <= 0:
            import os

            jobs = os.cpu_count() or 1
        changed = _changed_names(args.changed) if args.changed else None
        cache_path = None if (args.no_cache or changed is not None) else args.cache_file
        result = lint_paths(
            paths,
            config=config,
            baseline_path=args.baseline,
            jobs=jobs,
            cache_path=cache_path,
            changed=changed,
        )

        if args.write_baseline:
            recorded = write_baseline(args.write_baseline, result.findings)
            print(f"[baseline written {args.write_baseline}: {recorded} finding(s)]")
            return 0
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result, paths))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: "list[str] | None" = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    parser = configure_parser(
        argparse.ArgumentParser(
            prog="python -m repro.analysis",
            description=__doc__,
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )
    )
    return run_from_args(parser.parse_args(argv))
