"""Cross-kernel / cross-platform model portability."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.active import ActiveLearner, LearnerConfig, LearningHistory
from repro.forest import RandomForestRegressor
from repro.rng import as_generator, derive
from repro.sampling import make_strategy
from repro.space import DataPool
from repro.workloads import Benchmark

__all__ = [
    "surface_correlation",
    "transfer_cold_start",
    "run_transfer_experiment",
    "TransferResult",
]


def surface_correlation(
    source: Benchmark,
    target: Benchmark,
    n_probe: int = 500,
    seed=None,
) -> float:
    """Spearman rank correlation of two response surfaces.

    Both benchmarks must share a parameter space layout (same encoded
    columns) — e.g. the same SPAPT kernel instantiated on two platforms.
    Rank correlation is the right notion for transfer: a monotone
    relationship is enough for the source's *ordering* of configurations
    to be useful on the target.
    """
    if source.space.names != target.space.names:
        raise ValueError(
            "surface correlation needs identically structured spaces; "
            f"got {source.space.names} vs {target.space.names}"
        )
    rng = as_generator(seed)
    X = source.space.sample_encoded(rng, n_probe)
    t_src = source.true_times_encoded(X)
    t_tgt = target.true_times_encoded(X)
    rho, _ = stats.spearmanr(t_src, t_tgt)
    return float(rho)


def transfer_cold_start(
    source_model: RandomForestRegressor,
    pool: DataPool,
    n_init: int,
    rng,
    exploit_fraction: float = 0.5,
) -> np.ndarray:
    """Pick cold-start pool indices using a source model's beliefs.

    ``exploit_fraction`` of the initial budget goes to the source model's
    best-predicted configurations in the target pool; the remainder is
    drawn uniformly for coverage (a wrong source model must not be able
    to blind the run completely).
    """
    if not 0.0 <= exploit_fraction <= 1.0:
        raise ValueError(f"exploit_fraction must be in [0, 1], got {exploit_fraction}")
    rng = as_generator(rng)
    available = pool.available_indices()
    if n_init > len(available):
        raise ValueError(f"n_init={n_init} exceeds available pool {len(available)}")
    n_exploit = int(round(exploit_fraction * n_init))
    mu = source_model.predict(pool.X[available])
    order = np.argsort(mu, kind="stable")
    exploit = available[order[:n_exploit]]
    rest = np.setdiff1d(available, exploit)
    explore = rng.choice(rest, size=n_init - n_exploit, replace=False)
    return np.concatenate([exploit, explore])


@dataclass(frozen=True)
class TransferResult:
    """Outcome of a transfer-vs-scratch comparison."""

    surface_rho: float
    scratch: LearningHistory
    transferred: LearningHistory

    def improvement(self, alpha_key: str = "0.05") -> np.ndarray:
        """Per-evaluation-point RMSE ratio scratch/transfer (>1 = transfer wins)."""
        s = self.scratch.rmse_series(alpha_key)
        t = self.transferred.rmse_series(alpha_key)
        return s / np.maximum(t, 1e-12)


def run_transfer_experiment(
    source: Benchmark,
    target: Benchmark,
    pool: DataPool,
    X_test: np.ndarray,
    y_test: np.ndarray,
    config: LearnerConfig,
    n_source_samples: int = 200,
    seed=None,
) -> TransferResult:
    """Compare from-scratch vs transfer-seeded active learning on ``target``.

    A source model is fit on ``n_source_samples`` random measurements of
    ``source`` (sunk cost — e.g. an already-tuned platform), then used to
    seed the target run's cold start.  Both runs use PWU and identical
    budgets on the *same* pool.
    """
    rho = surface_correlation(source, target, seed=derive(seed, "probe"))

    # Source model from its own (cheap, already-available) measurements.
    src_rng = derive(seed, "source")
    X_src = source.space.sample_encoded(src_rng, n_source_samples)
    y_src = source.measure_encoded(X_src, src_rng)
    source_model = RandomForestRegressor(n_estimators=30, seed=src_rng).fit(
        X_src, y_src
    )

    def _run(cold_start: "np.ndarray | None", key: str) -> LearningHistory:
        rng = derive(seed, "run", key)
        pool.reset()
        learner = ActiveLearner(
            pool=pool,
            evaluate=lambda X: target.measure_encoded(X, rng),
            X_test=X_test,
            y_test=y_test,
            strategy=make_strategy("pwu", alpha=0.05),
            config=config,
            seed=rng,
            cold_start_indices=cold_start,
        )
        return learner.run()

    scratch = _run(None, "scratch")
    pool.reset()
    seeds_idx = transfer_cold_start(
        source_model, pool, config.n_init, derive(seed, "coldstart")
    )
    transferred = _run(seeds_idx, "transfer")
    return TransferResult(surface_rho=rho, scratch=scratch, transferred=transferred)
