"""Model portability across kernels and platforms (the paper's future work).

Section VI: *"In future works, we can investigate the relation of different
kernels and the portability of performance models to avoid building models
from scratch when encountering new kernels or platforms."*

This subpackage implements that investigation:

* :func:`surface_correlation` — how related are two benchmarks' response
  surfaces over a shared parameter space (e.g. the same kernel on
  Platform A vs Platform B)?
* :func:`transfer_cold_start` — seed a new active-learning run from a
  *source* model's beliefs instead of a blind random draw: half the
  initial budget goes to the source's predicted-fast configurations,
  half stays random for coverage.
* :func:`run_transfer_experiment` — the end-to-end comparison: cold
  starting from a related model vs from scratch, on a target benchmark.
"""

from repro.transfer.portability import (
    TransferResult,
    run_transfer_experiment,
    surface_correlation,
    transfer_cold_start,
)

__all__ = [
    "surface_correlation",
    "transfer_cold_start",
    "run_transfer_experiment",
    "TransferResult",
]
