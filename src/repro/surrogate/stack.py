"""Error-weighted model stacking (the ``stack`` surrogate).

Where ``select`` commits to one family per refit, ``stack`` keeps them
all: members are weighted by inverse cross-validated RMSE (so a family
that explains the data better speaks louder) and their posteriors are
blended by mixture moment matching::

    w_i ∝ 1 / (cv_rmse_i + ε)           (normalised)
    μ    = Σ w_i μ_i
    σ²   = Σ w_i σ_i²  +  Σ w_i (μ_i − μ)²

The second σ² term is the *cross-model disagreement*: where the families
diverge, the ensemble is honest about not knowing, and PWU/MaxU — which
only see ``(μ, σ)`` — are drawn toward exactly those regions.  That is
the multi-model active-learning mechanism of Ghaffari et al. (PAPERS.md).

Determinism matches ``select``: fold assignment derives from one integer
drawn at construction plus the training-set size, and members fit in
declaration order, so histories are bit-identical at any ``--jobs`` /
``--batch-size``.  When the training set is too small to cross-validate
the members get equal weights.
"""

from __future__ import annotations

import numpy as np

from repro.rng import as_generator
from repro.surrogate.base import Surrogate
from repro.surrogate.select import cv_rmse
from repro.telemetry import counters, span

__all__ = ["StackSurrogate"]

_EPS = 1e-12


class StackSurrogate(Surrogate):
    """Inverse-CV-error weighted blend of registered surrogates."""

    kind = "stack"
    supports_partial_update = False

    def __init__(
        self,
        members: "tuple[str, ...]" = ("forest", "gp"),
        k_folds: int = 3,
        builder=None,
        seed=None,
    ) -> None:
        members = tuple(members)
        if len(members) < 2:
            raise ValueError("stack needs at least two member surrogates")
        if k_folds < 2:
            raise ValueError(f"k_folds must be >= 2, got {k_folds}")
        if builder is None:
            from repro.surrogate.registry import make_surrogate

            rng = as_generator(seed)
            builder = lambda name: make_surrogate(name, rng=rng)  # noqa: E731
        self.members = members
        self.k_folds = int(k_folds)
        self._builder = builder
        self._fold_seed = int(as_generator(seed).integers(0, 2**63 - 1))
        self.weights: "np.ndarray | None" = None
        self.cv_errors: dict[str, float] = {}
        self.models: "tuple[Surrogate, ...] | None" = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "StackSurrogate":
        errors = cv_rmse(
            self._builder, self.members, X, y, self.k_folds, self._fold_seed
        )
        if errors is None:
            self.cv_errors = {}
            raw = np.ones(len(self.members))
        else:
            self.cv_errors = errors
            raw = np.array([1.0 / (errors[m] + _EPS) for m in self.members])
            if not np.isfinite(raw).any() or raw.sum() <= 0.0:
                # Every member failed CV — weight them equally and let
                # the full-data fits below raise if they also fail.
                raw = np.ones(len(self.members))
        self.weights = raw / raw.sum()
        with span("surrogate.stack", n_train=len(y), members=len(self.members)):
            self.models = tuple(
                self._builder(m).fit(X, y) for m in self.members
            )
        counters.inc("surrogate.stack_fits")
        return self

    def _fitted_models(self) -> "tuple[Surrogate, ...]":
        if self.models is None:
            raise RuntimeError("stack surrogate is not fitted; call fit() first")
        return self.models

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        models = self._fitted_models()
        mus, sds = zip(*(m.predict_with_uncertainty(X) for m in models))
        mus = np.stack(mus)
        sds = np.stack(sds)
        w = self.weights[:, None]
        mu = (w * mus).sum(axis=0)
        # Within-model variance plus the cross-model disagreement term.
        var = (w * sds**2).sum(axis=0) + (w * (mus - mu) ** 2).sum(axis=0)
        return mu, np.sqrt(var)

    def predict(self, X: np.ndarray) -> np.ndarray:
        mu, _ = self.predict_with_uncertainty(X)
        return mu

    @property
    def training_targets(self) -> np.ndarray:
        return self._fitted_models()[0].training_targets

    def serialize(self) -> dict[str, np.ndarray]:
        from repro.surrogate.serialize import embed_blob, surrogate_bytes

        models = self._fitted_models()
        payload: dict[str, np.ndarray] = {
            "members": np.asarray(self.members),
            "k_folds": np.asarray(self.k_folds),
            "weights": np.asarray(self.weights),
        }
        if self.cv_errors:
            payload["cv_names"] = np.asarray(tuple(self.cv_errors))
            payload["cv_rmse"] = np.asarray(tuple(self.cv_errors.values()))
        for i, model in enumerate(models):
            payload[f"member_{i}_blob"] = embed_blob(surrogate_bytes(model))
        return payload

    @classmethod
    def deserialize(cls, payload: dict[str, np.ndarray]) -> "StackSurrogate":
        from repro.surrogate.select import _unfit_builder
        from repro.surrogate.serialize import extract_blob, load_surrogate

        model = cls(
            members=tuple(str(m) for m in payload["members"]),
            k_folds=int(payload["k_folds"]),
            builder=_unfit_builder,
        )
        model.weights = np.asarray(payload["weights"], dtype=np.float64)
        model.models = tuple(
            load_surrogate(extract_blob(payload[f"member_{i}_blob"]))
            for i in range(len(model.members))
        )
        if "cv_names" in payload:
            model.cv_errors = {
                str(n): float(e)
                for n, e in zip(payload["cv_names"], payload["cv_rmse"])
            }
        return model
