"""The named-surrogate registry (mirrors :mod:`repro.sampling.registry`).

Every component that resolves a surrogate *name* — the learner config,
:mod:`repro.api`, the CLI's ``--surrogate``, the service's
``SessionSpec`` — goes through :func:`make_surrogate`; there is
deliberately no other name→model mapping in the tree.  Factories take
``(config, rng, options)``:

``config``
    The :class:`~repro.active.learner.LearnerConfig` (duck-typed — only
    the forest hyper-parameter fields are read, with the historical
    defaults when absent), so registered surrogates see the same knobs
    the forest always has.
``rng``
    The learner's shared generator: candidate fits draw from the same
    stream as the strategy, keeping runs bit-identical at any ``--jobs``.
``options``
    Free-form per-surrogate settings (e.g. ``transfer``'s source-model
    path), carried as ``LearnerConfig.surrogate_options``.

Capability flags are registered alongside the factory so callers can
validate cheaply (``supports_partial_update``) without building a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.registry import NameRegistry
from repro.surrogate.base import Surrogate

__all__ = [
    "SURROGATE_NAMES",
    "register_surrogate",
    "make_surrogate",
    "available_surrogates",
    "surrogate_entry",
    "supports_partial_update",
]

#: The built-in families, in documentation order.
SURROGATE_NAMES: tuple[str, ...] = ("forest", "gp", "select", "stack", "transfer")


@dataclass(frozen=True)
class SurrogateEntry:
    """A registered factory plus its capability flags."""

    factory: Callable[..., Surrogate]
    supports_partial_update: bool = False
    description: str = ""


_REGISTRY = NameRegistry("surrogate")


def register_surrogate(
    name: str,
    factory: Callable[..., Surrogate],
    supports_partial_update: bool = False,
    description: str = "",
    overwrite: bool = False,
) -> None:
    """Register ``factory(config, rng, options) -> Surrogate`` under ``name``.

    Registering an existing name raises unless ``overwrite=True`` — a
    silently shadowed surrogate would corrupt comparisons.
    """
    _REGISTRY.register(
        name,
        SurrogateEntry(
            factory=factory,
            supports_partial_update=supports_partial_update,
            description=description,
        ),
        overwrite=overwrite,
    )


def surrogate_entry(name: str) -> SurrogateEntry:
    """The registered entry for ``name`` (factory + capability flags).

    Unknown names raise :class:`KeyError` with a closest-match
    suggestion — the fail-fast check the api/CLI/service layers use.
    """
    return _REGISTRY.get(name)


def supports_partial_update(name: str) -> bool:
    """Whether ``name``'s models implement incremental :meth:`update`."""
    return surrogate_entry(name).supports_partial_update


def available_surrogates() -> tuple[str, ...]:
    """Every registered surrogate name, sorted."""
    return _REGISTRY.available()


def make_surrogate(
    name: str,
    config: Any = None,
    rng=None,
    options: "dict | None" = None,
) -> Surrogate:
    """Instantiate a registered surrogate by name (see module docstring)."""
    return surrogate_entry(name).factory(
        config=config, rng=rng, options=dict(options or {})
    )


# -- built-in factories ------------------------------------------------------


def _forest_factory(config, rng, options) -> Surrogate:
    from repro.surrogate.adapters import ForestSurrogate

    return ForestSurrogate.build(
        n_estimators=getattr(config, "n_estimators", 30),
        max_features=getattr(config, "max_features", "third"),
        min_samples_leaf=getattr(config, "min_samples_leaf", 1),
        uncertainty=getattr(config, "uncertainty", "across_trees"),
        seed=rng,
    )


def _gp_factory(config, rng, options) -> Surrogate:
    from repro.surrogate.adapters import GPSurrogate

    return GPSurrogate.build(seed=rng, n_restarts=int(options.get("n_restarts", 1)))


def _candidate_builder(config, rng):
    def build(name: str) -> Surrogate:
        return make_surrogate(name, config=config, rng=rng)

    return build


def _select_factory(config, rng, options) -> Surrogate:
    from repro.surrogate.select import SelectSurrogate

    return SelectSurrogate(
        candidates=tuple(options.get("candidates", ("forest", "gp"))),
        k_folds=int(options.get("k_folds", 3)),
        builder=_candidate_builder(config, rng),
        seed=rng,
    )


def _stack_factory(config, rng, options) -> Surrogate:
    from repro.surrogate.stack import StackSurrogate

    return StackSurrogate(
        members=tuple(options.get("members", ("forest", "gp"))),
        k_folds=int(options.get("k_folds", 3)),
        builder=_candidate_builder(config, rng),
        seed=rng,
    )


def _transfer_factory(config, rng, options) -> Surrogate:
    from repro.surrogate.adapters import TransferSurrogate
    from repro.surrogate.base import Surrogate as _Surrogate

    source = options.get("source")
    if source is None:
        raise ValueError(
            "the transfer surrogate needs a source model: pass "
            "surrogate_options with source=<path to a saved surrogate/forest "
            "npz> (or a fitted model instance)"
        )
    if isinstance(source, (str, bytes)):
        from repro.surrogate.serialize import load_surrogate

        source = load_surrogate(source)
    elif not isinstance(source, _Surrogate):
        # A raw fitted forest/GP: wrap it so it speaks the protocol.
        from repro.surrogate.adapters import ForestSurrogate

        source = ForestSurrogate(source)
    return TransferSurrogate(
        source=source,
        prior_weight=float(options.get("prior_weight", 32.0)),
        target_factory=lambda: _forest_factory(config, rng, {}),
    )


register_surrogate(
    "forest",
    _forest_factory,
    supports_partial_update=True,
    description="CART forest with across-tree uncertainty (the paper's model)",
)
register_surrogate(
    "gp",
    _gp_factory,
    description="exact GP (RBF + noise) on log targets, Section II-B baseline",
)
register_surrogate(
    "select",
    _select_factory,
    description="per-refit k-fold CV selection among candidate families",
)
register_surrogate(
    "stack",
    _stack_factory,
    description="inverse-CV-error weighted blend; disagreement feeds sigma",
)
register_surrogate(
    "transfer",
    _transfer_factory,
    description="frozen source model as a decaying prior over a target forest",
)
