"""One on-disk envelope for every surrogate family.

The envelope is a flat ``.npz``: the adapter's :meth:`Surrogate.serialize`
payload plus a ``surrogate_kind`` stamp for dispatch on load.  Two
compatibility properties are deliberate:

- A saved **forest** surrogate is a superset of the classic
  :func:`repro.forest.serialize.save_forest` format-2 file, so
  ``load_forest`` still reads it (extra keys are ignored).
- A classic forest file has no ``surrogate_kind`` stamp;
  :func:`load_surrogate` defaults the kind to ``"forest"``, so every
  model the service ever served remains loadable.

Meta-surrogates (``select``/``stack``/``transfer``) nest their children
as byte blobs — each child is itself a complete envelope — via
:func:`embed_blob` / :func:`extract_blob`.
"""

from __future__ import annotations

import io

import numpy as np

from repro.envelope import EnvelopeError, describe_file, read_npz_payload
from repro.surrogate.base import Surrogate

__all__ = [
    "save_surrogate",
    "load_surrogate",
    "surrogate_from_payload",
    "surrogate_bytes",
    "embed_blob",
    "extract_blob",
]

#: Envelope schema version (independent of the forest payload version).
SURROGATE_SCHEMA_VERSION = 1


def _kind_classes() -> dict[str, type]:
    from repro.surrogate.adapters import (
        ForestSurrogate,
        GPSurrogate,
        TransferSurrogate,
    )
    from repro.surrogate.select import SelectSurrogate
    from repro.surrogate.stack import StackSurrogate

    return {
        cls.kind: cls
        for cls in (
            ForestSurrogate,
            GPSurrogate,
            TransferSurrogate,
            SelectSurrogate,
            StackSurrogate,
        )
    }


def embed_blob(blob: bytes) -> np.ndarray:
    """Bytes → uint8 array, for nesting an envelope inside another."""
    return np.frombuffer(blob, dtype=np.uint8)


def extract_blob(arr: np.ndarray) -> io.BytesIO:
    """Inverse of :func:`embed_blob`, as a file object for :func:`load_surrogate`."""
    return io.BytesIO(np.asarray(arr, dtype=np.uint8).tobytes())


def save_surrogate(model: Surrogate, file) -> None:
    """Write a fitted surrogate's envelope to ``file`` (path or file object)."""
    payload = dict(model.serialize())
    payload["surrogate_kind"] = np.asarray(model.kind)
    payload["surrogate_schema"] = np.asarray(SURROGATE_SCHEMA_VERSION)
    np.savez_compressed(file, **payload)


def surrogate_bytes(model: Surrogate) -> bytes:
    """A fitted surrogate's envelope as in-memory bytes (service downloads)."""
    buf = io.BytesIO()
    save_surrogate(model, buf)
    return buf.getvalue()


#: What the surrogate loader expects, embedded in its EnvelopeErrors.
_EXPECTED = (
    f"a repro surrogate .npz envelope (surrogate_schema <= "
    f"{SURROGATE_SCHEMA_VERSION}, or a classic save_forest file; "
    "see repro.surrogate.serialize)"
)


def surrogate_from_payload(
    payload: "dict[str, np.ndarray]", source: str = "<payload>"
) -> Surrogate:
    """Rebuild a surrogate from an already-read envelope payload dict.

    Dispatches on the ``surrogate_kind`` stamp; payloads predating the
    envelope (plain :func:`~repro.forest.serialize.save_forest` arrays)
    rebuild as forest surrogates.  Shared by :func:`load_surrogate` and
    the distilled-workload loader (whose envelope is a superset).
    """
    kind = str(payload.get("surrogate_kind", "forest"))
    schema = int(payload.get("surrogate_schema", SURROGATE_SCHEMA_VERSION))
    if schema > SURROGATE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported surrogate envelope schema {schema} "
            f"(this build reads <= {SURROGATE_SCHEMA_VERSION})"
        )
    classes = _kind_classes()
    try:
        cls = classes[kind]
    except KeyError:
        raise ValueError(
            f"unknown surrogate kind {kind!r} in envelope "
            f"(known: {', '.join(sorted(classes))})"
        ) from None
    try:
        return cls.deserialize(payload)
    except KeyError as exc:
        raise EnvelopeError(
            source,
            _EXPECTED,
            f"{kind!r} envelope is missing required key {exc.args[0]!r}",
        ) from None


def load_surrogate(file) -> Surrogate:
    """Load any surrogate envelope (or a classic forest npz) from ``file``.

    Dispatches on the ``surrogate_kind`` stamp; files predating the
    envelope (plain :func:`~repro.forest.serialize.save_forest` output)
    load as forest surrogates.  The returned model predicts but holds no
    training data, so it cannot keep learning.  Unreadable files —
    missing, truncated, not an npz archive, or missing schema keys —
    raise a typed :class:`~repro.envelope.EnvelopeError` naming the file
    and the expected schema.
    """
    payload = read_npz_payload(file, _EXPECTED)
    return surrogate_from_payload(payload, source=describe_file(file))
