"""The :class:`Surrogate` protocol — one interface for every model that
can drive Algorithm 1.

The loop is surrogate-agnostic: PWU and its siblings only need ``(μ, σ)``
per pool point.  Historically the CART forest was hard-wired into the
learner while :mod:`repro.gp` and :mod:`repro.transfer` sat off to the
side with ad-hoc interfaces; this module makes the contract explicit so
any registered model — forest, GP, transfer prior, cross-validated
selection, error-weighted stack — flows through the learner, the engine,
the CLI, and the service unchanged.

The contract:

``fit(X, y)``
    Train from scratch on the full labeled set.
``update(X_new, y_new, refresh_fraction)``
    Incorporate a new batch incrementally; only surrogates with
    ``supports_partial_update = True`` implement it (the learner's
    ``retrain="partial"`` mode checks the flag up front).
``predict(X)`` / ``predict_with_uncertainty(X)``
    Posterior mean, and (mean, std), in the original target units.
``training_targets``
    Labels the model was fit on — incumbent-based strategies (EI) read
    this.
``serialize()`` / ``Surrogate.deserialize(payload)``
    Round-trip the fitted state through a flat ``dict[str, np.ndarray]``
    payload (see :mod:`repro.surrogate.serialize` for the npz envelope).

Adapters may additionally expose the forest's vectorised pool scorers
(``predict_with_uncertainty_pool`` / ``predict_pool``); the sampling
layer discovers those by ``getattr`` duck-typing exactly as before, so
surrogates without them transparently fall back to the generic path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Surrogate"]


class Surrogate(ABC):
    """Abstract base for every model behind the surrogate registry."""

    #: Registry name of the family ("forest", "gp", ...); set per subclass
    #: and stamped into serialized payloads for dispatch on load.
    kind: str = ""

    #: Whether :meth:`update` performs a genuine incremental refresh.
    #: The learner's ``retrain="partial"`` mode requires this.
    supports_partial_update: bool = False

    # -- training ----------------------------------------------------------
    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Surrogate":
        """Fit from scratch on the full labeled set; returns ``self``."""

    def update(
        self, X_new: np.ndarray, y_new: np.ndarray, refresh_fraction: float = 0.3
    ) -> "Surrogate":
        """Incorporate a new batch incrementally.

        The default raises — only surrogates advertising
        ``supports_partial_update`` override it.
        """
        raise NotImplementedError(
            f"the {self.kind or type(self).__name__!r} surrogate only "
            "supports retrain='scratch'"
        )

    # -- inference ---------------------------------------------------------
    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Posterior mean per row of ``X``, in original target units."""

    @abstractmethod
    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(mean, std) per row of ``X``, in original target units."""

    @property
    @abstractmethod
    def training_targets(self) -> np.ndarray:
        """Labels the surrogate was fit on (incumbent-based strategies)."""

    # -- persistence -------------------------------------------------------
    @abstractmethod
    def serialize(self) -> dict[str, np.ndarray]:
        """Fitted state as a flat dict of arrays (npz-compatible)."""

    @classmethod
    @abstractmethod
    def deserialize(cls, payload: dict[str, np.ndarray]) -> "Surrogate":
        """Rebuild a fitted surrogate from :meth:`serialize`'s payload.

        The returned model predicts but holds no training data, so it
        cannot keep learning; refit from data if you need to.
        """
