"""Cross-validated per-round model selection (the ``select`` surrogate).

Ghaffari et al. (PAPERS.md, "Statistical Hardware Design With Multi-model
Active Learning") observe that no single model family wins across a whole
active-learning run: the forest dominates once the training set has some
mass, the GP often wins the data-starved early rounds.  ``select`` picks
the family *per refit* by k-fold cross-validated RMSE on the labels
collected so far, then refits the winner on everything.

Determinism: the fold permutation derives from a single integer drawn
from the learner's seeded stream at construction time, combined with the
current training-set size via :func:`repro.rng.derive` — so fold
assignment is a pure function of (run seed, n_train), independent of
execution order, and histories stay bit-identical at any ``--jobs`` /
``--batch-size``.  Candidates are evaluated in declaration order and
ties break toward the earlier candidate.

A candidate that fails to fit (e.g. the GP's Cholesky on degenerate
data) is scored infinitely bad rather than aborting the run; when the
training set is too small to cross-validate at all, selection falls back
to the first candidate.
"""

from __future__ import annotations

import numpy as np

from repro.rng import as_generator, derive
from repro.surrogate.base import Surrogate
from repro.telemetry import counters, span

__all__ = ["SelectSurrogate", "cv_rmse"]


def fold_slices(n: int, k_folds: int, fold_seed: int) -> "list[np.ndarray] | None":
    """Deterministic k-fold index partition, or ``None`` if infeasible.

    Feasible means every fold leaves at least two training rows (the GP's
    minimum) and holds at least one validation row.
    """
    k = min(k_folds, n)
    if k < 2 or n - int(np.ceil(n / k)) < 2:
        return None
    perm = derive(fold_seed, "folds", n).permutation(n)
    return [np.asarray(chunk) for chunk in np.array_split(perm, k)]


def cv_rmse(
    builder,
    candidates: "tuple[str, ...]",
    X: np.ndarray,
    y: np.ndarray,
    k_folds: int,
    fold_seed: int,
) -> "dict[str, float] | None":
    """Per-candidate k-fold cross-validated RMSE on ``(X, y)``.

    ``builder(name)`` constructs a fresh unfitted candidate.  Returns
    ``None`` when the training set is too small to cross-validate; a
    candidate that raises during fit/predict scores ``inf`` (recorded on
    the ``surrogate.cv_failures`` counter) so one brittle family cannot
    abort the run.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    folds = fold_slices(len(y), k_folds, fold_seed)
    if folds is None:
        return None
    all_idx = np.arange(len(y))
    errors: dict[str, float] = {}
    with span("surrogate.cv", n_train=len(y), k=len(folds)):
        for name in candidates:
            sq_sum, n_val = 0.0, 0
            for val_idx in folds:
                train_idx = np.setdiff1d(all_idx, val_idx)
                try:
                    model = builder(name).fit(X[train_idx], y[train_idx])
                    pred = model.predict(X[val_idx])
                except Exception:  # noqa: BLE001 - scored, not raised
                    # A brittle candidate (GP Cholesky failure, degenerate
                    # fold) must not abort the run: score it unusable.
                    counters.inc("surrogate.cv_failures")
                    sq_sum, n_val = float("inf"), 1
                    break
                sq_sum += float(np.sum((pred - y[val_idx]) ** 2))
                n_val += len(val_idx)
            errors[name] = float(np.sqrt(sq_sum / n_val))
    return errors


class SelectSurrogate(Surrogate):
    """Per-refit cross-validated selection among registered candidates."""

    kind = "select"
    supports_partial_update = False

    def __init__(
        self,
        candidates: "tuple[str, ...]" = ("forest", "gp"),
        k_folds: int = 3,
        builder=None,
        seed=None,
    ) -> None:
        candidates = tuple(candidates)
        if not candidates:
            raise ValueError("select needs at least one candidate surrogate")
        if k_folds < 2:
            raise ValueError(f"k_folds must be >= 2, got {k_folds}")
        if builder is None:
            from repro.surrogate.registry import make_surrogate

            rng = as_generator(seed)
            builder = lambda name: make_surrogate(name, rng=rng)  # noqa: E731
        self.candidates = candidates
        self.k_folds = int(k_folds)
        self._builder = builder
        # One draw: fold assignment becomes a pure function of
        # (run seed, n_train) for the rest of this surrogate's life.
        self._fold_seed = int(as_generator(seed).integers(0, 2**63 - 1))
        self.chosen_name: "str | None" = None
        self.cv_errors: dict[str, float] = {}
        self.model: "Surrogate | None" = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SelectSurrogate":
        errors = cv_rmse(
            self._builder, self.candidates, X, y, self.k_folds, self._fold_seed
        )
        if errors is None:
            # Too little data to cross-validate: deterministic fallback.
            self.cv_errors = {}
            self.chosen_name = self.candidates[0]
        else:
            self.cv_errors = errors
            # min() keeps the first candidate on ties (declaration order).
            self.chosen_name = min(self.candidates, key=lambda n: errors[n])
        with span("surrogate.select", chosen=self.chosen_name, n_train=len(y)):
            self.model = self._builder(self.chosen_name).fit(X, y)
        counters.inc("surrogate.selections")
        return self

    def _fitted_model(self) -> Surrogate:
        if self.model is None:
            raise RuntimeError("select surrogate is not fitted; call fit() first")
        return self.model

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._fitted_model().predict(X)

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._fitted_model().predict_with_uncertainty(X)

    @property
    def training_targets(self) -> np.ndarray:
        return self._fitted_model().training_targets

    def serialize(self) -> dict[str, np.ndarray]:
        from repro.surrogate.serialize import embed_blob, surrogate_bytes

        model = self._fitted_model()
        payload = {
            "candidates": np.asarray(self.candidates),
            "k_folds": np.asarray(self.k_folds),
            "chosen": np.asarray(self.chosen_name),
            "chosen_blob": embed_blob(surrogate_bytes(model)),
        }
        if self.cv_errors:
            payload["cv_names"] = np.asarray(tuple(self.cv_errors))
            payload["cv_rmse"] = np.asarray(tuple(self.cv_errors.values()))
        return payload

    @classmethod
    def deserialize(cls, payload: dict[str, np.ndarray]) -> "SelectSurrogate":
        from repro.surrogate.serialize import extract_blob, load_surrogate

        model = cls(
            candidates=tuple(str(c) for c in payload["candidates"]),
            k_folds=int(payload["k_folds"]),
            builder=_unfit_builder,
        )
        model.chosen_name = str(payload["chosen"])
        model.model = load_surrogate(extract_blob(payload["chosen_blob"]))
        if "cv_names" in payload:
            model.cv_errors = {
                str(n): float(e)
                for n, e in zip(payload["cv_names"], payload["cv_rmse"])
            }
        return model


def _unfit_builder(name: str) -> Surrogate:
    """Builder for deserialized shells — they predict but cannot refit."""
    raise RuntimeError(
        "this select surrogate was loaded from disk and cannot refit; "
        "construct a fresh one (repro.surrogate.make_surrogate) to keep learning"
    )
