"""Adapters wrapping the existing model families behind the protocol.

Each adapter is pure delegation — no extra randomness, no re-scaling, no
caching of its own — so wrapping a model changes *nothing* about its
numbers.  In particular :class:`ForestSurrogate` is bit-identical to
driving the raw :class:`~repro.forest.RandomForestRegressor` (pinned by
``tests/test_trace_equivalence.py``): construction forwards the same
arguments, ``fit``/``predict`` forward the same arrays, and the forest's
vectorised pool scorers are re-exposed under the attribute names the
sampling layer discovers by ``getattr`` duck-typing.
"""

from __future__ import annotations

import numpy as np

from repro.forest import RandomForestRegressor
from repro.forest.serialize import forest_from_payload, forest_payload
from repro.surrogate.base import Surrogate

__all__ = ["ForestSurrogate", "GPSurrogate", "TransferSurrogate"]


class ForestSurrogate(Surrogate):
    """The paper's CART forest (:mod:`repro.forest`) behind the protocol."""

    kind = "forest"
    supports_partial_update = True

    def __init__(self, forest: RandomForestRegressor) -> None:
        self.forest = forest
        # Re-expose the forest's vectorised pool scorers so the sampling
        # layer's getattr duck-typing finds them (and the generation-
        # stamped pool cache keeps working).  A forest without them — the
        # reference implementation in the equivalence suite — stays
        # without them here.
        self.predict_with_uncertainty_pool = getattr(
            forest, "predict_with_uncertainty_pool", None
        )
        self.predict_pool = getattr(forest, "predict_pool", None)

    @classmethod
    def build(
        cls,
        n_estimators: int = 30,
        max_features="third",
        min_samples_leaf: int = 1,
        uncertainty: str = "across_trees",
        seed=None,
    ) -> "ForestSurrogate":
        """Construct a fresh forest exactly as the learner always has."""
        return cls(
            RandomForestRegressor(
                n_estimators=n_estimators,
                max_features=max_features,
                min_samples_leaf=min_samples_leaf,
                uncertainty=uncertainty,
                seed=seed,
            )
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ForestSurrogate":
        self.forest.fit(X, y)
        return self

    def update(
        self, X_new: np.ndarray, y_new: np.ndarray, refresh_fraction: float = 0.3
    ) -> "ForestSurrogate":
        self.forest.update(X_new, y_new, refresh_fraction)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.forest.predict(X)

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.forest.predict_with_uncertainty(X)

    @property
    def training_targets(self) -> np.ndarray:
        return self.forest.training_targets

    def serialize(self) -> dict[str, np.ndarray]:
        return forest_payload(self.forest)

    @classmethod
    def deserialize(cls, payload: dict[str, np.ndarray]) -> "ForestSurrogate":
        return cls(forest_from_payload(payload))


class GPSurrogate(Surrogate):
    """The exact-GP baseline (:mod:`repro.gp`) behind the protocol.

    Built exactly as the learner's historical ``model="gp"`` path did:
    one optimisation restart, ``log_targets=True`` (execution times are
    positive), hyper-restart noise drawn from the learner's shared
    stream.
    """

    kind = "gp"
    supports_partial_update = False

    #: Scalar state mirrored to/from the payload (name → attribute).
    _SCALARS = (
        ("y_mean", "_y_mean"),
        ("y_scale", "_y_scale"),
        ("lengthscale", "lengthscale_"),
        ("signal_variance", "signal_variance_"),
        ("noise_variance", "noise_variance_"),
    )
    _ARRAYS = (
        ("x_mean", "_x_mean"),
        ("x_scale", "_x_scale"),
        ("Z", "_Z"),
        ("alpha", "_alpha"),
        ("L", "_L"),
        ("y", "_y"),
    )

    def __init__(self, gp) -> None:
        self.gp = gp

    @classmethod
    def build(cls, seed=None, n_restarts: int = 1) -> "GPSurrogate":
        from repro.gp import GaussianProcessRegressor

        # log_targets keeps predicted times positive — see repro.gp.
        return cls(
            GaussianProcessRegressor(
                n_restarts=n_restarts, log_targets=True, seed=seed
            )
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GPSurrogate":
        self.gp.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.gp.predict(X)

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.gp.predict_with_uncertainty(X)

    @property
    def training_targets(self) -> np.ndarray:
        return self.gp.training_targets

    def serialize(self) -> dict[str, np.ndarray]:
        if not self.gp._fitted:
            raise ValueError("cannot serialize an unfitted GP surrogate")
        payload = {"log_targets": np.asarray(self.gp.log_targets)}
        for key, attr in self._SCALARS:
            payload[key] = np.asarray(getattr(self.gp, attr))
        for key, attr in self._ARRAYS:
            payload[key] = np.asarray(getattr(self.gp, attr))
        return payload

    @classmethod
    def deserialize(cls, payload: dict[str, np.ndarray]) -> "GPSurrogate":
        from repro.gp import GaussianProcessRegressor

        gp = GaussianProcessRegressor(
            n_restarts=0,
            optimize_hypers=False,
            log_targets=bool(payload["log_targets"]),
        )
        for key, attr in cls._SCALARS:
            setattr(gp, attr, float(payload[key]))
        for key, attr in cls._ARRAYS:
            setattr(gp, attr, np.asarray(payload[key], dtype=np.float64))
        gp._fitted = True
        return cls(gp)


class TransferSurrogate(Surrogate):
    """A frozen source model as a Bayesian prior over the target surface.

    Wraps :mod:`repro.transfer`'s portability idea — a model fit on an
    already-tuned platform carries rank information to a related one —
    as a first-class surrogate: predictions blend the frozen *source*
    model with a *target* forest fit on this run's measurements, with
    the prior's weight decaying as evidence accumulates::

        w      = prior_weight / (prior_weight + n_train)
        μ      = w·μ_src + (1−w)·μ_tgt
        σ²     = w·σ_src² + (1−w)·σ_tgt² + w(1−w)(μ_src − μ_tgt)²

    (mixture moment matching: the cross-model disagreement term keeps σ
    honest where source and target surfaces diverge).  ``prior_weight``
    is the pseudo-count of source observations the prior is worth.
    """

    kind = "transfer"
    supports_partial_update = False

    def __init__(
        self,
        source: Surrogate,
        prior_weight: float = 32.0,
        target_factory=None,
    ) -> None:
        if prior_weight <= 0:
            raise ValueError(f"prior_weight must be > 0, got {prior_weight}")
        self.source = source
        self.prior_weight = float(prior_weight)
        self._target_factory = (
            target_factory if target_factory is not None else ForestSurrogate.build
        )
        self.target: "Surrogate | None" = None
        self._n_train = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TransferSurrogate":
        self.target = self._target_factory()
        self.target.fit(X, y)
        self._n_train = len(np.asarray(y))
        return self

    def _blend(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.target is None:
            raise RuntimeError("transfer surrogate is not fitted; call fit() first")
        w = self.prior_weight / (self.prior_weight + self._n_train)
        mu_s, sd_s = self.source.predict_with_uncertainty(X)
        mu_t, sd_t = self.target.predict_with_uncertainty(X)
        mu = w * mu_s + (1.0 - w) * mu_t
        var = (
            w * sd_s**2
            + (1.0 - w) * sd_t**2
            + w * (1.0 - w) * (mu_s - mu_t) ** 2
        )
        return mu, np.sqrt(var)

    def predict(self, X: np.ndarray) -> np.ndarray:
        mu, _ = self._blend(X)
        return mu

    def predict_with_uncertainty(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._blend(X)

    @property
    def training_targets(self) -> np.ndarray:
        if self.target is None:
            raise RuntimeError("transfer surrogate is not fitted; call fit() first")
        return self.target.training_targets

    def serialize(self) -> dict[str, np.ndarray]:
        if self.target is None:
            raise ValueError("cannot serialize an unfitted transfer surrogate")
        from repro.surrogate.serialize import embed_blob, surrogate_bytes

        return {
            "prior_weight": np.asarray(self.prior_weight),
            "n_train": np.asarray(self._n_train),
            "source_blob": embed_blob(surrogate_bytes(self.source)),
            "target_blob": embed_blob(surrogate_bytes(self.target)),
        }

    @classmethod
    def deserialize(cls, payload: dict[str, np.ndarray]) -> "TransferSurrogate":
        from repro.surrogate.serialize import extract_blob, load_surrogate

        model = cls(
            source=load_surrogate(extract_blob(payload["source_blob"])),
            prior_weight=float(payload["prior_weight"]),
        )
        model.target = load_surrogate(extract_blob(payload["target_blob"]))
        model._n_train = int(payload["n_train"])
        return model
