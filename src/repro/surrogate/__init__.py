"""`repro.surrogate` — one protocol for every model that drives Algorithm 1.

The active-learning loop only needs ``(μ, σ)`` per pool point; this
package makes that contract formal (:class:`Surrogate`), registers every
model family by name (``forest``, ``gp``, ``select``, ``stack``,
``transfer``), and gives them one serialization envelope — so the
learner, the api, the CLI, and the tuning service swap surrogates with a
string.  See DESIGN.md §2i.
"""

from repro.surrogate.adapters import ForestSurrogate, GPSurrogate, TransferSurrogate
from repro.surrogate.base import Surrogate
from repro.surrogate.registry import (
    SURROGATE_NAMES,
    available_surrogates,
    make_surrogate,
    register_surrogate,
    supports_partial_update,
    surrogate_entry,
)
from repro.surrogate.select import SelectSurrogate
from repro.surrogate.serialize import load_surrogate, save_surrogate, surrogate_bytes
from repro.surrogate.stack import StackSurrogate

__all__ = [
    "Surrogate",
    "ForestSurrogate",
    "GPSurrogate",
    "TransferSurrogate",
    "SelectSurrogate",
    "StackSurrogate",
    "SURROGATE_NAMES",
    "register_surrogate",
    "make_surrogate",
    "available_surrogates",
    "supports_partial_update",
    "surrogate_entry",
    "save_surrogate",
    "load_surrogate",
    "surrogate_bytes",
]
