"""Trace analytics: the quantities EXPERIMENTS.md reports.

These helpers turn a set of :class:`AveragedTrace` objects into the
summary statistics the paper's prose uses: who wins at the end, where two
learning curves cross, the area under an error curve (sample-efficiency in
one number), and win matrices across a benchmark suite.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.aggregate import AveragedTrace

__all__ = [
    "final_ranking",
    "crossover_sample",
    "area_under_curve",
    "win_matrix",
]


def final_ranking(
    traces: "dict[str, AveragedTrace]", alpha_key: str
) -> list[tuple[str, float]]:
    """Strategies ordered by final RMSE, best first."""
    pairs = [(name, t.final_rmse(alpha_key)) for name, t in traces.items()]
    return sorted(pairs, key=lambda p: p[1])


def crossover_sample(
    trace_a: AveragedTrace,
    trace_b: AveragedTrace,
    alpha_key: str,
) -> "int | None":
    """First evaluation point after which ``a`` stays at or below ``b``.

    Returns the ``n_train`` value of that point, or ``None`` if ``a``
    never permanently overtakes ``b``.  Both traces must share the
    evaluation grid.
    """
    if not np.array_equal(trace_a.n_train, trace_b.n_train):
        raise ValueError("traces have different evaluation grids")
    a = trace_a.rmse_mean[alpha_key]
    b = trace_b.rmse_mean[alpha_key]
    below = a <= b
    for i in range(len(below)):
        if below[i:].all():
            return int(trace_a.n_train[i])
    return None


def area_under_curve(trace: AveragedTrace, alpha_key: str) -> float:
    """Trapezoidal area under the RMSE-vs-#samples curve.

    Lower is better: it rewards both reaching a low error and reaching it
    early.  Normalised by the sample span so values are comparable across
    evaluation schedules.
    """
    x = trace.n_train.astype(np.float64)
    y = trace.rmse_mean[alpha_key]
    if len(x) < 2:
        return float(y[0])
    span = x[-1] - x[0]
    return float(np.trapezoid(y, x) / span)


def win_matrix(
    per_benchmark: "dict[str, dict[str, AveragedTrace]]",
    alpha_key: str,
    metric: str = "final",
) -> dict[str, int]:
    """Count, per strategy, the benchmarks on which it ranks first.

    ``metric`` is ``"final"`` (final RMSE), ``"min"`` (best RMSE anywhere
    on the trace) or ``"auc"`` (area under the curve).
    """
    if metric not in ("final", "min", "auc"):
        raise ValueError(f"unknown metric {metric!r}")
    wins: dict[str, int] = {}
    for traces in per_benchmark.values():
        scores = {}
        for name, t in traces.items():
            if metric == "final":
                scores[name] = t.final_rmse(alpha_key)
            elif metric == "min":
                scores[name] = t.min_rmse(alpha_key)
            else:
                scores[name] = area_under_curve(t, alpha_key)
        winner = min(scores, key=scores.get)
        wins[winner] = wins.get(winner, 0) + 1
    return wins
