"""Experiment drivers reproducing the paper's evaluation (Sections III-IV).

The pipeline: :mod:`repro.experiments.runner` executes repeated
active-learning runs per (benchmark, strategy) and averages their traces;
:mod:`repro.experiments.figures` arranges those traces into the paper's
figures and tables; :mod:`repro.experiments.report` renders everything as
text series and CSV for a plot-free environment.
"""

from repro.experiments.config import ExperimentScale, SCALES
from repro.experiments.aggregate import AveragedTrace, average_histories
from repro.experiments.runner import (
    comparison_traces,
    prepare_data,
    strategy_trace,
)

__all__ = [
    "ExperimentScale",
    "SCALES",
    "AveragedTrace",
    "average_histories",
    "prepare_data",
    "strategy_trace",
    "comparison_traces",
]
