"""Text rendering of experiment results.

matplotlib is not available in this environment, so every figure is
regenerated as the *series it plots*: aligned numeric columns plus a coarse
ASCII trend line, exactly enough to read off "who wins, by how much, where
the crossovers fall".  CSV/JSON dumps are provided for external plotting.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "format_table",
    "series_table",
    "sparkline",
    "traces_to_csv",
    "dump_json",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # nan
            return "nan"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)


def sparkline(values: np.ndarray, log: bool = False) -> str:
    """One-line trend rendering of a series."""
    v = np.asarray(values, dtype=np.float64)
    if len(v) == 0:
        return ""
    if log:
        v = np.log10(np.maximum(v, 1e-30))
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(v)
    idx = ((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)).round().astype(int)
    return "".join(_SPARK_CHARS[i] for i in idx)


def series_table(
    x: np.ndarray,
    series: Mapping[str, np.ndarray],
    x_label: str,
    value_format: str = "{:.4f}",
    max_rows: int = 12,
    title: str | None = None,
) -> str:
    """Aligned multi-series table subsampled to ``max_rows`` x-positions.

    This is the textual equivalent of one figure panel: a column per
    strategy, a row per sampled x position, plus a sparkline row showing
    each full series' trend.
    """
    x = np.asarray(x)
    n = len(x)
    for name, v in series.items():
        if len(v) != n:
            raise ValueError(f"series {name!r} has {len(v)} points, x has {n}")
    if n <= max_rows:
        pick = np.arange(n)
    else:
        pick = np.unique(np.linspace(0, n - 1, max_rows).round().astype(int))
    headers = [x_label] + list(series)
    rows = []
    for i in pick:
        rows.append(
            [_fmt(x[i].item() if hasattr(x[i], "item") else x[i])]
            + [value_format.format(float(series[s][i])) for s in series]
        )
    rows.append(["trend"] + [sparkline(series[s]) for s in series])
    return format_table(headers, rows, title=title)


def traces_to_csv(
    x: np.ndarray, series: Mapping[str, np.ndarray], x_label: str
) -> str:
    """Full-resolution CSV of one figure panel."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([x_label] + list(series))
    for i in range(len(x)):
        writer.writerow(
            [float(x[i])] + [float(series[s][i]) for s in series]
        )
    return buf.getvalue()


def dump_json(obj: dict, path: str) -> None:
    """Persist a results dictionary as JSON, atomically.

    Routed through :func:`repro.engine.store.atomic_write_text` so an
    interrupted run can never leave a torn results file behind (the
    IO001 lint contract).  Deferred import: rendering helpers stay
    usable without pulling the engine in.
    """
    from repro.engine.store import atomic_write_text

    atomic_write_text(path, json.dumps(obj, indent=2, sort_keys=True))
