"""Drivers regenerating every table and figure of the paper.

Each ``figN`` function runs the required experiments and returns a
:class:`FigureResult` holding both the raw data (JSON-serialisable) and a
text rendering of the series the paper plots.  The benchmark harness under
``benchmarks/`` and the CLI both call these drivers; EXPERIMENTS.md records
the paper-versus-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.aggregate import AveragedTrace
from repro.experiments.config import ExperimentScale
from repro.experiments.report import format_table, series_table, sparkline
from repro.experiments.runner import prepare_data, comparison_traces, run_single
from repro.kernels import SPAPT_KERNEL_NAMES
from repro.machine import platform_table
from repro.metrics import speedup_at_level
from repro.rng import derive
from repro.sampling import STRATEGY_NAMES
from repro.tuning import model_based_tuning, surrogate_annotator
from repro.workloads import get_benchmark

__all__ = [
    "FigureResult",
    "tables_1_to_4",
    "fig2_fig3",
    "fig4_fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
]

APP_NAMES: tuple[str, ...] = ("kripke", "hypre")


def _surrogate_cfg(surrogate: str) -> "dict | None":
    """Figure-driver translation of ``--surrogate`` to config overrides.

    The default "forest" maps to *no* overrides so default job keys (and
    every cached trial and committed trace) stay byte-identical.
    """
    from repro.surrogate import surrogate_entry

    surrogate_entry(surrogate)  # fail fast with a did-you-mean
    return None if surrogate == "forest" else {"surrogate": surrogate}


@dataclass
class FigureResult:
    """Rendered panels plus raw data for one paper figure/table."""

    name: str
    description: str
    panels: dict[str, str] = field(default_factory=dict)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        header = f"=== {self.name}: {self.description} ==="
        body = "\n\n".join(
            f"--- {title} ---\n{text}" for title, text in self.panels.items()
        )
        return f"{header}\n\n{body}\n"


# ---------------------------------------------------------------------------
# Tables I-IV: parameter-space and platform inventories
# ---------------------------------------------------------------------------

def tables_1_to_4() -> FigureResult:
    """Tables I (ADI parameters), II (kripke), III (hypre), IV (platforms)."""
    result = FigureResult(
        name="Tables I-IV",
        description="parameter spaces and platform configuration",
    )
    adi = get_benchmark("adi")
    result.panels["Table I: compilation parameters of ADI kernel"] = (
        adi.space.describe()
    )
    kripke = get_benchmark("kripke")
    result.panels["Table II: parameters of kripke"] = kripke.space.describe()
    hypre = get_benchmark("hypre")
    result.panels["Table III: parameters of hypre"] = hypre.space.describe()
    result.panels["Table IV: node configuration of two platforms"] = platform_table()
    result.data = {
        "adi_n_parameters": adi.space.n_parameters,
        "adi_log10_size": adi.space.log10_size(),
        "kripke_size": kripke.space.size(),
        "hypre_size": hypre.space.size(),
    }
    return result


# ---------------------------------------------------------------------------
# Fig. 2 + Fig. 3: RMSE and CC vs #samples for the 12 kernels
# ---------------------------------------------------------------------------

def _comparison_panels(
    traces: dict[str, AveragedTrace], alpha_key: str
) -> tuple[str, str]:
    """(RMSE panel, CC panel) for one benchmark's strategy comparison."""
    any_trace = next(iter(traces.values()))
    rmse_panel = series_table(
        any_trace.n_train,
        {s: t.rmse_mean[alpha_key] for s, t in traces.items()},
        x_label="#samples",
    )
    cc_panel = series_table(
        any_trace.n_train,
        {s: t.cc_mean for s, t in traces.items()},
        x_label="#samples",
        value_format="{:.1f}",
    )
    return rmse_panel, cc_panel


def fig2_fig3(
    scale: ExperimentScale,
    kernels: "tuple[str, ...]" = SPAPT_KERNEL_NAMES,
    strategies: "tuple[str, ...]" = STRATEGY_NAMES,
    alpha: float = 0.01,
    seed: int = 0,
    surrogate: str = "forest",
) -> tuple[FigureResult, FigureResult]:
    """Fig. 2 (RMSE vs #samples) and Fig. 3 (CC vs #samples), 12 kernels.

    One experiment feeds both figures, as in the paper.  ``surrogate``
    swaps the model family under every strategy (registry-resolved).
    """
    overrides = _surrogate_cfg(surrogate)
    alpha_key = f"{alpha:g}"
    fig2 = FigureResult(
        name="Fig. 2",
        description=f"RMSE@{alpha:g} vs #samples, {len(kernels)} kernels, "
        f"{len(strategies)} strategies (scale={scale.name})",
    )
    fig3 = FigureResult(
        name="Fig. 3",
        description=f"cumulative labeling cost vs #samples (scale={scale.name})",
    )
    for kernel in kernels:
        traces = comparison_traces(
            kernel, strategies, scale, seed=seed, alpha=alpha,
            config_overrides=overrides,
        )
        rmse_panel, cc_panel = _comparison_panels(traces, alpha_key)
        fig2.panels[kernel] = rmse_panel
        fig3.panels[kernel] = cc_panel
        fig2.data[kernel] = {s: t.to_dict() for s, t in traces.items()}
    fig3.data = fig2.data
    return fig2, fig3


# ---------------------------------------------------------------------------
# Fig. 4 + Fig. 5: the two applications
# ---------------------------------------------------------------------------

def fig4_fig5(
    scale: ExperimentScale,
    strategies: "tuple[str, ...]" = STRATEGY_NAMES,
    alpha: float = 0.01,
    seed: int = 0,
    surrogate: str = "forest",
) -> tuple[FigureResult, FigureResult]:
    """Fig. 4 (RMSE and CC vs #samples) and Fig. 5 (RMSE vs CC) for the apps."""
    overrides = _surrogate_cfg(surrogate)
    alpha_key = f"{alpha:g}"
    fig4 = FigureResult(
        name="Fig. 4",
        description=f"RMSE@{alpha:g} and CC vs #samples: kripke, hypre "
        f"(scale={scale.name})",
    )
    fig5 = FigureResult(
        name="Fig. 5",
        description="RMSE vs cumulative time cost: kripke, hypre",
    )
    for app in APP_NAMES:
        traces = comparison_traces(
            app, strategies, scale, seed=seed, alpha=alpha,
            config_overrides=overrides,
        )
        rmse_panel, cc_panel = _comparison_panels(traces, alpha_key)
        fig4.panels[f"{app} (a) RMSE"] = rmse_panel
        fig4.panels[f"{app} (b) CC"] = cc_panel
        fig4.data[app] = {s: t.to_dict() for s, t in traces.items()}
        # Fig. 5 re-plots the same traces against cost instead of #samples;
        # costs differ per strategy, so render one block per strategy.
        rows = []
        for s, t in traces.items():
            rows.append(
                [
                    s,
                    f"{t.cc_mean[-1]:.0f}",
                    f"{t.rmse_mean[alpha_key][-1]:.4f}",
                    sparkline(t.rmse_mean[alpha_key]),
                ]
            )
        fig5.panels[app] = format_table(
            ["strategy", "final CC (s)", "final RMSE", "RMSE trend over cost"],
            rows,
        )
    fig5.data = fig4.data
    return fig4, fig5


# ---------------------------------------------------------------------------
# Fig. 6: PBUS vs PWU at alpha in {0.01, 0.05, 0.10} on atax
# ---------------------------------------------------------------------------

def fig6(
    scale: ExperimentScale,
    benchmark: str = "atax",
    alphas: "tuple[float, ...]" = (0.01, 0.05, 0.10),
    seed: int = 0,
    surrogate: str = "forest",
) -> FigureResult:
    """RMSE vs #samples for PBUS and PWU at each α (robustness check).

    ``surrogate`` swaps the model family, making this the natural
    harness for surrogate head-to-heads (see EXPERIMENTS.md).
    """
    overrides = _surrogate_cfg(surrogate)
    result = FigureResult(
        name="Fig. 6",
        description=f"PBUS vs PWU on {benchmark} at α ∈ {alphas} "
        f"(scale={scale.name})",
    )
    for a in alphas:
        key = f"{a:g}"
        traces = comparison_traces(
            benchmark, ("pbus", "pwu"), scale, seed=seed, alpha=a, alphas=(a,),
            config_overrides=overrides,
        )
        any_trace = next(iter(traces.values()))
        result.panels[f"alpha={a:g}"] = series_table(
            any_trace.n_train,
            {s: t.rmse_mean[key] for s, t in traces.items()},
            x_label="#samples",
        )
        result.data[key] = {s: t.to_dict() for s, t in traces.items()}
    return result


# ---------------------------------------------------------------------------
# Fig. 7: cost speedup of PWU over PBUS
# ---------------------------------------------------------------------------

def fig7(
    scale: ExperimentScale,
    benchmarks: "tuple[str, ...] | None" = None,
    alpha: float = 0.01,
    seed: int = 0,
    precomputed: "dict[str, dict[str, AveragedTrace]] | None" = None,
    surrogate: str = "forest",
) -> FigureResult:
    """Speedup of cumulative cost to reach a common low error level.

    The paper reports up to 21x, ~3x on average across the 14 benchmarks.
    Pass ``precomputed`` traces (from fig2/fig4 runs) to avoid re-running.
    """
    overrides = _surrogate_cfg(surrogate)
    if benchmarks is None:
        benchmarks = SPAPT_KERNEL_NAMES + APP_NAMES
    alpha_key = f"{alpha:g}"
    result = FigureResult(
        name="Fig. 7",
        description=f"CC speedup of PWU over PBUS at RMSE@{alpha:g} "
        f"(scale={scale.name})",
    )
    rows = []
    speedups = {}
    for bench in benchmarks:
        if precomputed is not None and bench in precomputed:
            traces = precomputed[bench]
        else:
            traces = comparison_traces(
                bench, ("pbus", "pwu"), scale, seed=seed, alpha=alpha,
                config_overrides=overrides,
            )
        sp, level = speedup_at_level(
            traces["pbus"].cc_mean,
            traces["pbus"].rmse_mean[alpha_key],
            traces["pwu"].cc_mean,
            traces["pwu"].rmse_mean[alpha_key],
        )
        speedups[bench] = sp
        rows.append([bench, f"{level:.4f}", f"{sp:.2f}x" if sp == sp else "n/a"])
    finite = [s for s in speedups.values() if s == s]
    geo = float(np.exp(np.mean(np.log(finite)))) if finite else float("nan")
    rows.append(["(geo-mean)", "", f"{geo:.2f}x"])
    rows.append(["(max)", "", f"{max(finite):.2f}x" if finite else "n/a"])
    result.panels["speedup of CC (PBUS / PWU)"] = format_table(
        ["benchmark", "error level", "speedup"], rows
    )
    result.data = {"speedups": speedups, "geo_mean": geo}
    return result


# ---------------------------------------------------------------------------
# Fig. 8: direct tuning vs tuning with a surrogate annotator
# ---------------------------------------------------------------------------

def fig8(
    scale: ExperimentScale,
    benchmark_name: str = "atax",
    n_tuning_iterations: int = 40,
    seed: int = 0,
    surrogate: str = "forest",
) -> FigureResult:
    """Case study: surrogate-annotated tuning tracks ground-truth tuning."""
    overrides = _surrogate_cfg(surrogate)
    result = FigureResult(
        name="Fig. 8",
        description=f"direct vs surrogate tuning on {benchmark_name} "
        f"(scale={scale.name})",
    )
    benchmark = get_benchmark(benchmark_name)
    rng = derive(seed, "fig8", benchmark_name)
    pool, X_test, y_test = prepare_data(benchmark, scale, rng)

    # Build the surrogate with PWU active learning (the paper's method).
    history = run_single(
        benchmark, "pwu", scale, pool, X_test, y_test, rng, alpha=0.05,
        config_overrides=overrides,
    )
    # Refit a forest on the final training set for the annotator role.
    from repro.forest import RandomForestRegressor

    selected = [i for rec in history.records for i in rec.selected]
    X_train = pool.X[np.asarray(sorted(set(selected)), dtype=np.intp)]
    y_train = benchmark.measure_encoded(X_train, rng)
    surrogate = RandomForestRegressor(
        n_estimators=scale.n_estimators, seed=rng
    ).fit(X_train, y_train)

    direct = model_based_tuning(
        benchmark,
        X_test,
        annotate=lambda X: benchmark.measure_encoded(X, rng),
        annotator_name="ground truth",
        n_iterations=n_tuning_iterations,
        seed=derive(seed, "fig8-direct"),
    )
    via_model = model_based_tuning(
        benchmark,
        X_test,
        annotate=surrogate_annotator(surrogate),
        annotator_name="surrogate model",
        n_iterations=n_tuning_iterations,
        seed=derive(seed, "fig8-surrogate"),
    )
    result.panels["best true time found so far"] = series_table(
        direct.n_evaluated,
        {
            "ground truth": direct.best_true_time,
            "surrogate": via_model.best_true_time,
        },
        x_label="#evaluations",
    )
    result.data = {
        "direct_final": direct.final_best(),
        "surrogate_final": via_model.final_best(),
        "direct": direct.best_true_time.tolist(),
        "surrogate": via_model.best_true_time.tolist(),
    }
    return result


# ---------------------------------------------------------------------------
# Fig. 9: distribution of selected samples in the (μ, σ) plane
# ---------------------------------------------------------------------------

def _occupancy_grid(
    mu: np.ndarray,
    sigma: np.ndarray,
    selected_mask: np.ndarray,
    n_bins: int = 10,
) -> str:
    """ASCII density map: '·' pool-only cells, digits = #selected in cell."""
    mu_edges = np.quantile(mu, np.linspace(0, 1, n_bins + 1))
    sg_edges = np.quantile(sigma, np.linspace(0, 1, n_bins + 1))
    mu_bin = np.clip(np.searchsorted(mu_edges, mu, side="right") - 1, 0, n_bins - 1)
    sg_bin = np.clip(np.searchsorted(sg_edges, sigma, side="right") - 1, 0, n_bins - 1)
    lines = ["(rows: uncertainty high→low; cols: predicted time low→high)"]
    for r in range(n_bins - 1, -1, -1):
        cells = []
        for c in range(n_bins):
            in_cell = (sg_bin == r) & (mu_bin == c)
            k = int((in_cell & selected_mask).sum())
            if k == 0:
                cells.append("·" if in_cell.any() else " ")
            else:
                cells.append(str(min(k, 9)))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def fig9(
    scale: ExperimentScale,
    benchmark_name: str = "atax",
    seed: int = 0,
    surrogate: str = "forest",
) -> FigureResult:
    """Where PBUS and PWU spend their selections in the (μ, σ) plane.

    The paper's qualitative finding: PBUS piles onto low-uncertainty
    samples; PWU spreads into the high-uncertainty region while staying
    performance-biased.
    """
    result = FigureResult(
        name="Fig. 9",
        description=f"selected-sample distribution, PBUS vs PWU on "
        f"{benchmark_name} (scale={scale.name})",
    )
    overrides = _surrogate_cfg(surrogate)
    benchmark = get_benchmark(benchmark_name)
    from repro.forest import RandomForestRegressor

    data = {}
    for strategy in ("pbus", "pwu"):
        rng = derive(seed, "fig9", strategy)
        pool, X_test, y_test = prepare_data(benchmark, scale, rng)
        history = run_single(
            benchmark, strategy, scale, pool, X_test, y_test, rng, alpha=0.05,
            config_overrides=overrides,
        )
        # Selected samples plotted at their *selection-time* (μ, σ) — the
        # paper's coordinates.  The grey pool backdrop uses a model fit on
        # the run's full training set.
        sel_mu, sel_sigma = history.selection_statistics()
        selected = np.asarray(
            sorted(set(history.all_selected(include_cold_start=True))),
            dtype=np.intp,
        )
        X_sel = pool.X[selected]
        y_sel = benchmark.measure_encoded(X_sel, rng)
        model = RandomForestRegressor(
            n_estimators=scale.n_estimators, seed=rng
        ).fit(X_sel, y_sel)
        pool_mu, pool_sigma = model.predict_with_uncertainty(pool.X)

        mu = np.concatenate([pool_mu, sel_mu])
        sigma = np.concatenate([pool_sigma, sel_sigma])
        mask = np.zeros(len(mu), dtype=bool)
        mask[len(pool_mu):] = True

        median_sigma = float(np.median(pool_sigma))
        frac_high_sigma = float((sel_sigma > median_sigma).mean())
        mean_sel_sigma = float(sel_sigma.mean())
        result.panels[strategy.upper()] = (
            _occupancy_grid(mu, sigma, mask)
            + f"\nmean selection-time sigma: {mean_sel_sigma:.4f}"
            f"\nfraction of selections above the pool's median sigma: "
            f"{frac_high_sigma:.2f}"
        )
        data[strategy] = {
            "frac_high_sigma": frac_high_sigma,
            "mean_selection_sigma": mean_sel_sigma,
            "n_selected": int(len(sel_mu)),
        }
    result.data = data
    return result
