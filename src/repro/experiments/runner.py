"""Executing the paper's protocol: data preparation and repeated runs.

:func:`prepare_data` and :func:`run_single` are the process-local
primitives (one split, one Algorithm 1 run); :func:`strategy_trace` and
:func:`comparison_traces` schedule repeated trials through the execution
engine (:mod:`repro.engine`) for parallelism, caching, and resume.

Callers wanting the typed facade use :func:`repro.api.run` /
:func:`repro.api.compare`; the historical ``run_strategy`` /
``run_comparison`` shims have been removed.
"""

from __future__ import annotations

import numpy as np

from repro.active import ActiveLearner, LearnerConfig, LearningHistory
from repro.experiments.aggregate import AveragedTrace, average_histories
from repro.experiments.config import ExperimentScale
from repro.rng import derive
from repro.sampling import get_strategy
from repro.space import DataPool
from repro.workloads import Benchmark

__all__ = [
    "prepare_data",
    "run_single",
    "strategy_trace",
    "comparison_traces",
]

#: The α values every run evaluates (Section III-D).
DEFAULT_ALPHAS: tuple[float, ...] = (0.01, 0.05, 0.10)


def _histories(jobs, results) -> "list[LearningHistory]":
    """Unwrap the engine's TrialResults in job order, or fail loudly.

    The paper's protocol averages a *fixed* number of trials; silently
    averaging fewer because some failed would skew every downstream
    figure.  So permanent job failures (retries exhausted) surface here
    as one :class:`~repro.engine.EngineJobError` naming each failed job —
    after the whole batch ran, so completed siblings are already in the
    store and a fixed re-run resumes instead of recomputing.
    """
    from repro.engine import EngineJobError

    failed = [results[j.key()] for j in jobs if not results[j.key()].ok]
    if failed:
        lines = "; ".join(
            f"{r.key[:12]} after {r.attempts} attempt(s): {r.error}"
            for r in failed
        )
        raise EngineJobError(
            f"{len(failed)}/{len(jobs)} trial job(s) failed permanently "
            f"({lines}); completed trials are preserved in the result "
            "store — fix the cause and re-run to resume",
            failures=tuple(failed),
        )
    return [results[j.key()].history for j in jobs]


def _effective_sizes(
    benchmark: Benchmark, pool_size: int, test_size: int
) -> tuple[int, int]:
    """Shrink pool/test proportionally when the space is small (hypre/kripke).

    The paper draws 10,000 unique configurations; kripke's space holds only
    2,304 and hypre's 3,024, so for those the pool/test split covers (most
    of) the whole space at the same 70/30 ratio.
    """
    total = benchmark.space.size()
    want = pool_size + test_size
    if want <= total:
        return pool_size, test_size
    pool = int(total * pool_size / want)
    test = total - pool
    return pool, test


def prepare_data(
    benchmark: Benchmark,
    scale: ExperimentScale,
    seed=None,
) -> tuple[DataPool, np.ndarray, np.ndarray]:
    """Draw the pool and the pre-labeled test set (Section III-C/D).

    Returns ``(pool, X_test, y_test)``; test labels are measured in advance,
    exactly as the paper does, so evaluation adds no labeling cost.
    """
    rng = derive(seed, "prepare", benchmark.name)
    pool_size, test_size = _effective_sizes(
        benchmark, scale.pool_size, scale.test_size
    )
    X = benchmark.space.sample_unique_encoded(rng, pool_size + test_size)
    perm = rng.permutation(len(X))
    X_pool = X[perm[:pool_size]]
    X_test = X[perm[pool_size:]]
    # One fused batch evaluation labels the whole test set (bit-identical
    # to the historical measure_encoded call — same single noise draw).
    y_test = benchmark.evaluate_batch(X_test, rng)
    return DataPool(X_pool), X_test, y_test


def _learner_config(
    scale: ExperimentScale,
    alphas: tuple[float, ...],
    overrides: "dict | None" = None,
) -> LearnerConfig:
    kwargs = dict(
        n_init=scale.n_init,
        n_batch=scale.n_batch,
        n_max=scale.n_max,
        alphas=alphas,
        eval_every=scale.eval_every,
        n_estimators=scale.n_estimators,
    )
    if overrides:
        kwargs.update(overrides)
    return LearnerConfig(**kwargs)


def run_single(
    benchmark: Benchmark,
    strategy_name: "str | object",
    scale: ExperimentScale,
    pool: DataPool,
    X_test: np.ndarray,
    y_test: np.ndarray,
    seed,
    alpha: float = 0.05,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    config_overrides: "dict | None" = None,
) -> LearningHistory:
    """One Algorithm 1 run of one strategy on a prepared pool.

    ``strategy_name`` may also be a pre-built strategy instance (used by
    the ablation benchmarks to sweep strategy hyper-parameters);
    ``config_overrides`` patches individual :class:`LearnerConfig` fields
    (e.g. ``{"retrain": "partial"}``).
    """
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    if isinstance(strategy_name, str):
        strategy = get_strategy(strategy_name, alpha=alpha)
    else:
        strategy = strategy_name
    pool.reset()
    learner = ActiveLearner(
        pool=pool,
        evaluate=lambda X: benchmark.evaluate_batch(X, rng),
        X_test=X_test,
        y_test=y_test,
        strategy=strategy,
        config=_learner_config(scale, alphas, config_overrides),
        seed=rng,
    )
    return learner.run()


def strategy_trace(
    benchmark_name: str,
    strategy_name: "str | object",
    scale: ExperimentScale,
    seed: int = 0,
    alpha: float = 0.05,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    config_overrides: "dict | None" = None,
    label: "str | None" = None,
    engine: "object | None" = None,
) -> AveragedTrace:
    """Repeat one strategy ``scale.n_trials`` times and average (Section IV).

    Trials are scheduled through :mod:`repro.engine`: each becomes a
    content-addressed :class:`~repro.engine.jobs.TrialJob` whose RNG derives
    from the job key, so the averaged trace is bit-identical whether the
    trials run serially, across a process pool, or partially from the
    result store.  ``engine`` overrides the ambient
    :func:`~repro.engine.context.current_engine` configuration.
    """
    from repro.engine import run_jobs, trial_jobs

    if label is None:
        label = strategy_name if isinstance(strategy_name, str) else strategy_name.name
    jobs = trial_jobs(
        benchmark_name,
        strategy_name,
        scale,
        seed=seed,
        alpha=alpha,
        alphas=alphas,
        config_overrides=config_overrides,
    )
    results, _ = run_jobs(jobs, config=engine)
    return average_histories(label, _histories(jobs, results))


def comparison_traces(
    benchmark_name: str,
    strategy_names: "tuple[str, ...]",
    scale: ExperimentScale,
    seed: int = 0,
    alpha: float = 0.05,
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    config_overrides: "dict | None" = None,
    engine: "object | None" = None,
) -> dict[str, AveragedTrace]:
    """All strategies on one benchmark with a shared pool/test split.

    Every (strategy, trial) job is submitted in a single engine batch, so
    parallelism spans strategies — not just trials within one strategy —
    and the pool/test split (including the up-front ``y_test`` measurement)
    is prepared once per process per benchmark rather than once per
    strategy, via the executor's prepared-data cache.
    ``config_overrides`` patches :class:`LearnerConfig` fields for every
    strategy (e.g. ``{"surrogate": "gp"}`` to compare strategies under a
    different surrogate family).
    """
    from repro.engine import run_jobs, trial_jobs

    per_strategy = {
        s: trial_jobs(
            benchmark_name,
            s,
            scale,
            seed=seed,
            alpha=alpha,
            alphas=alphas,
            config_overrides=config_overrides,
        )
        for s in strategy_names
    }
    all_jobs = [job for jobs in per_strategy.values() for job in jobs]
    results, _ = run_jobs(all_jobs, config=engine)
    return {
        s: average_histories(s, _histories(jobs, results))
        for s, jobs in per_strategy.items()
    }
