"""Averaging repeated active-learning trials (Section IV: 10 runs averaged)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.active import LearningHistory

__all__ = ["AveragedTrace", "average_histories"]


@dataclass(frozen=True)
class AveragedTrace:
    """Trial-averaged learning trace for one (benchmark, strategy) pair."""

    strategy: str
    n_train: np.ndarray
    cc_mean: np.ndarray
    cc_std: np.ndarray
    #: alpha key → (mean, std) RMSE arrays aligned with ``n_train``.
    rmse_mean: dict[str, np.ndarray]
    rmse_std: dict[str, np.ndarray]
    n_trials: int

    def final_rmse(self, alpha_key: str) -> float:
        return float(self.rmse_mean[alpha_key][-1])

    def min_rmse(self, alpha_key: str) -> float:
        return float(self.rmse_mean[alpha_key].min())

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "n_trials": self.n_trials,
            "n_train": self.n_train.tolist(),
            "cc_mean": self.cc_mean.tolist(),
            "cc_std": self.cc_std.tolist(),
            "rmse_mean": {k: v.tolist() for k, v in self.rmse_mean.items()},
            "rmse_std": {k: v.tolist() for k, v in self.rmse_std.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AveragedTrace":
        """Inverse of :meth:`to_dict` (rehydrating persisted results)."""
        return cls(
            strategy=d["strategy"],
            n_train=np.asarray(d["n_train"]),
            cc_mean=np.asarray(d["cc_mean"], dtype=np.float64),
            cc_std=np.asarray(d["cc_std"], dtype=np.float64),
            rmse_mean={k: np.asarray(v, dtype=np.float64) for k, v in d["rmse_mean"].items()},
            rmse_std={k: np.asarray(v, dtype=np.float64) for k, v in d["rmse_std"].items()},
            n_trials=int(d["n_trials"]),
        )


def average_histories(
    strategy: str, histories: "list[LearningHistory]"
) -> AveragedTrace:
    """Average aligned traces from repeated trials.

    All trials of one configuration share the evaluation schedule
    (same n_init/n_batch/eval_every), so their ``n_train`` axes must agree —
    a mismatch indicates a protocol bug and raises.
    """
    if not histories:
        raise ValueError("need at least one history to average")
    base = histories[0].n_train
    for h in histories[1:]:
        if not np.array_equal(h.n_train, base):
            raise ValueError(
                "trial evaluation points differ; traces cannot be averaged"
            )
    alpha_keys = histories[0].alpha_keys()
    cc = np.stack([h.cumulative_cost for h in histories])
    rmse = {
        k: np.stack([h.rmse_series(k) for h in histories]) for k in alpha_keys
    }
    return AveragedTrace(
        strategy=strategy,
        n_train=base.copy(),
        cc_mean=cc.mean(axis=0),
        cc_std=cc.std(axis=0),
        rmse_mean={k: v.mean(axis=0) for k, v in rmse.items()},
        rmse_std={k: v.std(axis=0) for k, v in rmse.items()},
        n_trials=len(histories),
    )
