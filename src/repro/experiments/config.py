"""Experiment scales.

The paper's protocol (Section III-D): 10,000 uniform configurations split
into a 7,000 pool and 3,000 test set; n_init 10, batch 1, n_max 500;
every run repeated 10 times and averaged.  That protocol is available as
the ``paper`` scale; the ``quick`` and ``smoke`` scales shrink every axis
so the whole figure suite regenerates in minutes on one core, preserving
the comparisons' shape.

Select a scale globally with the ``REPRO_SCALE`` environment variable
(used by the pytest benchmarks) or pass one explicitly to the drivers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "SCALES", "scale_from_env"]


@dataclass(frozen=True)
class ExperimentScale:
    """All size knobs of the evaluation protocol."""

    name: str
    pool_size: int = 7000
    test_size: int = 3000
    n_init: int = 10
    n_batch: int = 1
    n_max: int = 500
    n_trials: int = 10
    eval_every: int = 1
    n_estimators: int = 30

    def __post_init__(self) -> None:
        if self.pool_size < self.n_max:
            raise ValueError("pool must be at least n_max")
        if self.test_size < 100:
            raise ValueError("test set must hold at least 100 samples (alpha=0.01)")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")


SCALES: dict[str, ExperimentScale] = {
    "paper": ExperimentScale(name="paper"),
    "quick": ExperimentScale(
        name="quick",
        pool_size=1000,
        test_size=500,
        n_max=120,
        n_trials=3,
        eval_every=5,
        n_estimators=25,
    ),
    "smoke": ExperimentScale(
        name="smoke",
        pool_size=400,
        test_size=300,
        n_max=60,
        n_trials=2,
        eval_every=10,
        n_estimators=15,
    ),
}


def scale_from_env(default: str = "quick") -> ExperimentScale:
    """Resolve the scale from ``REPRO_SCALE`` (default ``quick``)."""
    # repro: allow[DET004] harness-level scale selection resolved before any job; the chosen scale is recorded in every result
    name = os.environ.get("REPRO_SCALE", default)
    try:
        return SCALES[name]
    except KeyError:
        raise KeyError(
            f"REPRO_SCALE={name!r} unknown; choose from {', '.join(SCALES)}"
        ) from None
