"""repro — reproduction of *An Active Learning Method for Empirical
Modeling in Performance Tuning* (PWU sampling, IPPS 2020).

Public API quick tour
---------------------

The typed facade in :mod:`repro.api` is the documented way to run
experiments:

>>> import repro.api
>>> result = repro.api.run("atax", "pwu", seed=0, budget=60, scale="smoke")
>>> result.metrics["final_rmse"]["0.05"]  # doctest: +SKIP
0.0123

The layers underneath remain importable for custom studies:

>>> from repro import get_benchmark, get_strategy, ActiveLearner, LearnerConfig
>>> from repro.experiments import SCALES, prepare_data
>>> bench = get_benchmark("atax")
>>> pool, X_test, y_test = prepare_data(bench, SCALES["smoke"], seed=0)
>>> learner = ActiveLearner(
...     pool=pool,
...     evaluate=lambda X: bench.measure_encoded(X, 0),
...     X_test=X_test, y_test=y_test,
...     strategy=get_strategy("pwu", alpha=0.05),
...     config=LearnerConfig(n_max=60, eval_every=10),
...     seed=0,
... )
>>> history = learner.run()

Layers (bottom-up):

* :mod:`repro.space` — parameter spaces, encoding, the data pool
* :mod:`repro.forest` — random-forest regression with uncertainty
* :mod:`repro.machine` / :mod:`repro.costmodel` / :mod:`repro.noise` —
  the simulated measurement substrate
* :mod:`repro.kernels` / :mod:`repro.apps` — the 12 SPAPT kernels,
  kripke and hypre
* :mod:`repro.sampling` — the six strategies incl. PWU (the contribution)
* :mod:`repro.active` — Algorithm 1
* :mod:`repro.metrics` — RMSE@α (Eq. 2), cumulative cost (Eq. 3)
* :mod:`repro.tuning` — model-based tuning (Fig. 8)
* :mod:`repro.experiments` — figure/table drivers and the CLI
* :mod:`repro.engine` — parallel trial scheduler with a persistent,
  content-addressed result store (``--jobs`` / ``--cache-dir``)
* :mod:`repro.telemetry` — structured spans/counters with JSONL export
  (``--trace`` / ``REPRO_TRACE``)
* :mod:`repro.api` — the typed facade over all of the above
"""

from repro._version import __version__
from repro.active import ActiveLearner, LearnerConfig, LearningHistory
from repro.forest import RandomForestRegressor, load_forest, save_forest
from repro.gp import GaussianProcessRegressor
from repro.metrics import (
    cumulative_cost,
    top_alpha_rmse,
    uncertainty_calibration,
)
from repro.sampling import (
    STRATEGY_NAMES,
    PWUSampling,
    available_strategies,
    get_strategy,
    make_strategy,
    pwu_scores,
    register_strategy,
)
from repro.space import (
    BooleanParameter,
    CategoricalParameter,
    DataPool,
    IntegerParameter,
    OrdinalParameter,
    ParameterSpace,
)
from repro.workloads import Benchmark, all_benchmarks, get_benchmark

__all__ = [
    "__version__",
    # spaces
    "ParameterSpace",
    "IntegerParameter",
    "OrdinalParameter",
    "CategoricalParameter",
    "BooleanParameter",
    "DataPool",
    # models
    "RandomForestRegressor",
    "GaussianProcessRegressor",
    "save_forest",
    "load_forest",
    # strategies
    "STRATEGY_NAMES",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "make_strategy",
    "PWUSampling",
    "pwu_scores",
    # loop
    "ActiveLearner",
    "LearnerConfig",
    "LearningHistory",
    # metrics
    "top_alpha_rmse",
    "cumulative_cost",
    "uncertainty_calibration",
    # workloads
    "Benchmark",
    "get_benchmark",
    "all_benchmarks",
]
