"""Working-set based cache-behaviour estimates (vectorised).

The cost model never simulates individual accesses; it estimates, for a loop
tile with working set ``ws`` bytes, the *average* load-to-use latency on a
given machine.  The miss fraction at a level of size ``S`` uses the smooth
step

.. math:: f(ws) = \\frac{1}{1 + (S / ws)^k}

which is ~0 when the working set fits comfortably, ~1 when it vastly
exceeds the level, and transitions over roughly a decade of working-set
sizes (matching the soft knees of measured cache curves; ``k`` controls the
sharpness).
"""

from __future__ import annotations

import numpy as np

from repro.machine.model import MachineModel

__all__ = ["miss_fraction", "average_access_latency"]


def miss_fraction(
    working_set_bytes: np.ndarray, level_size_bytes: float, sharpness: float = 2.0
) -> np.ndarray:
    """Fraction of accesses missing a cache of ``level_size_bytes``.

    Vectorised over ``working_set_bytes``; values in ``(0, 1)``.
    """
    ws = np.asarray(working_set_bytes, dtype=np.float64)
    if np.any(ws <= 0):
        raise ValueError("working-set sizes must be positive")
    if level_size_bytes <= 0:
        raise ValueError("cache size must be positive")
    ratio = level_size_bytes / ws
    return 1.0 / (1.0 + ratio**sharpness)


def average_access_latency(
    machine: MachineModel,
    working_set_bytes: np.ndarray,
    sharpness: float = 2.0,
) -> np.ndarray:
    """Expected cycles per access for a streaming tile of the given working set.

    The hierarchy is folded level by level: every access pays the L1
    latency; the fraction missing L1 additionally pays (L2 − L1); and so on
    out to memory.  This reproduces the familiar staircase of latency versus
    working-set-size plots.
    """
    ws = np.asarray(working_set_bytes, dtype=np.float64)
    caches = machine.caches
    latency = np.full_like(ws, caches[0].latency_cycles, dtype=np.float64)
    level_lat = [c.latency_cycles for c in caches] + [machine.memory_latency_cycles]
    for i, cache in enumerate(caches):
        extra = level_lat[i + 1] - level_lat[i]
        latency = latency + extra * miss_fraction(ws, cache.size_bytes, sharpness)
    return latency
