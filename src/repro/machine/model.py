"""Dataclasses describing a compute node and its interconnect."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CacheLevel", "NetworkModel", "MachineModel"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy."""

    name: str
    size_bytes: int
    latency_cycles: float  # load-to-use latency when hitting this level
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"cache {self.name}: size must be positive")
        if self.latency_cycles <= 0:
            raise ValueError(f"cache {self.name}: latency must be positive")
        if self.line_bytes <= 0:
            raise ValueError(f"cache {self.name}: line size must be positive")


@dataclass(frozen=True)
class NetworkModel:
    """First-order α-β model of the interconnect.

    ``alpha`` is the per-message latency in seconds, ``beta`` the inverse
    bandwidth in seconds per byte.  A 100 Gbps Omni-Path link has
    β ≈ 8e-11 s/B and α ≈ 1 µs.
    """

    alpha_s: float
    beta_s_per_byte: float

    def __post_init__(self) -> None:
        if self.alpha_s < 0 or self.beta_s_per_byte < 0:
            raise ValueError("network parameters must be non-negative")

    def message_time(self, n_bytes: float) -> float:
        """Point-to-point time for one message of ``n_bytes``."""
        return self.alpha_s + self.beta_s_per_byte * float(n_bytes)


@dataclass(frozen=True)
class MachineModel:
    """A compute node: clock, compute throughput, memory system, network."""

    name: str
    cores: int
    frequency_hz: float
    caches: tuple[CacheLevel, ...]
    memory_latency_cycles: float
    memory_bandwidth_bytes_s: float
    memory_bytes: int
    flops_per_cycle: float = 4.0  # scalar FMA throughput per core
    vector_width: int = 4  # doubles per SIMD lane group (AVX2)
    network: NetworkModel | None = None
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("machine must have at least one core")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if len(self.caches) == 0:
            raise ValueError("machine needs at least one cache level")
        sizes = [c.size_bytes for c in self.caches]
        if sizes != sorted(sizes):
            raise ValueError("cache levels must be ordered smallest to largest")
        lats = [c.latency_cycles for c in self.caches]
        if lats != sorted(lats):
            raise ValueError("cache latencies must be non-decreasing with level")
        if self.memory_latency_cycles <= self.caches[-1].latency_cycles:
            raise ValueError("memory latency must exceed last-level-cache latency")

    def cycles_to_seconds(self, cycles: float) -> float:
        return float(cycles) / self.frequency_hz

    def peak_flops(self) -> float:
        """Node peak (all cores, vectorised)."""
        return self.cores * self.frequency_hz * self.flops_per_cycle * self.vector_width
