"""The paper's two platforms (Table IV), as machine models.

================  ===================  ====================
Specification     Platform A           Platform B
================  ===================  ====================
CPU type          E5-2680 v3           E5-2680 v4
CPU frequency     2.5 GHz              2.4 GHz
#core             24                   28
memory            64 GB                128 GB
network           —                    100 Gbps OPA
================  ===================  ====================

Cache sizes, latencies and bandwidths are the published Haswell-EP /
Broadwell-EP figures; they parameterise the simulated measurement substrate,
they are not themselves tuned.
"""

from __future__ import annotations

from repro.machine.model import CacheLevel, MachineModel, NetworkModel

__all__ = ["PLATFORM_A", "PLATFORM_B", "platform_table"]

GB = 1024**3

#: Platform A — kernel measurements (SPAPT, serial, single node).
PLATFORM_A = MachineModel(
    name="Platform A (E5-2680 v3)",
    cores=24,
    frequency_hz=2.5e9,
    caches=(
        CacheLevel("L1d", 32 * 1024, latency_cycles=4.0),
        CacheLevel("L2", 256 * 1024, latency_cycles=12.0),
        CacheLevel("L3", 30 * 1024 * 1024, latency_cycles=34.0),
    ),
    memory_latency_cycles=200.0,
    memory_bandwidth_bytes_s=60e9,
    memory_bytes=64 * GB,
    flops_per_cycle=4.0,
    vector_width=4,
    network=None,
)

#: Platform B — application measurements (kripke/hypre, MPI over OPA).
PLATFORM_B = MachineModel(
    name="Platform B (E5-2680 v4)",
    cores=28,
    frequency_hz=2.4e9,
    caches=(
        CacheLevel("L1d", 32 * 1024, latency_cycles=4.0),
        CacheLevel("L2", 256 * 1024, latency_cycles=12.0),
        CacheLevel("L3", 35 * 1024 * 1024, latency_cycles=36.0),
    ),
    memory_latency_cycles=210.0,
    memory_bandwidth_bytes_s=68e9,
    memory_bytes=128 * GB,
    flops_per_cycle=4.0,
    vector_width=4,
    network=NetworkModel(alpha_s=1.0e-6, beta_s_per_byte=8.0e-11),
)


def platform_table() -> str:
    """Render Table IV (node configuration of the two platforms)."""
    rows = [
        ("Specification", "Platform A", "Platform B"),
        ("CPU type", "E5-2680 v3", "E5-2680 v4"),
        (
            "CPU frequency",
            f"{PLATFORM_A.frequency_hz / 1e9:.1f}GHz",
            f"{PLATFORM_B.frequency_hz / 1e9:.1f}GHz",
        ),
        ("#core", str(PLATFORM_A.cores), str(PLATFORM_B.cores)),
        (
            "memory",
            f"{PLATFORM_A.memory_bytes // GB}GB",
            f"{PLATFORM_B.memory_bytes // GB}GB",
        ),
        ("network", "-", "100Gbps OPA"),
    ]
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
