"""Machine models standing in for the paper's two platforms (Table IV).

The paper times kernels on a Xeon E5-2680 v3 node (Platform A) and MPI
applications on an E5-2680 v4 cluster with 100 Gbps Omni-Path (Platform B).
Neither is available here, so the cost models in :mod:`repro.costmodel` and
:mod:`repro.apps` are parameterised by these machine descriptions: cache
hierarchy, compute throughput, memory bandwidth and an α-β network model.
"""

from repro.machine.model import CacheLevel, MachineModel, NetworkModel
from repro.machine.cache import average_access_latency, miss_fraction
from repro.machine.platforms import PLATFORM_A, PLATFORM_B, platform_table

__all__ = [
    "CacheLevel",
    "MachineModel",
    "NetworkModel",
    "average_access_latency",
    "miss_fraction",
    "PLATFORM_A",
    "PLATFORM_B",
    "platform_table",
]
