"""Putting it together: transformed loop nest → execution seconds.

Roofline-style combination: compute cycles and memory cycles overlap
partially (hardware prefetch and out-of-order execution hide some latency
behind arithmetic), so

.. math:: cycles = \\max(C_{comp}, C_{mem}) + \\lambda \\min(C_{comp}, C_{mem})
          + C_{startup}

with overlap residue :math:`\\lambda = 0.25`.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.loopnest import LoopNestSpec
from repro.costmodel.quirks import InteractionQuirk
from repro.costmodel.transform import effective_tile_extents, transform_effects
from repro.machine.cache import average_access_latency
from repro.machine.model import MachineModel
from repro.telemetry import counters, span

__all__ = ["KernelCostModel"]

#: Fraction of the smaller of compute/memory cycles that fails to overlap.
_OVERLAP_RESIDUE = 0.25
#: Memory-level parallelism: outstanding misses divide effective latency.
_MLP = 4.0


class KernelCostModel:
    """Execution-time model for one SPAPT kernel on one machine.

    The encoded configuration matrix is split positionally into tile sizes,
    unroll factors, register-tile factors, and the two boolean flags — the
    same parameter ordering the kernel's :class:`ParameterSpace` declares.
    """

    def __init__(
        self,
        nest: LoopNestSpec,
        machine: MachineModel,
        n_tile: int,
        n_unroll: int,
        n_regtile: int,
        quirk: "InteractionQuirk | tuple[InteractionQuirk, ...] | None" = None,
        time_scale: float = 1.0,
    ) -> None:
        if n_tile != nest.n_tiled_loops:
            raise ValueError(
                f"{nest.name}: {n_tile} tile parameters but nest has "
                f"{nest.n_tiled_loops} tiled loops"
            )
        if n_unroll < 0 or n_regtile < 0:
            raise ValueError("parameter counts must be non-negative")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.nest = nest
        self.machine = machine
        self.n_tile = n_tile
        self.n_unroll = n_unroll
        self.n_regtile = n_regtile
        if quirk is None:
            self.quirks: tuple[InteractionQuirk, ...] = ()
        elif isinstance(quirk, InteractionQuirk):
            self.quirks = (quirk,)
        else:
            self.quirks = tuple(quirk)
        self.time_scale = time_scale

    @property
    def n_parameters(self) -> int:
        return self.n_tile + self.n_unroll + self.n_regtile + 2

    def split_columns(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Slice encoded ``X`` into (tiles, unrolls, regtiles, sr, vec)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_parameters:
            raise ValueError(
                f"{self.nest.name}: expected {self.n_parameters} columns, "
                f"got {X.shape[1]}"
            )
        a = self.n_tile
        b = a + self.n_unroll
        c = b + self.n_regtile
        return X[:, :a], X[:, a:b], X[:, b:c], X[:, c], X[:, c + 1]

    def true_times(self, X: np.ndarray) -> np.ndarray:
        """Noise-free seconds per encoded configuration row.

        Alias of :meth:`evaluate_batch` — the cost model has always been
        closed-form over a matrix; the batch name makes the contract the
        engine and service rely on explicit.
        """
        return self.evaluate_batch(X)

    def evaluate_batch(self, X: np.ndarray) -> np.ndarray:
        """One fused evaluation of ``n`` encoded rows (the batched contract).

        Everything below is vectorised numpy: a pool-sized batch performs
        one pass over the arithmetic instead of ``n`` single-row passes, so
        per-row cost collapses as the batch grows (tracked by
        ``benchmarks/perf/bench_engine.py``).  Bitwise, a fused call equals
        the concatenation of per-row calls — the model draws no randomness.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        counters.inc("costmodel.evaluations", len(X))
        counters.inc("costmodel.batches")
        with span("costmodel.evaluate", kernel=self.nest.name, n=len(X)):
            return self._true_times_inner(X)

    def _true_times_inner(self, X: np.ndarray) -> np.ndarray:
        tiles, unroll, regtile, sr, vec = self.split_columns(X)
        nest = self.nest

        tile_eff = effective_tile_extents(tiles, nest.loop_extents)
        fx = transform_effects(
            tile_eff=tile_eff,
            unroll=unroll if self.n_unroll else np.ones((len(X), 1)),
            regtile=regtile if self.n_regtile else np.ones((len(X), 1)),
            scalar_replace=sr,
            vectorize=vec,
            loop_extents=nest.loop_extents,
            base_registers=nest.base_registers,
            reuse_potential=nest.reuse_potential,
            vector_stride_dim=nest.vector_stride_dim,
            simd_width=float(self.machine.vector_width),
            nest_groups=tuple(a.dims for a in nest.arrays),
            vectorizable=nest.vectorizable,
        )

        compute_cycles = (
            nest.flops / self.machine.flops_per_cycle * fx.compute_factor
        )

        ws = nest.working_set_bytes(tile_eff)
        latency = average_access_latency(self.machine, ws)
        mem_cycles = nest.accesses * fx.access_factor * latency / _MLP

        hi = np.maximum(compute_cycles, mem_cycles)
        lo = np.minimum(compute_cycles, mem_cycles)
        cycles = hi + _OVERLAP_RESIDUE * lo + fx.startup_cycles

        seconds = cycles / self.machine.frequency_hz * self.time_scale
        for quirk in self.quirks:
            seconds = seconds * quirk.factor(X)
        return seconds
