"""Analytic loop-nest cost model for code-transformation tuning.

This subpackage replaces the paper's measurement substrate for SPAPT: where
the paper generates a code variant with Orio (cache tiling, unroll-jam,
register tiling, scalar replacement, vectorization) and times it on Platform
A, we compute the execution time of the variant from first-order
architectural effects:

* **cache tiling** changes the per-tile working set, which moves average
  access latency along the machine's cache staircase
  (:func:`repro.machine.cache.average_access_latency`); tile size 1 means
  "untiled" (full-extent working set) as in SPAPT,
* **unroll-jam** amortises loop-control overhead but multiplies live
  registers; past the architectural register file the spill penalty grows,
* **register tiling** buys data reuse (fewer memory accesses) at further
  register cost,
* **scalar replacement** trades memory accesses for register pressure,
* **vectorization** speeds up compute when the innermost effective tile is
  wide enough for contiguous SIMD, and slightly hurts otherwise,
* a per-kernel deterministic *interaction term*
  (:mod:`repro.costmodel.quirks`) adds the idiosyncratic parameter couplings
  real kernels exhibit, so the twelve kernels have genuinely different
  response surfaces.

Compute and memory times combine roofline-style (max plus partial overlap).
The absolute seconds are not claimed to match Platform A; the *statistical
shape* — nonlinear, multi-modal, heavy right tail, mixed feature types —
is what the reproduction needs, per DESIGN.md.
"""

from repro.costmodel.loopnest import ArrayRef, LoopNestSpec
from repro.costmodel.transform import TransformEffects, transform_effects
from repro.costmodel.cost import KernelCostModel

__all__ = [
    "ArrayRef",
    "LoopNestSpec",
    "TransformEffects",
    "transform_effects",
    "KernelCostModel",
]
