"""Vectorised first-order effects of the SPAPT code transformations.

All functions take per-configuration parameter matrices and return
per-configuration effect vectors; see :mod:`repro.costmodel` for the
modelling rationale.  Constants are chosen to give realistic effect
magnitudes (loop overhead a few tens of percent, spill blow-ups up to ~8x,
SIMD up to ~3x) — the active-learning reproduction depends on the *shape*
of these effects, not on matching Platform A cycle-for-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TransformEffects", "transform_effects", "effective_tile_extents"]

#: Architectural registers available to the allocator (x86-64 + AVX subset).
_REGISTER_FILE = 16.0
#: Cap on the spill/i-cache penalty factor — compilers degrade, not explode.
_MAX_SPILL_PENALTY = 8.0
#: Per-tile loop startup cost in cycles (index setup, branches, prologue).
_TILE_STARTUP_CYCLES = 60.0
#: Fraction of per-iteration cycles that is loop control in the base body.
_BASE_LOOP_OVERHEAD = 0.45
#: SIMD efficiency achieved when the stride condition holds.
_VECTOR_EFFICIENCY = 0.75
#: Relative slowdown when vectorization is forced but strides do not allow it.
_VECTOR_MISFIRE = 1.06
#: Minimum innermost effective tile for profitable SIMD.
_VECTOR_MIN_EXTENT = 16.0


def effective_tile_extents(
    tile_sizes: np.ndarray, loop_extents: "tuple[int, ...] | np.ndarray"
) -> np.ndarray:
    """Apply SPAPT's tile-size conventions.

    Tile size 1 means "do not tile this loop": the working set sees the full
    loop extent.  Tiles larger than the extent clamp to the extent.
    """
    T = np.asarray(tile_sizes, dtype=np.float64)
    extents = np.asarray(loop_extents, dtype=np.float64)
    if T.ndim != 2 or T.shape[1] != len(extents):
        raise ValueError(
            f"tile matrix shape {T.shape} incompatible with {len(extents)} loops"
        )
    if np.any(T < 1):
        raise ValueError("tile sizes must be >= 1")
    eff = np.where(T <= 1.0, extents[None, :], np.minimum(T, extents[None, :]))
    return eff


@dataclass(frozen=True)
class TransformEffects:
    """Per-configuration multipliers/addends produced by the transformations.

    Attributes
    ----------
    compute_factor:
        Multiplies the nest's base compute cycles (loop overhead, spill
        penalty, SIMD speedup — all folded together).
    access_factor:
        Multiplies the nest's memory access count (register tiling and
        scalar replacement remove reusable accesses).
    startup_cycles:
        Additive cycles from per-tile loop startup.
    register_pressure:
        Estimated live registers (exposed for tests/diagnostics).
    """

    compute_factor: np.ndarray
    access_factor: np.ndarray
    startup_cycles: np.ndarray
    register_pressure: np.ndarray


def transform_effects(
    tile_eff: np.ndarray,
    unroll: np.ndarray,
    regtile: np.ndarray,
    scalar_replace: np.ndarray,
    vectorize: np.ndarray,
    loop_extents: "tuple[int, ...]",
    base_registers: float,
    reuse_potential: float,
    vector_stride_dim: int | None,
    simd_width: float = 4.0,
    nest_groups: "tuple[tuple[int, ...], ...] | None" = None,
    vectorizable: bool = True,
) -> TransformEffects:
    """Combine the transformation effects for a batch of configurations.

    Parameters
    ----------
    tile_eff:
        Effective tile extents, shape ``(n, n_tiled_loops)``
        (see :func:`effective_tile_extents`).
    unroll:
        Unroll-jam factors, shape ``(n, n_unroll)`` (>= 1).
    regtile:
        Register-tile factors, shape ``(n, n_regtile)`` (>= 1).
    scalar_replace, vectorize:
        0/1 vectors of length ``n``.
    """
    n = len(tile_eff)
    unroll = np.asarray(unroll, dtype=np.float64).reshape(n, -1)
    regtile = np.asarray(regtile, dtype=np.float64).reshape(n, -1)
    sr = np.asarray(scalar_replace, dtype=np.float64).reshape(n)
    vec = np.asarray(vectorize, dtype=np.float64).reshape(n)
    if np.any(unroll < 1) or np.any(regtile < 1):
        raise ValueError("unroll and register-tile factors must be >= 1")

    # --- loop-control overhead: amortised by unrolling -------------------
    # Geometric mean of the unroll factors drives how much control overhead
    # remains per original iteration.
    u_geo = np.exp(np.log(unroll).mean(axis=1)) if unroll.shape[1] else np.ones(n)
    loop_overhead = _BASE_LOOP_OVERHEAD / u_geo

    # --- register pressure: unroll-jam × register tiling × scalar repl. ---
    u_prod = unroll.prod(axis=1)
    r_prod = regtile.prod(axis=1)
    # Live values grow sub-linearly with the unrolled body (common values
    # are shared) and linearly with register-tile volume.
    pressure = base_registers + 1.5 * np.sqrt(u_prod * r_prod) + 2.0 * sr
    over = np.maximum(0.0, pressure - _REGISTER_FILE) / _REGISTER_FILE
    spill_penalty = np.minimum(1.0 + 0.9 * over**1.5, _MAX_SPILL_PENALTY)

    # --- vectorization: contingent on a wide contiguous innermost tile ----
    if not vectorizable:
        stride_ok = np.zeros(n, dtype=np.float64)
    elif vector_stride_dim is None:
        stride_ok = np.ones(n, dtype=np.float64)
    else:
        stride_ok = (tile_eff[:, vector_stride_dim] >= _VECTOR_MIN_EXTENT).astype(
            np.float64
        )
    simd_speedup = 1.0 + (simd_width * _VECTOR_EFFICIENCY - 1.0) * vec * stride_ok
    simd_misfire = 1.0 + (_VECTOR_MISFIRE - 1.0) * vec * (1.0 - stride_ok)

    compute_factor = (1.0 + loop_overhead) * spill_penalty * simd_misfire / simd_speedup

    # --- memory-access reduction: register tiling + scalar replacement ----
    # Register tiles of ~8 capture most of the reuse; diminishing beyond.
    rt_capture = 1.0 - 1.0 / np.sqrt(r_prod)  # 0 at r=1, ->1 for large tiles
    sr_capture = 0.55 * sr
    captured = np.minimum(1.0, rt_capture * 0.6 + sr_capture)
    # When the allocator is already spilling, the "captured" values spill
    # back to memory, so pressure erodes the benefit.
    erosion = 1.0 / (1.0 + over)
    access_factor = 1.0 - reuse_potential * captured * erosion
    # Floor well above zero: compulsory traffic always remains.
    access_factor = np.maximum(access_factor, 1.0 - reuse_potential)

    # --- per-tile startup cost --------------------------------------------
    # Tiled loops belong to *independent nests* (e.g. dgemv3 is three
    # separate GEMV nests); the tile count multiplies only within a nest and
    # sums across nests.  With no grouping given, every loop is its own nest.
    extents = np.asarray(loop_extents, dtype=np.float64)
    tiles_per_loop = np.ceil(extents[None, :] / tile_eff)
    if nest_groups is None:
        nest_groups = tuple((j,) for j in range(len(loop_extents)))
    n_tiles = np.zeros(n, dtype=np.float64)
    for group in nest_groups:
        n_tiles += tiles_per_loop[:, list(group)].prod(axis=1)
    startup_cycles = _TILE_STARTUP_CYCLES * n_tiles

    return TransformEffects(
        compute_factor=compute_factor,
        access_factor=access_factor,
        startup_cycles=startup_cycles,
        register_pressure=pressure,
    )
