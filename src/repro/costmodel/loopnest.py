"""Structural description of a tunable loop nest."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ArrayRef", "LoopNestSpec"]


@dataclass(frozen=True)
class ArrayRef:
    """An array touched by the nest.

    ``dims`` lists the indices of the *tiled loops* the array is indexed by
    (indices into the nest's tile-parameter list); its per-tile working-set
    contribution is ``elem_bytes × Π tile_extent[dims]``.  ``weight`` scales
    the array's share of the nest's total accesses.
    """

    name: str
    dims: tuple[int, ...]
    elem_bytes: int = 8
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.elem_bytes <= 0:
            raise ValueError(f"array {self.name}: elem_bytes must be positive")
        if self.weight <= 0:
            raise ValueError(f"array {self.name}: weight must be positive")
        if len(self.dims) == 0:
            raise ValueError(f"array {self.name}: needs at least one dimension")


@dataclass(frozen=True)
class LoopNestSpec:
    """A kernel's loop nest as the cost model sees it.

    Parameters
    ----------
    name:
        Kernel name (also keys the deterministic quirk term).
    loop_extents:
        Full trip count of each tiled loop (one entry per tile parameter).
        A tile size of 1 ("untiled") makes the effective extent the full
        trip count.
    arrays:
        Arrays referenced by the nest.
    flops:
        Total floating-point operations of one kernel execution.
    accesses:
        Total data accesses of one execution (before reuse optimisations).
    base_registers:
        Live registers of the un-transformed loop body.
    reuse_potential:
        Fraction of accesses removable by perfect scalar replacement /
        register tiling (0..1).
    vector_stride_dim:
        Index of the tiled loop that must stay wide for profitable SIMD
        (usually the innermost); ``None`` disables the stride condition.
    vectorizable:
        ``False`` for nests whose loop-carried dependences defeat SIMD
        entirely (e.g. Gauss-Seidel): the VEC flag then only ever costs.
    """

    name: str
    loop_extents: tuple[int, ...]
    arrays: tuple[ArrayRef, ...]
    flops: float
    accesses: float
    base_registers: float = 6.0
    reuse_potential: float = 0.35
    vector_stride_dim: int | None = 0
    vectorizable: bool = True
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.loop_extents) == 0:
            raise ValueError(f"{self.name}: needs at least one tiled loop")
        if any(e < 2 for e in self.loop_extents):
            raise ValueError(f"{self.name}: loop extents must be >= 2")
        if self.flops <= 0 or self.accesses <= 0:
            raise ValueError(f"{self.name}: flops and accesses must be positive")
        if not 0.0 <= self.reuse_potential <= 1.0:
            raise ValueError(f"{self.name}: reuse_potential must be in [0, 1]")
        n = len(self.loop_extents)
        for a in self.arrays:
            if any(d < 0 or d >= n for d in a.dims):
                raise ValueError(
                    f"{self.name}: array {a.name} indexes loop out of range 0..{n - 1}"
                )
        if self.vector_stride_dim is not None and not (
            0 <= self.vector_stride_dim < n
        ):
            raise ValueError(f"{self.name}: vector_stride_dim out of range")

    @property
    def n_tiled_loops(self) -> int:
        return len(self.loop_extents)

    def working_set_bytes(self, tile_extents: np.ndarray) -> np.ndarray:
        """Per-configuration tile working set in bytes.

        ``tile_extents`` has shape ``(n_configs, n_tiled_loops)`` and already
        reflects the tile-size-1 → full-extent rule.
        """
        T = np.asarray(tile_extents, dtype=np.float64)
        if T.ndim != 2 or T.shape[1] != self.n_tiled_loops:
            raise ValueError(
                f"{self.name}: expected tile matrix (n, {self.n_tiled_loops}), "
                f"got {T.shape}"
            )
        ws = np.zeros(len(T), dtype=np.float64)
        for a in self.arrays:
            contrib = np.full(len(T), float(a.elem_bytes))
            for d in a.dims:
                contrib = contrib * T[:, d]
            ws += contrib
        return ws
