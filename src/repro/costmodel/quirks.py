"""Deterministic per-kernel parameter-interaction terms.

First-order architectural effects alone make every kernel's response surface
qualitatively similar.  Real SPAPT kernels differ: a tiling that helps *mm*
can hurt *adi* because of conflict misses, alignment, or transformation
legality fallbacks.  We add a kernel-keyed, deterministic interaction term:
a sparse set of pairwise products of normalised features with bounded
weights, seeded from the kernel name via :func:`repro.rng.derive`.  The term
is identical across processes and runs, so the ground-truth surface of
"atax" is a fixed object of study — but it differs between kernels.
"""

from __future__ import annotations

import numpy as np

from repro.rng import derive

__all__ = ["InteractionQuirk"]


class InteractionQuirk:
    """A bounded multiplicative perturbation ``q(x) ∈ [1-amp, 1+amp]``.

    Parameters
    ----------
    key:
        Deterministic seed key (the kernel name).
    n_features:
        Number of encoded feature columns.
    feature_low, feature_high:
        Per-column value ranges used to normalise features into [0, 1].
    n_terms:
        Number of pairwise interaction terms.
    amplitude:
        Maximum relative perturbation (default ±20%).
    exclude_features:
        Feature columns barred from interactions — used when a parameter
        provably cannot influence a kernel (e.g. the VEC flag on a nest
        whose dependences forbid vectorization).
    """

    def __init__(
        self,
        key: str,
        n_features: int,
        feature_low: np.ndarray,
        feature_high: np.ndarray,
        n_terms: int = 8,
        amplitude: float = 0.2,
        exclude_features: "tuple[int, ...]" = (),
    ) -> None:
        if n_features < 2:
            raise ValueError("interaction quirks need at least two features")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        low = np.asarray(feature_low, dtype=np.float64)
        high = np.asarray(feature_high, dtype=np.float64)
        if low.shape != (n_features,) or high.shape != (n_features,):
            raise ValueError("feature_low/high must have one entry per feature")
        if np.any(high < low):
            raise ValueError("feature_high must be >= feature_low")
        self._low = low
        self._span = np.maximum(high - low, 1e-12)
        self.amplitude = float(amplitude)

        rng = derive(0xC0FFEE, "quirk", key)
        allowed = np.asarray(
            [f for f in range(n_features) if f not in set(exclude_features)],
            dtype=np.intp,
        )
        if len(allowed) < 2:
            raise ValueError("need at least two non-excluded features")
        n_terms = min(n_terms, len(allowed) * (len(allowed) - 1) // 2)
        pairs: set[tuple[int, int]] = set()
        while len(pairs) < n_terms:
            i, j = rng.choice(allowed, size=2, replace=False)
            pairs.add((min(i, j), max(i, j)))
        self._pairs = np.asarray(sorted(pairs), dtype=np.intp)
        self._weights = rng.uniform(-1.0, 1.0, size=len(self._pairs))
        # Phase shifts make the interaction non-monotone in each feature.
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=(len(self._pairs), 2))
        self._freqs = rng.uniform(1.0, 3.0, size=(len(self._pairs), 2))

    def factor(self, X: np.ndarray) -> np.ndarray:
        """Multiplicative factor per configuration row of encoded ``X``."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Z = (X - self._low[None, :]) / self._span[None, :]
        raw = np.zeros(len(X), dtype=np.float64)
        for (i, j), w, (p1, p2), (f1, f2) in zip(
            self._pairs, self._weights, self._phases, self._freqs
        ):
            raw += w * np.sin(f1 * np.pi * Z[:, i] + p1) * np.sin(
                f2 * np.pi * Z[:, j] + p2
            )
        # Normalise to [-1, 1] by the worst-case weight mass, then scale.
        mass = np.abs(self._weights).sum()
        if mass > 0:
            raw = raw / mass
        return 1.0 + self.amplitude * raw
