#!/usr/bin/env python
"""Quickstart: model one SPAPT kernel with PWU active learning.

This is the 60-second tour of the library through its front door,
:mod:`repro.api`: run the paper's PWU strategy on the *atax* benchmark
and watch RMSE@5% fall as labeled samples accumulate.  Pass
``trace=True`` (or run the CLI with ``--trace``) to also get a JSONL
telemetry trace showing where the time went.

Run:  python examples/quickstart.py
"""

import repro.api
from repro.experiments.report import series_table

SEED = 2024


def main() -> None:
    # One call: prepares the pool and pre-labeled test set, runs
    # Algorithm 1 for scale.n_trials trials through the parallel engine,
    # and averages the traces.  'smoke' keeps this script fast; use
    # scale="paper" for the full 7000/3000/500 protocol.
    result = repro.api.run("atax", "pwu", seed=SEED, scale="smoke")

    trace = result.history
    print(f"benchmark: {result.workload}, strategy: {result.strategy} "
          f"({trace.n_trials} trials averaged)")
    print()
    print(
        series_table(
            trace.n_train,
            {
                "RMSE@5%": trace.rmse_mean["0.05"],
                "cumulative cost (s)": trace.cc_mean,
            },
            x_label="#samples",
        )
    )
    print()
    print(f"final RMSE@5%: {result.metrics['final_rmse']['0.05']:.4f} "
          f"after {int(trace.n_train[-1])} labeled samples "
          f"({result.metrics['final_cost']:.1f}s of simulated measurement)")

    # The layers underneath (ActiveLearner, get_strategy, prepare_data)
    # stay importable for custom studies — see the README's
    # "Working below the facade" section.


if __name__ == "__main__":
    main()
