#!/usr/bin/env python
"""Quickstart: model one SPAPT kernel with PWU active learning.

This is the 60-second tour of the library: build the *atax* benchmark,
draw the data pool and a pre-labeled test set, run Algorithm 1 with the
paper's PWU strategy, and watch RMSE@5% fall as samples accumulate.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ActiveLearner, LearnerConfig, get_benchmark, make_strategy
from repro.experiments import SCALES, prepare_data
from repro.experiments.report import series_table

SEED = 2024


def main() -> None:
    # 1. A benchmark couples a parameter space with a timing oracle.
    bench = get_benchmark("atax")
    print(f"benchmark: {bench.name}")
    print(bench.space.describe())
    print()

    # 2. The paper's protocol: sample a pool + a test set whose labels are
    #    measured in advance ('smoke' keeps this script fast; use
    #    SCALES['paper'] for the full 7000/3000/500 protocol).
    scale = SCALES["smoke"]
    pool, X_test, y_test = prepare_data(bench, scale, seed=SEED)
    print(f"pool: {pool.n_total} configurations, test set: {len(y_test)}")

    # 3. Algorithm 1 with the PWU sampling strategy (Equation 1).
    rng = np.random.default_rng(SEED)
    learner = ActiveLearner(
        pool=pool,
        evaluate=lambda X: bench.measure_encoded(X, rng),
        X_test=X_test,
        y_test=y_test,
        strategy=make_strategy("pwu", alpha=0.05),
        config=LearnerConfig(
            n_init=scale.n_init,
            n_max=scale.n_max,
            eval_every=scale.eval_every,
            n_estimators=scale.n_estimators,
        ),
        seed=rng,
    )
    history = learner.run()

    # 4. Inspect the learning trace.
    print()
    print(
        series_table(
            history.n_train,
            {
                "RMSE@5%": history.rmse_series("0.05"),
                "cumulative cost (s)": history.cumulative_cost,
            },
            x_label="#samples",
        )
    )
    start, end = history.rmse_series("0.05")[[0, -1]]
    print(f"\nRMSE@5%: {start:.4f} -> {end:.4f} "
          f"after {history.n_train[-1]} labeled samples "
          f"({history.cumulative_cost[-1]:.1f}s of simulated measurement)")


if __name__ == "__main__":
    main()
