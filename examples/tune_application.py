#!/usr/bin/env python
"""End-to-end application tuning with a PWU-built surrogate.

The paper's motivating workflow (Fig. 1 + Fig. 8) on the *kripke*
transport proxy:

1. build an empirical performance model with PWU active learning —
   spending real (simulated) measurement time;
2. hand the model to a tuner as a *surrogate annotator* — thousands of
   what-if queries at zero measurement cost;
3. report the configuration the tuner found and compare its true time
   against the pool's actual optimum.

Run:  python examples/tune_application.py
"""

import numpy as np

from repro import get_benchmark, make_strategy
from repro.experiments import SCALES, prepare_data
from repro.experiments.runner import run_single
from repro.forest import RandomForestRegressor
from repro.tuning import model_based_tuning, surrogate_annotator

SEED = 11


def main() -> None:
    bench = get_benchmark("kripke")
    scale = SCALES["smoke"]
    print(f"tuning {bench.name}: |space| = {bench.space.size()} configurations")

    # --- phase 1: active-learning model construction -------------------
    rng = np.random.default_rng(SEED)
    pool, X_test, y_test = prepare_data(bench, scale, seed=SEED)
    history = run_single(
        bench, "pwu", scale, pool, X_test, y_test, rng, alpha=0.05
    )
    print(
        f"model built from {history.n_train[-1]} measurements "
        f"({history.cumulative_cost[-1]:.0f}s simulated wall time); "
        f"RMSE@5% = {history.rmse_series('0.05')[-1]:.3f}"
    )

    # Refit the surrogate on everything the run labeled.
    idx = np.asarray(sorted(set(history.all_selected(include_cold_start=True))))
    X_train = pool.X[idx]
    y_train = bench.measure_encoded(X_train, rng)
    surrogate = RandomForestRegressor(n_estimators=30, seed=rng).fit(X_train, y_train)

    # --- phase 2: surrogate-annotated tuning ----------------------------
    result = model_based_tuning(
        bench,
        X_test,
        annotate=surrogate_annotator(surrogate),
        annotator_name="surrogate",
        n_iterations=30,
        seed=rng,
    )
    best_cfg = bench.space.decode_one(result.best_config)
    best_time = bench.true_time(best_cfg)
    optimum = float(bench.true_times_encoded(X_test).min())
    median = float(np.median(bench.true_times_encoded(X_test)))

    print("\nbest configuration found (0 extra measurements during search):")
    for k, v in best_cfg.items():
        print(f"  {k:10s} = {v}")
    print(
        f"\ntrue time of tuned config: {best_time:.2f}s"
        f"\ncandidate-set optimum:     {optimum:.2f}s"
        f"\ncandidate-set median:      {median:.2f}s"
        f"\n-> within {best_time / optimum:.2f}x of optimal, "
        f"{median / best_time:.1f}x faster than the median configuration"
    )

    # Which parameters mattered?  (model introspection)
    names = bench.space.names
    importances = surrogate.feature_importances()
    order = np.argsort(-importances)
    print("\nparameter importance (impurity):")
    for j in order:
        print(f"  {names[j]:10s} {importances[j]:.2f} {'#' * int(40 * importances[j])}")


if __name__ == "__main__":
    main()
