"""Tuning as a service: drive a daemon session with the typed client.

Starts the JSON-over-HTTP tuning daemon in-process on an ephemeral
loopback port (in production you would run ``repro serve`` instead),
then plays the *client-evaluated* protocol: the server picks which
configurations to measure next (PWU on a live random-forest surrogate),
this script "measures" them, and reports the results back — the loop
from the paper's Algorithm 1, split across a wire.

Finally it downloads the fitted surrogate, byte-for-byte identical to
what an offline run with the same seed would have produced, and uses it
to rank a few configurations locally.
"""

import tempfile

import numpy as np

import repro.api
from repro.service import ServiceConfig, TuningServer
from repro.service.protocol import SessionSpec
from repro.service.session import measure_round


def main() -> None:
    spec_fields = dict(
        benchmark="atax",
        strategy="pwu",
        seed=42,
        n_init=5,
        n_max=20,
        pool_size=200,
        test_size=150,
    )
    # In this example the "measurement" is the benchmark's synthetic
    # model; a real deployment would compile and time the configuration.
    spec = SessionSpec.from_payload(dict(spec_fields))

    with tempfile.TemporaryDirectory() as data_dir:
        server = TuningServer(ServiceConfig(port=0, data_dir=data_dir)).start()
        try:
            client = repro.api.connect(server.url)
            print(f"daemon {server.url} is {client.healthz()['status']}")

            session = client.create_session(**spec_fields)
            sid = session["id"]
            print(f"opened session {sid} ({session['strategy']} on "
                  f"{session['benchmark']}, budget {session['n_max']})")

            snapshot = session
            while snapshot["state"] == "open":
                suggestion = client.suggest(sid)
                y = measure_round(
                    spec, np.asarray(suggestion["x"]), suggestion["round"]
                )
                snapshot = client.report(sid, suggestion["indices"], y)
            print(f"session {snapshot['state']} after {snapshot['rounds']} "
                  f"suggest/report rounds ({snapshot['n_labeled']} samples)")

            model = client.model(sid)
            mu, sigma = model.predict_with_uncertainty(
                np.asarray(suggestion["x"], dtype=np.float64)
            )
            best = int(np.argmin(mu))
            print(f"served model ranks {len(mu)} candidates; "
                  f"best predicted time {mu[best]:.4f} ± {sigma[best]:.4f}")
        finally:
            server.stop()


if __name__ == "__main__":
    main()
