#!/usr/bin/env python
"""Model portability across platforms (the paper's future-work section).

Scenario: *atax* is already modeled on Platform A (E5-2680 v3).  A new
Platform B (E5-2680 v4) arrives.  Must we rebuild the model from scratch,
or can the Platform A model's beliefs seed the new run?

This example measures (1) how rank-correlated the two platforms' response
surfaces are, and (2) the learning-curve difference between a scratch
cold start and a transfer-seeded cold start at equal measurement budget.

Run:  python examples/transfer_portability.py
"""

import numpy as np

from repro.active import LearnerConfig
from repro.experiments.report import series_table
from repro.kernels import KERNEL_DESCRIPTORS, SpaptKernel
from repro.machine import PLATFORM_A, PLATFORM_B
from repro.space import DataPool
from repro.transfer import run_transfer_experiment

SEED = 21


def main() -> None:
    source = SpaptKernel(KERNEL_DESCRIPTORS["atax"], machine=PLATFORM_A)
    target = SpaptKernel(KERNEL_DESCRIPTORS["atax"], machine=PLATFORM_B)

    rng = np.random.default_rng(SEED)
    X = target.space.sample_unique_encoded(rng, 700)
    pool, X_test = DataPool(X[:450]), X[450:]
    y_test = target.measure_encoded(X_test, rng)

    result = run_transfer_experiment(
        source=source,
        target=target,
        pool=pool,
        X_test=X_test,
        y_test=y_test,
        config=LearnerConfig(
            n_init=10, n_max=70, eval_every=10, n_estimators=20, alphas=(0.05,)
        ),
        n_source_samples=200,
        seed=SEED,
    )

    print(
        f"surface rank correlation (Platform A vs B): {result.surface_rho:.3f}"
    )
    print()
    print(
        series_table(
            result.scratch.n_train,
            {
                "scratch": result.scratch.rmse_series("0.05"),
                "transfer-seeded": result.transferred.rmse_series("0.05"),
            },
            x_label="#samples",
            title="RMSE@5% on Platform B, by cold-start policy",
        )
    )
    ratios = result.improvement("0.05")
    print(
        f"\nmean RMSE ratio scratch/transfer over the run: {ratios.mean():.2f} "
        f"(>1 means the transferred model learns faster)"
    )


if __name__ == "__main__":
    main()
