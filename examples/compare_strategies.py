#!/usr/bin/env python
"""Compare all six sampling strategies on one kernel.

Reproduces a single panel of the paper's Fig. 2/3 comparison: every
strategy runs the same active-learning protocol on the same pool, and we
report RMSE@1% versus the number of labeled samples plus the cumulative
labeling cost — the two axes the paper trades off.

Run:  python examples/compare_strategies.py [kernel] [scale]
      python examples/compare_strategies.py mm quick
"""

import sys

import repro.api
from repro import STRATEGY_NAMES
from repro.experiments import SCALES
from repro.experiments.report import format_table, series_table, sparkline
from repro.metrics import speedup_at_level


def main(kernel: str = "atax", scale_name: str = "smoke") -> None:
    scale = SCALES[scale_name]
    print(
        f"running {len(STRATEGY_NAMES)} strategies x {scale.n_trials} trials "
        f"on {kernel!r} at scale {scale.name!r} ..."
    )
    result = repro.api.compare(
        kernel, STRATEGY_NAMES, seed=7, alpha=0.01, scale=scale
    )
    traces = result.traces

    any_trace = next(iter(traces.values()))
    print()
    print(
        series_table(
            any_trace.n_train,
            {s: t.rmse_mean["0.01"] for s, t in traces.items()},
            x_label="#samples",
            title=f"RMSE@1% vs #samples ({kernel})",
        )
    )

    print()
    rows = [
        [
            s,
            f"{t.rmse_mean['0.01'][-1]:.4f}",
            f"{t.cc_mean[-1]:.1f}",
            sparkline(t.rmse_mean["0.01"]),
        ]
        for s, t in traces.items()
    ]
    print(
        format_table(
            ["strategy", "final RMSE@1%", "labeling cost (s)", "trend"],
            rows,
            title="final state",
        )
    )

    speedup, level = speedup_at_level(
        traces["pbus"].cc_mean,
        traces["pbus"].rmse_mean["0.01"],
        traces["pwu"].cc_mean,
        traces["pwu"].rmse_mean["0.01"],
    )
    print(
        f"\ncost to reach RMSE {level:.4f}: "
        f"PWU is {speedup:.2f}x cheaper than PBUS"
        if speedup == speedup
        else "\n(the common error level was not reached by both strategies "
        "at this scale — try scale 'quick')"
    )


if __name__ == "__main__":
    main(*sys.argv[1:3])
