#!/usr/bin/env python
"""Bring your own tuning problem: define a custom benchmark.

The paper's method is benchmark-agnostic — anything exposing a parameter
space and a timing oracle can be modeled.  This example wires up a custom
"GPU kernel launch" style search problem from scratch (block sizes, a
work-per-thread factor, an algorithm switch), runs PWU against uniform
random sampling on it, and shows the accuracy gap on the fast subspace.

Run:  python examples/custom_benchmark.py
"""

import numpy as np

from repro import (
    ActiveLearner,
    Benchmark,
    BooleanParameter,
    CategoricalParameter,
    LearnerConfig,
    OrdinalParameter,
    ParameterSpace,
    make_strategy,
)
from repro.noise import MeasurementProtocol
from repro.space import DataPool

SEED = 5


class LaunchConfigBenchmark(Benchmark):
    """A synthetic 'kernel launch tuning' problem.

    The response surface has the usual features of launch-config tuning:
    a sweet spot in the block geometry (occupancy vs per-thread resources),
    an algorithm switch whose winner depends on block size, and a
    vectorized-loads flag that only pays off for wide blocks.
    """

    name = "launchcfg"

    def __init__(self) -> None:
        space = ParameterSpace(
            [
                OrdinalParameter("block_x", [8, 16, 32, 64, 128, 256]),
                OrdinalParameter("block_y", [1, 2, 4, 8, 16]),
                OrdinalParameter("work_per_thread", [1, 2, 4, 8]),
                CategoricalParameter("algorithm", ["tiled", "strided", "warp"]),
                BooleanParameter("vector_loads"),
            ]
        )
        super().__init__(space, MeasurementProtocol(n_repeats=5, noise_sigma=0.05))

    def true_times_encoded(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(X)
        bx, by, wpt, algo, vec = (X[:, i] for i in range(5))
        threads = bx * by
        # Occupancy: too few threads starves the SM, too many thrashes it.
        occupancy = np.minimum(threads / 256.0, 1.0) / (1.0 + (threads / 1024.0) ** 2)
        work = 1.0 / (occupancy + 0.05)
        # Work per thread amortises launch overhead up to a point.
        work = work * (1.0 + 0.5 / wpt + 0.02 * wpt)
        # Algorithm interacts with the block shape.
        work = work * np.where(
            algo == 0, 1.0 + 0.3 * (by < 4),          # tiled wants square-ish
            np.where(algo == 1, 1.15, 1.0 + 0.4 * (bx < 32)),  # warp wants wide
        )
        # Vector loads pay only for contiguous, wide rows.
        work = work * np.where(vec == 1, np.where(bx >= 64, 0.8, 1.1), 1.0)
        return 0.01 * work  # seconds


def run(strategy_name: str, bench: Benchmark, seed: int) -> float:
    rng = np.random.default_rng(seed)
    X_all = bench.space.sample_unique_encoded(rng, 700)
    pool, X_test = DataPool(X_all[:500]), X_all[500:]
    y_test = bench.measure_encoded(X_test, rng)
    learner = ActiveLearner(
        pool=pool,
        evaluate=lambda X: bench.measure_encoded(X, rng),
        X_test=X_test,
        y_test=y_test,
        strategy=make_strategy(strategy_name, alpha=0.05),
        config=LearnerConfig(n_init=10, n_max=80, eval_every=10, n_estimators=20),
        seed=rng,
    )
    history = learner.run()
    return float(history.rmse_series("0.05")[-1])


def main() -> None:
    bench = LaunchConfigBenchmark()
    print(f"custom benchmark {bench.name!r}: |space| = {bench.space.size()}")
    print(bench.space.describe())
    print()

    trials = 3
    for strategy in ("random", "pwu"):
        errs = [run(strategy, bench, SEED + t) for t in range(trials)]
        print(
            f"{strategy:7s} RMSE@5% after 80 samples: "
            f"{np.mean(errs):.5f} ± {np.std(errs):.5f}  (over {trials} trials)"
        )
    print("\nPWU concentrates its budget on the fast subspace, so its")
    print("error on the configurations a tuner cares about is lower.")


if __name__ == "__main__":
    main()
