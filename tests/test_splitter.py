"""Tests for the exact CART split search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.forest.splitter import Split, best_split, sse


class TestSSE:
    def test_zero_for_constant(self):
        assert sse(np.full(7, 3.0)) == pytest.approx(0.0)

    def test_matches_definition(self, rng):
        y = rng.normal(size=50)
        assert sse(y) == pytest.approx(float(np.sum((y - y.mean()) ** 2)))

    def test_empty_is_zero(self):
        assert sse(np.array([])) == 0.0


class TestBestSplit:
    def test_perfect_separation(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 5.0, 5.0])
        s = best_split(X, y, np.array([0]))
        assert isinstance(s, Split)
        assert s.feature == 0
        assert 1.0 <= s.threshold < 2.0
        assert s.gain == pytest.approx(sse(y))
        assert s.left_mask.tolist() == [True, True, False, False]

    def test_picks_informative_feature(self, rng):
        X = np.column_stack([rng.random(100), np.linspace(0, 1, 100)])
        y = (X[:, 1] > 0.5).astype(float)
        s = best_split(X, y, np.array([0, 1]))
        assert s.feature == 1

    def test_constant_target_no_split(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        s = best_split(X, np.ones(10), np.array([0]))
        assert s is None

    def test_constant_feature_no_split(self):
        X = np.ones((10, 1))
        y = np.arange(10, dtype=float)
        assert best_split(X, y, np.array([0])) is None

    def test_too_few_samples(self):
        X = np.array([[0.0]])
        assert best_split(X, np.array([1.0]), np.array([0])) is None

    def test_min_samples_leaf_respected(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.r_[np.zeros(1), np.ones(9)]  # best raw cut isolates 1 sample
        s = best_split(X, y, np.array([0]), min_samples_leaf=3)
        assert s is not None
        assert s.left_mask.sum() >= 3
        assert (~s.left_mask).sum() >= 3

    def test_min_samples_leaf_can_forbid_all(self):
        X = np.arange(4, dtype=float).reshape(-1, 1)
        y = np.array([0.0, 1.0, 0.0, 1.0])
        assert best_split(X, y, np.array([0]), min_samples_leaf=3) is None

    def test_invalid_min_samples_leaf(self):
        X = np.zeros((4, 1))
        with pytest.raises(ValueError):
            best_split(X, np.zeros(4), np.array([0]), min_samples_leaf=0)

    def test_empty_feature_list(self):
        X = np.arange(6, dtype=float).reshape(-1, 1)
        assert best_split(X, X[:, 0], np.array([], dtype=int)) is None

    def test_threshold_separates_exactly_at_boundary(self, rng):
        # Repeated feature values: the split must fall between distinct values.
        X = np.array([[1.0], [1.0], [2.0], [2.0]])
        y = np.array([0.0, 0.0, 4.0, 4.0])
        s = best_split(X, y, np.array([0]))
        assert 1.0 <= s.threshold < 2.0

    def test_gain_never_negative(self, rng):
        for _ in range(20):
            X = rng.random((30, 4))
            y = rng.normal(size=30)
            s = best_split(X, y, np.arange(4))
            if s is not None:
                assert s.gain > 0


@given(seed=st.integers(0, 10_000), n=st.integers(4, 60), leaf=st.integers(1, 5))
@settings(max_examples=50, deadline=None)
def test_property_split_is_sse_optimal_single_feature(seed, n, leaf):
    """The vectorised search must match brute force on one feature."""
    rng = np.random.default_rng(seed)
    v = rng.integers(0, 6, size=n).astype(float)
    y = rng.normal(size=n)
    X = v.reshape(-1, 1)
    s = best_split(X, y, np.array([0]), min_samples_leaf=leaf)

    # Brute force over all admissible thresholds.
    best = None
    for t in np.unique(v)[:-1]:
        mask = v <= t
        if mask.sum() < leaf or (~mask).sum() < leaf:
            continue
        combined = sse(y[mask]) + sse(y[~mask])
        if best is None or combined < best - 1e-12:
            best = combined
    if best is None or sse(y) - best <= 1e-12:
        assert s is None
    else:
        assert s is not None
        achieved = sse(y[s.left_mask]) + sse(y[~s.left_mask])
        assert achieved == pytest.approx(best, abs=1e-9)
