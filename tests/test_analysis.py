"""Tests for the trace-analysis helpers."""

import numpy as np
import pytest

from repro.experiments.aggregate import AveragedTrace
from repro.experiments.analysis import (
    area_under_curve,
    crossover_sample,
    final_ranking,
    win_matrix,
)


def _trace(name, rmse, n_train=None):
    rmse = np.asarray(rmse, dtype=float)
    n = np.asarray(n_train if n_train is not None else 10 * (1 + np.arange(len(rmse))))
    return AveragedTrace(
        strategy=name,
        n_train=n,
        cc_mean=np.cumsum(np.ones(len(rmse))),
        cc_std=np.zeros(len(rmse)),
        rmse_mean={"0.05": rmse},
        rmse_std={"0.05": np.zeros(len(rmse))},
        n_trials=1,
    )


class TestFinalRanking:
    def test_orders_by_final_value(self):
        traces = {
            "a": _trace("a", [0.5, 0.3]),
            "b": _trace("b", [0.5, 0.1]),
            "c": _trace("c", [0.5, 0.2]),
        }
        ranked = final_ranking(traces, "0.05")
        assert [r[0] for r in ranked] == ["b", "c", "a"]


class TestCrossover:
    def test_detects_permanent_overtake(self):
        a = _trace("a", [0.9, 0.5, 0.2, 0.1])
        b = _trace("b", [0.5, 0.4, 0.3, 0.3])
        assert crossover_sample(a, b, "0.05") == 30

    def test_none_when_never_overtakes(self):
        a = _trace("a", [0.9, 0.8])
        b = _trace("b", [0.1, 0.1])
        assert crossover_sample(a, b, "0.05") is None

    def test_immediate_dominance(self):
        a = _trace("a", [0.1, 0.1])
        b = _trace("b", [0.5, 0.5])
        assert crossover_sample(a, b, "0.05") == 10

    def test_grid_mismatch_rejected(self):
        a = _trace("a", [0.1, 0.1], n_train=[10, 20])
        b = _trace("b", [0.5, 0.5], n_train=[10, 30])
        with pytest.raises(ValueError, match="grids"):
            crossover_sample(a, b, "0.05")


class TestAUC:
    def test_constant_curve(self):
        t = _trace("a", [0.4, 0.4, 0.4])
        assert area_under_curve(t, "0.05") == pytest.approx(0.4)

    def test_lower_curve_has_lower_auc(self):
        hi = _trace("a", [0.9, 0.9, 0.9])
        lo = _trace("b", [0.2, 0.2, 0.2])
        assert area_under_curve(lo, "0.05") < area_under_curve(hi, "0.05")

    def test_early_convergence_rewarded(self):
        early = _trace("a", [0.9, 0.1, 0.1, 0.1])
        late = _trace("b", [0.9, 0.9, 0.9, 0.1])
        assert area_under_curve(early, "0.05") < area_under_curve(late, "0.05")

    def test_single_point(self):
        assert area_under_curve(_trace("a", [0.7]), "0.05") == 0.7


class TestWinMatrix:
    def _suite(self):
        return {
            "k1": {"pwu": _trace("pwu", [0.5, 0.1]), "pbus": _trace("pbus", [0.5, 0.2])},
            "k2": {"pwu": _trace("pwu", [0.5, 0.3]), "pbus": _trace("pbus", [0.5, 0.2])},
            "k3": {"pwu": _trace("pwu", [0.5, 0.1]), "pbus": _trace("pbus", [0.5, 0.4])},
        }

    def test_final_metric(self):
        wins = win_matrix(self._suite(), "0.05", metric="final")
        assert wins == {"pwu": 2, "pbus": 1}

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            win_matrix(self._suite(), "0.05", metric="median")

    def test_auc_metric_runs(self):
        wins = win_matrix(self._suite(), "0.05", metric="auc")
        assert sum(wins.values()) == 3
