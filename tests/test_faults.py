"""Chaos suite: fault injection, retries, crash recovery, journal durability.

Every chaos test asserts the engine's core promise: deterministic faults
(crash/hang/exception/slow, keyed off the job key) are survived via
retries and pool rebuilds, and the surviving run is **bit-identical** to a
fault-free run — same job keys, same final histories.
"""

import json
import os
import shutil
from pathlib import Path

import pytest

from repro.engine import (
    EngineConfig,
    EngineJobError,
    JobTimeout,
    ResultStore,
    TrialResult,
    plan_from_spec,
    run_jobs,
    trial_jobs,
)
from repro.engine.executor import backoff_seconds, execute_job
from repro.engine.faults import (
    FaultRule,
    InjectedFault,
    SimulatedCrash,
    fault_roll,
)
from repro.engine.store import STORE_SCHEMA_VERSION
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import strategy_trace
from repro.telemetry import counters


@pytest.fixture
def two_trial_scale() -> ExperimentScale:
    """Tiny scale with two trials, so retries have something to retry."""
    return ExperimentScale(
        name="tiny2",
        pool_size=150,
        test_size=120,
        n_init=8,
        n_batch=1,
        n_max=16,
        n_trials=2,
        eval_every=4,
        n_estimators=8,
    )


def _cfg(**kw) -> EngineConfig:
    kw.setdefault("progress", False)
    kw.setdefault("retry_backoff", 0.01)
    return EngineConfig(**kw)


def _histories(results):
    return {k: r.history.records for k, r in results.items()}


@pytest.fixture
def baseline(two_trial_scale):
    """Fault-free reference results for the standard 4-job batch."""
    jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0) + trial_jobs(
        "mvt", "random", two_trial_scale, seed=0
    )
    results, _ = run_jobs(jobs, config=_cfg(jobs=1))
    return jobs, _histories(results)


class TestFaultPlan:
    def test_empty_specs_are_noop_plans(self):
        assert not plan_from_spec(None)
        assert not plan_from_spec("")
        assert not plan_from_spec("   ")

    def test_parse_full_grammar(self):
        plan = plan_from_spec("crash:0.2,hang:0.1:2:30,exc:0.5:3,slow:1.0")
        kinds = [r.kind for r in plan.rules]
        assert kinds == ["crash", "hang", "exc", "slow"]
        hang = plan.rules[1]
        assert (hang.rate, hang.times, hang.seconds) == (0.1, 2, 30.0)
        assert plan.rules[2].times == 3
        assert plan.rules[0].times == 1  # default: first attempt only

    @pytest.mark.parametrize(
        "spec",
        ["boom:0.5", "crash", "crash:nope", "crash:0.5:1:2:3", "exc:1.5"],
    )
    def test_malformed_specs_fail_fast(self, spec):
        with pytest.raises(ValueError):
            plan_from_spec(spec)

    def test_roll_is_deterministic_and_kind_scoped(self):
        key = "a" * 64
        assert fault_roll("exc", key) == fault_roll("exc", key)
        assert fault_roll("exc", key) != fault_roll("crash", key)
        assert 0.0 <= fault_roll("exc", key) < 1.0

    def test_fires_gates_on_rate_and_attempt(self):
        key = "b" * 64
        always = FaultRule(kind="exc", rate=1.0, times=2)
        never = FaultRule(kind="exc", rate=0.0)
        assert always.fires(key, 0) and always.fires(key, 1)
        assert not always.fires(key, 2)  # beyond `times`: retried job heals
        assert not never.fires(key, 0)

    def test_apply_raises_the_right_faults(self):
        key = "c" * 64
        with pytest.raises(InjectedFault):
            plan_from_spec("exc:1.0").apply(key, 0)
        with pytest.raises(SimulatedCrash):
            # Serial path: a crash must not kill the experiment process.
            plan_from_spec("crash:1.0").apply(key, 0)
        plan_from_spec("slow:1.0:1:0.0").apply(key, 0)  # falls through
        plan_from_spec("exc:1.0").apply(key, 1)  # attempt past `times`


class TestBackoff:
    def test_deterministic_with_jitter_bounds(self):
        key = "d" * 64
        assert backoff_seconds(key, 1, 0.1) == backoff_seconds(key, 1, 0.1)
        for attempt in (1, 2, 3):
            delay = backoff_seconds(key, attempt, 0.1)
            base = 0.1 * 2 ** (attempt - 1)
            assert 0.5 * base <= delay < 1.5 * base

    def test_zero_base_and_cap(self):
        key = "e" * 64
        assert backoff_seconds(key, 3, 0.0) == 0.0
        assert backoff_seconds(key, 0, 1.0) == 0.0
        assert backoff_seconds(key, 40, 10.0) <= 30.0


class TestRetrySemantics:
    def test_injected_exception_is_retried_to_identical_results(
        self, baseline
    ):
        jobs, expect = baseline
        before = counters.value("engine.jobs.retried")
        results, stats = run_jobs(jobs, config=_cfg(jobs=1, faults="exc:1.0"))
        assert stats.retried == len(jobs)
        assert stats.failed == 0
        assert _histories(results) == expect
        assert counters.value("engine.jobs.retried") - before == len(jobs)

    def test_exhausted_retries_record_failed_trialresult(
        self, two_trial_scale
    ):
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)
        results, stats = run_jobs(
            jobs, config=_cfg(jobs=1, faults="exc:1.0:99", max_retries=1)
        )
        assert stats.failed == len(jobs)
        assert stats.retried == len(jobs)  # one retry each before giving up
        for job in jobs:
            res = results[job.key()]
            assert isinstance(res, TrialResult)
            assert not res.ok and res.history is None
            assert res.attempts == 2
            assert "injected exception" in res.error
            with pytest.raises(EngineJobError):
                res.unwrap()

    def test_failure_does_not_abort_healthy_siblings(self, two_trial_scale):
        """One pathological job must not take the batch down with it."""
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)
        rolls = sorted(fault_roll("exc", j.key()) for j in jobs)
        rate = (rolls[0] + rolls[1]) / 2  # afflicts exactly one of the two
        results, stats = run_jobs(
            jobs,
            config=_cfg(jobs=1, faults=f"exc:{rate}:99", max_retries=0),
        )
        assert stats.failed == 1 and stats.executed == 1
        assert sorted(r.ok for r in results.values()) == [False, True]

    def test_runner_surfaces_permanent_failures(self, two_trial_scale):
        with pytest.raises(EngineJobError, match="failed permanently"):
            strategy_trace(
                "mvt",
                "pwu",
                two_trial_scale,
                seed=0,
                engine=_cfg(jobs=1, faults="exc:1.0:99", max_retries=0),
            )


class TestTimeouts:
    def test_hang_is_timed_out_and_retried(self, baseline):
        jobs, expect = baseline
        before = counters.value("engine.jobs.timeouts")
        results, stats = run_jobs(
            jobs,
            config=_cfg(jobs=1, faults="hang:1.0:1:60", job_timeout=0.5),
        )
        assert stats.retried == len(jobs) and stats.failed == 0
        assert _histories(results) == expect
        assert counters.value("engine.jobs.timeouts") - before == len(jobs)

    def test_hang_timeout_parallel(self, baseline):
        jobs, expect = baseline
        results, stats = run_jobs(
            jobs,
            config=_cfg(jobs=2, faults="hang:1.0:1:60", job_timeout=0.5),
        )
        assert stats.failed == 0
        assert _histories(results) == expect

    def test_timeout_exhaustion_reports_timeout_error(self, two_trial_scale):
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)[:1]
        results, stats = run_jobs(
            jobs,
            config=_cfg(
                jobs=1, faults="hang:1.0:99:60", job_timeout=0.3, max_retries=0
            ),
        )
        res = results[jobs[0].key()]
        assert not res.ok and "wall-clock limit" in res.error

    def test_jobtimeout_is_a_timeout_error(self):
        assert issubclass(JobTimeout, TimeoutError)


class TestCrashRecovery:
    def test_serial_crash_is_simulated_and_retried(self, baseline):
        jobs, expect = baseline
        results, stats = run_jobs(jobs, config=_cfg(jobs=1, faults="crash:1.0"))
        assert stats.failed == 0 and stats.retried == len(jobs)
        assert _histories(results) == expect

    def test_pool_death_recovery_bit_identical(self, baseline):
        """Workers dying hard mid-run: rebuild, requeue, finish, identical."""
        jobs, expect = baseline
        before = counters.value("engine.pool.restarts")
        results, stats = run_jobs(jobs, config=_cfg(jobs=2, faults="crash:1.0"))
        assert stats.failed == 0
        assert _histories(results) == expect
        assert counters.value("engine.pool.restarts") > before

    def test_chaos_cocktail_matches_fault_free_at_any_jobs(self, baseline):
        """The acceptance bar: mixed faults, serial and parallel, identical."""
        jobs, expect = baseline
        spec = "crash:0.4,exc:0.4,slow:0.3:1:0.05"
        for n in (1, 2):
            results, stats = run_jobs(
                jobs, config=_cfg(jobs=n, faults=spec, max_retries=3)
            )
            assert stats.failed == 0, f"jobs={n}"
            assert _histories(results) == expect, f"jobs={n}"

    def test_completed_results_survive_pool_death(
        self, tmp_path, two_trial_scale
    ):
        """The data-loss bugfix: work finished before a pool death is kept.

        With a crash fault afflicting only one job of four, the survivors'
        results must be committed to the store even though the pool broke
        while they were in flight or queued.
        """
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0) + trial_jobs(
            "mvt", "random", two_trial_scale, seed=0
        )
        rolls = sorted((fault_roll("crash", j.key()), j) for j in jobs)
        rate = (rolls[0][0] + rolls[1][0]) / 2  # exactly one job crashes
        store_dir = tmp_path / "store"
        results, stats = run_jobs(
            jobs,
            config=_cfg(jobs=2, faults=f"crash:{rate}", cache_dir=str(store_dir)),
        )
        assert stats.failed == 0
        assert sorted(ResultStore(store_dir).keys()) == sorted(
            j.key() for j in jobs
        )


class TestResumeAfterFailure:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_killed_run_resumes_from_journal_bit_identical(
        self, tmp_path, two_trial_scale, baseline, n_jobs
    ):
        """Satellite: a run 'killed' partway (some jobs failing permanently)
        resumes from the journal — remaining job keys and final histories
        are bit-identical to an uninterrupted run, at --jobs 1 and 2."""
        jobs, expect = baseline
        rolls = sorted((fault_roll("exc", j.key()), j) for j in jobs)
        # Permanently fail the two most-afflicted jobs, succeed the rest.
        rate = (rolls[1][0] + rolls[2][0]) / 2
        store_dir = tmp_path / f"store{n_jobs}"
        results, stats = run_jobs(
            jobs,
            config=_cfg(
                jobs=n_jobs,
                faults=f"exc:{rate}:99",
                max_retries=1,
                cache_dir=str(store_dir),
            ),
        )
        assert stats.failed == 2 and stats.executed == 2

        # The journal holds exactly the completed jobs; the remaining job
        # keys are exactly the failed ones — deterministically.
        store = ResultStore(store_dir)
        done_keys = set(store.keys())
        remaining = sorted(j.key() for j in jobs if j.key() not in done_keys)
        expected_remaining = sorted(
            j.key() for j in jobs if not results[j.key()].ok
        )
        assert remaining == expected_remaining

        # Fault-free resume: cached jobs served from the journal, the rest
        # executed; the union is bit-identical to the fault-free baseline.
        resumed, rstats = run_jobs(
            jobs, config=_cfg(jobs=n_jobs, cache_dir=str(store_dir))
        )
        assert rstats.cached == 2 and rstats.executed == 2
        assert rstats.failed == 0
        assert _histories(resumed) == expect


class TestJournalDurability:
    def _put_one(self, root, job):
        store = ResultStore(root)
        history = execute_job(job)
        store.put(job, history)
        return store, history

    def test_torn_tail_never_loses_committed_entries(
        self, tmp_path, two_trial_scale
    ):
        """kill -9 mid-append == truncated tail; every committed entry
        survives truncation at every byte position of the torn record."""
        j0, j1 = trial_jobs("mvt", "random", two_trial_scale, seed=0)
        store = ResultStore(tmp_path)
        h0 = execute_job(j0)
        store.put(j0, h0)
        store.put(j1, execute_job(j1))
        size = store.journal_path.stat().st_size
        first_len = store._index[j0.key()][2]
        backup = tmp_path / "journal.bak"
        shutil.copy(store.journal_path, backup)
        for cut in range(first_len, size, 37):  # sample positions
            shutil.copy(backup, store.journal_path)
            with open(store.journal_path, "ab") as fh:
                fh.truncate(cut)
            reopened = ResultStore(tmp_path)
            got = reopened.get(j0.key())
            assert got is not None and got.records == h0.records, cut
        backup.unlink()

    def test_mid_file_corruption_skips_only_the_bad_line(
        self, tmp_path, two_trial_scale
    ):
        j0, j1 = trial_jobs("mvt", "random", two_trial_scale, seed=0)
        store = ResultStore(tmp_path)
        store.put(j0, execute_job(j0))
        h1 = execute_job(j1)
        store.put(j1, h1)
        lines = store.journal_path.read_bytes().splitlines(keepends=True)
        lines[0] = b'{"garbage": tru\n'
        store.journal_path.write_bytes(b"".join(lines))
        reopened = ResultStore(tmp_path)
        assert reopened.get(j0.key()) is None
        assert reopened.get(j1.key()).records == h1.records

    def test_put_fsyncs_before_acknowledging(
        self, tmp_path, two_trial_scale, monkeypatch
    ):
        """The satellite bugfix: a write is only committed after fsync."""
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        store = ResultStore(tmp_path)
        synced.clear()
        store.put(job, execute_job(job))
        assert synced, "put() returned without fsync"

    def test_compact_fsyncs_tmp_before_replace(
        self, tmp_path, two_trial_scale, monkeypatch
    ):
        """fsync-before-replace ordering: the rename may never publish
        un-flushed bytes."""
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        store, history = self._put_one(tmp_path, job)
        store.put(job, history)  # create a dead line worth compacting
        events = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (events.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (events.append("replace"), real_replace(a, b))[1],
        )
        store.compact()
        assert "fsync" in events and "replace" in events
        assert events.index("fsync") < events.index("replace")
        assert store.get(job.key()).records == history.records

    def test_temp_files_never_observable(self, tmp_path, two_trial_scale):
        """Staging files are invisible to the store API and swept on close."""
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        store, _ = self._put_one(tmp_path, job)
        store.compact()
        assert not list(Path(tmp_path).glob(".tmp-*"))
        (tmp_path / ".tmp-stray.jsonl").write_text("junk")
        assert store.keys() == [job.key()]  # tmp never listed
        assert ResultStore(tmp_path).keys() == [job.key()]
        assert store.cleanup_tmp() == 1
        assert not list(Path(tmp_path).glob(".tmp-*"))

    def test_legacy_per_key_files_migrate_transparently(
        self, tmp_path, two_trial_scale
    ):
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        history = execute_job(job)
        legacy = {
            "store_schema": STORE_SCHEMA_VERSION,
            "key": job.key(),
            "job": job.spec(),
            "history": history.to_dict(),
        }
        legacy_path = tmp_path / f"{job.key()}.json"
        legacy_path.write_text(json.dumps(legacy), encoding="utf-8")
        store = ResultStore(tmp_path)
        assert store.get(job.key()).records == history.records
        assert not legacy_path.exists(), "legacy artifact not absorbed"
        assert store.journal_path.exists()
        # And the migrated journal round-trips through a fresh open.
        assert ResultStore(tmp_path).get(job.key()).records == history.records

    def test_compaction_drops_dead_lines_losslessly(
        self, tmp_path, two_trial_scale
    ):
        job = trial_jobs("mvt", "random", two_trial_scale, seed=0)[0]
        store, history = self._put_one(tmp_path, job)
        for _ in range(4):
            store.put(job, history)
        before = store.journal_path.stat().st_size
        store.compact()
        assert store.journal_path.stat().st_size < before
        assert store.get(job.key()).records == history.records
        assert len(ResultStore(tmp_path)) == 1


class TestInterruptCleanup:
    def test_interrupt_flushes_store_and_restores_terminal(
        self, tmp_path, two_trial_scale, monkeypatch, capsys
    ):
        """Satellite: Ctrl-C mid-run keeps finished work, sweeps temp files,
        and leaves the progress line closed out."""
        import repro.engine.executor as executor

        jobs = trial_jobs("mvt", "random", two_trial_scale, seed=0)
        real = executor.execute_job
        ran = []

        def interrupt_second(job):
            if ran:
                raise KeyboardInterrupt
            ran.append(job)
            return real(job)

        monkeypatch.setattr(executor, "execute_job", interrupt_second)
        (tmp_path / ".tmp-leak.jsonl").write_text("junk")
        with pytest.raises(KeyboardInterrupt):
            run_jobs(
                jobs,
                config=EngineConfig(
                    jobs=1, cache_dir=str(tmp_path), progress=True
                ),
            )
        # Finished-before-interrupt work is durably stored...
        assert len(ResultStore(tmp_path)) == 1
        # ...temp files are swept...
        assert not list(Path(tmp_path).glob(".tmp-*"))
        # ...and the reporter still printed its (never-throttled) summary.
        assert "completed" in capsys.readouterr().err

    def test_tty_transient_line_is_restored_on_close(self):
        import io

        from repro.engine import ProgressReporter

        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        rep = ProgressReporter(total=2, enabled=True, stream=stream, min_interval=0.0)
        rep.job_started("a")
        assert "\r" in stream.getvalue()
        assert not stream.getvalue().endswith("\n")
        rep.job_finished("a")
        rep.close()
        out = stream.getvalue()
        # The transient line was finished with a newline before the summary,
        # and the summary line itself ends the output cleanly.
        assert "\n[engine] completed" in out and out.endswith("\n")

    def test_close_is_idempotent(self, capsys):
        from repro.engine import ProgressReporter

        rep = ProgressReporter(total=1, enabled=True, min_interval=0.0)
        rep.job_started("a")
        rep.job_finished("a")
        rep.close()
        rep.close()
        assert capsys.readouterr().err.count("completed") == 1


class TestFailureTelemetry:
    def test_failure_and_retry_counters_flow_to_snapshot(self, two_trial_scale):
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)[:1]
        before_r = counters.value("engine.jobs.retried")
        before_f = counters.value("engine.jobs.failed")
        before_e = counters.value("engine.faults.exc")
        run_jobs(jobs, config=_cfg(jobs=1, faults="exc:1.0:99", max_retries=2))
        assert counters.value("engine.jobs.retried") - before_r == 2
        assert counters.value("engine.jobs.failed") - before_f == 1
        assert counters.value("engine.faults.exc") - before_e == 3

    def test_stats_expose_fault_tolerance_fields(self, two_trial_scale):
        jobs = trial_jobs("mvt", "pwu", two_trial_scale, seed=0)[:1]
        _, stats = run_jobs(jobs, config=_cfg(jobs=1))
        assert (stats.failed, stats.retried) == (0, 0)
