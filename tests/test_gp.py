"""Tests for the Gaussian-process surrogate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import GaussianProcessRegressor, rbf_kernel
from repro.gp.kernels import squared_distances


class TestKernels:
    def test_squared_distances_exact(self):
        A = np.array([[0.0, 0.0], [1.0, 1.0]])
        B = np.array([[0.0, 1.0]])
        d = squared_distances(A, B)
        assert d.tolist() == [[1.0], [1.0]]

    def test_self_distances_zero_diagonal(self, rng):
        A = rng.random((20, 3))
        d = squared_distances(A, A)
        assert np.allclose(np.diag(d), 0.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            squared_distances(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_rbf_at_zero_distance_is_signal_variance(self):
        A = np.array([[1.0, 2.0]])
        K = rbf_kernel(A, A, lengthscale=0.5, signal_variance=3.0)
        assert K[0, 0] == pytest.approx(3.0)

    def test_rbf_decays_with_distance(self):
        A = np.array([[0.0]])
        B = np.array([[0.0], [1.0], [2.0]])
        K = rbf_kernel(A, B, lengthscale=1.0, signal_variance=1.0)[0]
        assert K[0] > K[1] > K[2]

    def test_rbf_validation(self):
        A = np.zeros((1, 1))
        with pytest.raises(ValueError):
            rbf_kernel(A, A, lengthscale=0.0, signal_variance=1.0)
        with pytest.raises(ValueError):
            rbf_kernel(A, A, lengthscale=1.0, signal_variance=-1.0)


class TestGPRegression:
    def test_interpolates_clean_data(self, rng):
        X = np.linspace(0, 1, 25).reshape(-1, 1)
        y = np.sin(4 * X[:, 0])
        gp = GaussianProcessRegressor(seed=0).fit(X, y)
        pred = gp.predict(X)
        assert np.sqrt(np.mean((pred - y) ** 2)) < 0.05

    def test_extrapolation_reverts_to_mean_with_high_sigma(self, rng):
        X = rng.random((40, 1)) * 0.3
        y = 2.0 + X[:, 0]
        gp = GaussianProcessRegressor(seed=0).fit(X, y)
        _, sigma_in = gp.predict_with_uncertainty(np.array([[0.15]]))
        _, sigma_out = gp.predict_with_uncertainty(np.array([[5.0]]))
        assert sigma_out[0] > sigma_in[0]

    def test_sigma_nonnegative(self, regression_data):
        X, y = regression_data
        gp = GaussianProcessRegressor(seed=0).fit(X[:80], y[:80])
        _, sigma = gp.predict_with_uncertainty(X[80:150])
        assert (sigma >= 0).all()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two"):
            GaussianProcessRegressor().fit(np.zeros((1, 2)), np.zeros(1))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(2))

    def test_noisy_data_does_not_crash_and_smooths(self, rng):
        X = np.linspace(0, 1, 60).reshape(-1, 1)
        y = np.sin(3 * X[:, 0]) + rng.normal(0, 0.3, 60)
        gp = GaussianProcessRegressor(seed=0).fit(X, y)
        assert gp.noise_variance_ > 1e-4  # it noticed the noise
        pred = gp.predict(X)
        clean = np.sin(3 * X[:, 0])
        assert np.sqrt(np.mean((pred - clean) ** 2)) < 0.3

    def test_constant_target_handled(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        gp = GaussianProcessRegressor(seed=0).fit(X, np.full(10, 5.0))
        mu, _ = gp.predict_with_uncertainty(X)
        assert np.allclose(mu, 5.0, atol=1e-6)

    def test_log_marginal_likelihood_finite(self, regression_data):
        X, y = regression_data
        gp = GaussianProcessRegressor(seed=0).fit(X[:50], y[:50])
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_restart_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(n_restarts=-1)


class TestLearnerIntegration:
    def test_gp_drives_algorithm_1(self, tiny_scale):
        from repro.experiments.runner import strategy_trace

        trace = strategy_trace(
            "mvt",
            "pwu",
            tiny_scale,
            seed=0,
            config_overrides={"surrogate": "gp"},
        )
        assert trace.n_train[-1] == tiny_scale.n_max
        assert np.isfinite(trace.rmse_mean["0.05"]).all()

    def test_gp_partial_retrain_rejected(self):
        from repro.active import LearnerConfig

        with pytest.raises(ValueError, match="scratch"):
            LearnerConfig(surrogate="gp", retrain="partial")

    def test_unknown_surrogate_rejected(self):
        from repro.active import LearnerConfig

        with pytest.raises(ValueError, match="surrogate"):
            LearnerConfig(surrogate="svm")


@given(seed=st.integers(0, 500), n=st.integers(5, 30))
@settings(max_examples=10, deadline=None)
def test_property_posterior_mean_bounded_by_data_scale(seed, n):
    """Posterior means stay within a few target standard deviations."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = rng.normal(size=n)
    gp = GaussianProcessRegressor(n_restarts=0, seed=0).fit(X, y)
    mu = gp.predict(rng.random((20, 2)))
    span = max(y.std(), 1e-6)
    assert np.all(np.abs(mu - y.mean()) < 6.0 * span + 1.0)
