"""Tests for Algorithm 1 (ActiveLearner) and its history."""

import numpy as np
import pytest

from repro.active import ActiveLearner, IterationRecord, LearnerConfig, LearningHistory
from repro.forest import RandomForestRegressor
from repro.sampling import make_strategy
from repro.space import DataPool


def _make_problem(rng, n_pool=150, n_test=120):
    X = rng.random((n_pool + n_test, 4))
    truth = lambda A: 0.5 + A[:, 0] + 0.3 * np.sin(8 * A[:, 1])  # noqa: E731
    pool = DataPool(X[:n_pool])
    X_test = X[n_pool:]
    y_test = truth(X_test)
    oracle = lambda A: truth(np.atleast_2d(A)) * np.exp(  # noqa: E731
        rng.normal(0, 0.01, len(np.atleast_2d(A)))
    )
    return pool, X_test, y_test, oracle


def _learner(rng, strategy="pwu", **cfg_overrides):
    pool, X_test, y_test, oracle = _make_problem(rng)
    cfg = dict(n_init=8, n_batch=1, n_max=20, eval_every=4, n_estimators=8)
    cfg.update(cfg_overrides)
    return ActiveLearner(
        pool=pool,
        evaluate=oracle,
        X_test=X_test,
        y_test=y_test,
        strategy=make_strategy(strategy),
        config=LearnerConfig(**cfg),
        seed=rng,
    )


class TestLearnerConfig:
    def test_defaults_match_paper(self):
        cfg = LearnerConfig()
        assert cfg.n_init == 10
        assert cfg.n_batch == 1
        assert cfg.n_max == 500
        assert cfg.alphas == (0.01, 0.05, 0.10)

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_init": 0},
            {"n_batch": 0},
            {"n_max": 5, "n_init": 10},
            {"eval_every": 0},
            {"retrain": "magic"},
            {"alphas": ()},
            {"alphas": (0.0,)},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            LearnerConfig(**kw)


class TestRun:
    def test_reaches_n_max(self, rng):
        learner = _learner(rng)
        history = learner.run()
        assert history.records[-1].n_train == 20
        assert len(learner.y_train) == 20

    def test_cold_start_recorded_first(self, rng):
        history = _learner(rng).run()
        assert history.records[0].n_train == 8
        assert len(history.records[0].selected) == 8

    def test_n_train_strictly_increases(self, rng):
        history = _learner(rng).run()
        n = history.n_train
        assert (np.diff(n) > 0).all()

    def test_cc_matches_sum_of_labels(self, rng):
        learner = _learner(rng)
        history = learner.run()
        assert history.cumulative_cost[-1] == pytest.approx(learner.y_train.sum())

    def test_all_alphas_recorded(self, rng):
        history = _learner(rng).run()
        assert history.alpha_keys() == ("0.01", "0.05", "0.1")

    def test_no_config_evaluated_twice(self, rng):
        learner = _learner(rng)
        history = learner.run()
        picked = history.all_selected(include_cold_start=True)
        assert len(picked) == len(set(picked)) == 20

    def test_eval_every_thins_records(self, rng):
        h1 = _learner(rng, eval_every=1).run()
        rng2 = np.random.default_rng(0)
        h4 = _learner(rng2, eval_every=4).run()
        assert len(h1) > len(h4)
        # Final state is always recorded regardless of the schedule.
        assert h4.records[-1].n_train == 20

    def test_selection_statistics_cover_all_iterations(self, rng):
        history = _learner(rng).run()
        mu, sigma = history.selection_statistics()
        assert len(mu) == len(sigma) == 12  # 20 - 8 cold start
        assert (sigma >= 0).all()

    def test_deterministic_given_seed(self):
        h1 = _learner(np.random.default_rng(5)).run()
        h2 = _learner(np.random.default_rng(5)).run()
        assert np.array_equal(h1.cumulative_cost, h2.cumulative_cost)
        assert h1.rmse_series("0.05").tolist() == h2.rmse_series("0.05").tolist()

    def test_model_free_strategy_gets_no_model(self, rng):
        # UniformRandomSampling must run even when passed model=None.
        learner = _learner(rng, strategy="random")
        history = learner.run()
        assert history.records[-1].n_train == 20

    def test_partial_retrain_mode(self, rng):
        learner = _learner(rng, retrain="partial", refresh_fraction=0.5)
        history = learner.run()
        assert history.records[-1].n_train == 20

    def test_learning_reduces_error(self):
        """More labels should, on a smooth target, not hugely worsen RMSE."""
        rng = np.random.default_rng(42)
        learner = _learner(rng, n_max=60, eval_every=60)
        history = learner.run()
        first = history.rmse_series("0.1")[0]
        last = history.rmse_series("0.1")[-1]
        assert last < first * 1.5


class TestValidation:
    def test_n_max_exceeds_pool(self, rng):
        pool, X_test, y_test, oracle = _make_problem(rng, n_pool=15)
        with pytest.raises(ValueError, match="exceeds pool"):
            ActiveLearner(
                pool=pool,
                evaluate=oracle,
                X_test=X_test,
                y_test=y_test,
                strategy=make_strategy("random"),
                config=LearnerConfig(n_init=5, n_max=20),
            )

    def test_test_set_too_small_for_alpha(self, rng):
        pool, X_test, y_test, oracle = _make_problem(rng, n_test=120)
        with pytest.raises(ValueError, match="too small"):
            ActiveLearner(
                pool=pool,
                evaluate=oracle,
                X_test=X_test[:50],
                y_test=y_test[:50],
                strategy=make_strategy("random"),
                config=LearnerConfig(n_init=5, n_max=20, alphas=(0.01,)),
            )

    def test_mismatched_test_set(self, rng):
        pool, X_test, y_test, oracle = _make_problem(rng)
        with pytest.raises(ValueError, match="disagree"):
            ActiveLearner(
                pool=pool,
                evaluate=oracle,
                X_test=X_test,
                y_test=y_test[:-1],
                strategy=make_strategy("random"),
            )

    def test_bad_oracle_shape_caught(self, rng):
        pool, X_test, y_test, _ = _make_problem(rng)
        learner = ActiveLearner(
            pool=pool,
            evaluate=lambda X: np.ones(3),  # wrong length on batches of 1
            X_test=X_test,
            y_test=y_test,
            strategy=make_strategy("random"),
            config=LearnerConfig(n_init=3, n_max=5, alphas=(0.1,)),
            seed=rng,
        )
        with pytest.raises(RuntimeError, match="labels"):
            learner.run()


class TestHistoryContainer:
    def test_append_enforces_monotonic_n_train(self):
        h = LearningHistory()
        h.append(IterationRecord(5, 1.0, {"0.05": 0.5}))
        with pytest.raises(ValueError, match="strictly increase"):
            h.append(IterationRecord(5, 2.0, {"0.05": 0.4}))

    def test_append_enforces_monotonic_cost(self):
        h = LearningHistory()
        h.append(IterationRecord(5, 2.0, {"0.05": 0.5}))
        with pytest.raises(ValueError, match="cannot decrease"):
            h.append(IterationRecord(6, 1.0, {"0.05": 0.4}))

    def test_unknown_alpha_key(self):
        h = LearningHistory()
        h.append(IterationRecord(5, 1.0, {"0.05": 0.5}))
        with pytest.raises(KeyError, match="recorded"):
            h.rmse_series("0.42")

    def test_to_dict_roundtrips_arrays(self):
        h = LearningHistory()
        h.append(IterationRecord(5, 1.0, {"0.05": 0.5}))
        h.append(IterationRecord(6, 2.0, {"0.05": 0.4}))
        d = h.to_dict()
        assert d["n_train"] == [5, 6]
        assert d["rmse"]["0.05"] == [0.5, 0.4]

    def test_empty_history(self):
        h = LearningHistory()
        assert len(h) == 0
        assert h.alpha_keys() == ()
