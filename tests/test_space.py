"""Tests for ParameterSpace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    BooleanParameter,
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    ParameterSpace,
)


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ParameterSpace([IntegerParameter("a", 0, 1), IntegerParameter("a", 0, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ParameterSpace([])

    def test_lookup_by_name(self, mixed_space):
        assert mixed_space["tile"].name == "tile"
        with pytest.raises(KeyError):
            mixed_space["nope"]

    def test_iteration_and_len(self, mixed_space):
        assert len(mixed_space) == 4
        assert [p.name for p in mixed_space] == ["tile", "unroll", "layout", "vec"]

    def test_contains(self, mixed_space):
        assert "tile" in mixed_space
        assert "nope" not in mixed_space


class TestSize:
    def test_size_is_product(self, mixed_space):
        assert mixed_space.size() == 7 * 31 * 3 * 2

    def test_log10_size(self, mixed_space):
        assert mixed_space.log10_size() == pytest.approx(
            np.log10(mixed_space.size())
        )

    def test_categorical_mask(self, mixed_space):
        assert mixed_space.categorical_mask.tolist() == [False, False, True, True]


class TestEncoding:
    def test_single_dict_encodes_to_row(self, mixed_space):
        X = mixed_space.encode(
            {"tile": 64, "unroll": 3, "layout": "DZG", "vec": True}
        )
        assert X.shape == (1, 4)
        assert X.tolist() == [[64.0, 3.0, 1.0, 1.0]]

    def test_roundtrip(self, mixed_space, rng):
        X = mixed_space.sample_encoded(rng, 50)
        configs = mixed_space.decode(X)
        assert np.allclose(mixed_space.encode(configs), X)

    def test_missing_parameter_rejected(self, mixed_space):
        with pytest.raises(ValueError, match="missing"):
            mixed_space.encode({"tile": 64})

    def test_unknown_parameter_rejected(self, mixed_space):
        with pytest.raises(ValueError, match="unknown"):
            mixed_space.encode(
                {"tile": 64, "unroll": 3, "layout": "DZG", "vec": True, "x": 1}
            )

    def test_decode_wrong_width_rejected(self, mixed_space):
        with pytest.raises(ValueError, match="feature columns"):
            mixed_space.decode(np.zeros((2, 3)))

    def test_decode_one(self, mixed_space):
        cfg = mixed_space.decode_one(np.array([1.0, 1.0, 0.0, 0.0]))
        assert cfg == {"tile": 1, "unroll": 1, "layout": "DGZ", "vec": False}


class TestSampling:
    def test_sample_encoded_shape(self, mixed_space, rng):
        X = mixed_space.sample_encoded(rng, 25)
        assert X.shape == (25, 4)

    def test_sampled_values_admissible(self, mixed_space, rng):
        for cfg in mixed_space.sample(rng, 30):
            for name, value in cfg.items():
                assert value in mixed_space[name]

    def test_negative_count_rejected(self, mixed_space, rng):
        with pytest.raises(ValueError, match="negative"):
            mixed_space.sample_encoded(rng, -1)

    def test_unique_sampling_no_duplicates(self, mixed_space, rng):
        X = mixed_space.sample_unique_encoded(rng, 300)
        assert len({row.tobytes() for row in X}) == 300

    def test_unique_sampling_small_space_exact(self, rng):
        space = ParameterSpace(
            [OrdinalParameter("a", [1, 2, 3]), BooleanParameter("b")]
        )
        X = space.sample_unique_encoded(rng, 6)
        assert len({row.tobytes() for row in X}) == 6

    def test_unique_more_than_space_rejected(self, rng):
        space = ParameterSpace([BooleanParameter("b")])
        with pytest.raises(ValueError, match="unique"):
            space.sample_unique_encoded(rng, 3)

    def test_grid_enumerates_everything(self):
        space = ParameterSpace(
            [OrdinalParameter("a", [1, 2]), CategoricalParameter("c", ["x", "y", "z"])]
        )
        grid = space.grid_encoded()
        assert grid.shape == (6, 2)
        assert len({row.tobytes() for row in grid}) == 6

    def test_grid_too_large_rejected(self):
        space = ParameterSpace(
            [IntegerParameter(f"p{i}", 0, 99) for i in range(4)]
        )
        with pytest.raises(ValueError, match="too large"):
            space.grid_encoded()


class TestDescribe:
    def test_describe_mentions_every_parameter(self, mixed_space):
        text = mixed_space.describe()
        for name in mixed_space.names:
            assert name in text
        assert "total configurations" in text


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 40))
@settings(max_examples=25, deadline=None)
def test_property_roundtrip_arbitrary_draws(seed, n):
    """encode(decode(X)) == X for any uniformly drawn sample."""
    space = ParameterSpace(
        [
            OrdinalParameter("t", [1, 16, 32, 64, 128, 256, 512]),
            IntegerParameter("u", 1, 31),
            CategoricalParameter("c", ["a", "b", "c", "d"]),
            BooleanParameter("f"),
        ]
    )
    X = space.sample_encoded(np.random.default_rng(seed), n)
    assert np.allclose(space.encode(space.decode(X)), X)
