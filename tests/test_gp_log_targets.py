"""Tests for the log-target GP mode (positive-time modeling)."""

import numpy as np
import pytest

from repro.gp import GaussianProcessRegressor


class TestLogTargets:
    def test_predictions_strictly_positive(self, rng):
        """The reason the mode exists: heavy-tailed positive targets whose
        plain-GP posterior dips negative."""
        X = rng.random((80, 3))
        y = np.exp(rng.normal(0.0, 1.5, 80)) * 0.1  # heavy right tail
        gp = GaussianProcessRegressor(log_targets=True, seed=0).fit(X, y)
        mu, sigma = gp.predict_with_uncertainty(rng.random((200, 3)))
        assert (mu > 0).all()
        assert (sigma >= 0).all()

    def test_recovers_log_linear_signal(self, rng):
        X = np.linspace(0, 1, 60).reshape(-1, 1)
        y = np.exp(2.0 * X[:, 0])
        gp = GaussianProcessRegressor(log_targets=True, seed=0).fit(X, y)
        pred = gp.predict(X)
        assert np.allclose(pred, y, rtol=0.2)

    def test_rejects_nonpositive_targets(self, rng):
        X = rng.random((10, 2))
        with pytest.raises(ValueError, match="positive"):
            GaussianProcessRegressor(log_targets=True).fit(X, np.zeros(10))

    def test_pwu_runs_on_gp_surrogate_end_to_end(self, tiny_scale):
        from repro.experiments.runner import strategy_trace

        trace = strategy_trace(
            "hypre", "pwu", tiny_scale, seed=1,
            config_overrides={"surrogate": "gp"},
        )
        assert trace.n_train[-1] == tiny_scale.n_max
        assert np.isfinite(trace.rmse_mean["0.05"]).all()
