"""TEL001 fixture: telemetry name outside the namespace grammar."""

from repro.telemetry import counters


def bump() -> None:
    """Active violation: name outside engine./forest./learner./costmodel."""
    counters.inc("fixture.bad_namespace")


def bump_quietly(name: str) -> None:
    """Suppressed twin: a computed (non-literal) telemetry name."""
    counters.inc(name)  # repro: allow[TEL001] fixture twin: seeded-violation test data


def bump_properly() -> None:
    """In-grammar literal name — must NOT fire."""
    counters.inc("engine.fixture_events")
