"""Seeded-violation fixture package for the reproducibility lint.

One module per rule id, each containing exactly one *active* violation
(the rule must fire exactly once) and one *suppressed twin* — the same
construct carrying a ``# repro: allow[RULE] reason`` marker, which must
be silenced and reported in :attr:`LintResult.suppressed`.

These files are linted (parsed), never imported; the package sits under
``tests/fixtures/`` which the default lint configuration excludes, and
the fixture tests run it with
:func:`repro.analysis.config.permissive_config` instead.
"""
