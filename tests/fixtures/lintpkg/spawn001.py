"""SPAWN001 fixture: module-level mutable state mutated in a function."""

import threading

_CACHE = {}
_LOCK = threading.Lock()


def remember(key, value):
    """Active violation: unguarded mutation of a module-level dict."""
    _CACHE[key] = value


def remember_quietly(key, value):
    """Suppressed twin of :func:`remember`."""
    # repro: allow[SPAWN001] fixture twin: seeded-violation test data
    _CACHE[key] = value


def remember_locked(key, value):
    """Mutation under the module lock — must NOT fire."""
    with _LOCK:
        _CACHE[key] = value
