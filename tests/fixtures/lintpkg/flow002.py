"""FLOW002 fixture: Generator parameter drawn on only one branch path."""


def jitter(value, rng) -> float:
    """Active violation: the early return skips the draw entirely."""
    if value <= 0:
        return 0.0
    return value + rng.normal()


def jitter_quietly(value, rng) -> float:
    """Suppressed twin of :func:`jitter`."""
    # repro: allow[FLOW002] fixture twin: seeded-violation test data
    if value <= 0:
        return 0.0
    return value + rng.normal()


def jitter_balanced(value, rng) -> float:
    """Every path through the branch draws once — must NOT fire."""
    noise = rng.normal()
    if value <= 0:
        return noise
    return value + noise
