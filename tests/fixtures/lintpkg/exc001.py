"""EXC001 fixture: silently swallowed exception."""


def swallow() -> None:
    """Active violation: handler body is only ``pass``."""
    try:
        int("x")
    except ValueError:
        pass


def swallow_quietly() -> None:
    """Suppressed twin of :func:`swallow`."""
    try:
        int("y")
    except ValueError:  # repro: allow[EXC001] fixture twin: seeded-violation test data
        pass


def handle() -> int:
    """A handler that records — must NOT fire."""
    try:
        return int("z")
    except ValueError:
        return -1
