"""RACE002 fixture: two locks acquired in both nesting orders."""

import threading

_ALPHA = threading.Lock()
_BETA = threading.Lock()

_GAMMA = threading.Lock()
_DELTA = threading.Lock()


def forward() -> None:
    with _ALPHA:
        with _BETA:
            pass


def backward() -> None:
    """Active violation: the opposite nesting order of :func:`forward`."""
    with _BETA:
        with _ALPHA:
            pass


def forward_quietly() -> None:
    with _GAMMA:
        with _DELTA:
            pass


def backward_quietly() -> None:
    """Suppressed twin of :func:`backward` (its own lock pair)."""
    with _DELTA:
        # repro: allow[RACE002] fixture twin: seeded-violation test data
        with _GAMMA:
            pass


def forward_again() -> None:
    """Same order as :func:`forward` — must NOT fire."""
    with _ALPHA:
        with _BETA:
            pass
