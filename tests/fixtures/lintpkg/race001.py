"""RACE001 fixture: lock-owning class mutated without its lock held."""

import threading


class Board:
    """Shared scoreboard touched by request-handler threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._scores = {}

    def post(self, key, value) -> None:  # repro: thread-entry
        """Active violation: the guarding lock exists but is not held."""
        self._scores[key] = value

    def post_quietly(self, key, value) -> None:  # repro: thread-entry
        """Suppressed twin of :meth:`post`."""
        # repro: allow[RACE001] fixture twin: seeded-violation test data
        self._scores[key] = value

    def post_locked(self, key, value) -> None:  # repro: thread-entry
        """Mutation under the instance lock — must NOT fire."""
        with self._lock:
            self._scores[key] = value

    def _apply(self, key, value) -> None:
        """Called only with the lock held on every path — must NOT fire."""
        self._scores[key] = value

    def post_via_helper(self, key, value) -> None:  # repro: thread-entry
        with self._lock:
            self._apply(key, value)
