"""ARCH001 fixture: a model-layer module importing the execution layer."""

import lintpkg.engine  # active violation: workloads must not import engine

from lintpkg.engine import run  # repro: allow[ARCH001] fixture twin: seeded-violation test data
