"""Stand-in model layer for the ARCH001 fixture (never imported)."""
