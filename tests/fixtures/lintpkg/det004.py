"""DET004 fixture: ``os.environ`` read outside the blessed config modules."""

import os


def read_env() -> "str | None":
    """Active violation: ambient environment read."""
    return os.environ.get("REPRO_FIXTURE")


def read_env_quietly() -> "str | None":
    """Suppressed twin of :func:`read_env`."""
    return os.environ.get("REPRO_FIXTURE")  # repro: allow[DET004] fixture twin: seeded-violation test data
