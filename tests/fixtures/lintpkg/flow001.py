"""FLOW001 fixture: un-derived RNG consumed on a worker-reachable path."""

import numpy as np


def simulate(job) -> float:  # repro: worker-entry
    """Active violation: seedless Generator drawn inside a worker."""
    rng = np.random.default_rng()
    return float(rng.normal())


def simulate_quietly(job) -> float:  # repro: worker-entry
    """Suppressed twin of :func:`simulate`."""
    rng = np.random.default_rng(0)  # repro: allow[FLOW001] fixture twin: seeded-violation test data
    return float(rng.normal())


def simulate_derived(job, rng: "np.random.Generator") -> float:  # repro: worker-entry
    """Drawing from a caller-derived stream — must NOT fire."""
    return float(rng.normal())


def build_unused(job):  # repro: worker-entry
    """Creation that is never drawn from — must NOT fire."""
    rng = np.random.default_rng()
    return job
