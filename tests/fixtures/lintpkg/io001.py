"""IO001 fixture: raw file write bypassing the atomic-write helpers."""


def dump(path: str, text: str) -> None:
    """Active violation: direct ``open(..., "w")``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def dump_quietly(path: str, text: str) -> None:
    """Suppressed twin of :func:`dump`."""
    with open(path, "w", encoding="utf-8") as fh:  # repro: allow[IO001] fixture twin: seeded-violation test data
        fh.write(text)


def load(path: str) -> str:
    """Read-only open — must NOT fire."""
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()
