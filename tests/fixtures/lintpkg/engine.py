"""Stand-in execution layer for the ARCH001 fixture (never imported)."""


def run() -> None:
    """Placeholder execution entry point."""
