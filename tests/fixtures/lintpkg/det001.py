"""DET001 fixture: bare ``random.*`` global-state call."""

import random

#: Explicit instance construction is allowed and must NOT fire.
_OWNED = random.Random(0)


def roll() -> float:
    """Active violation: draws from the hidden module-global stream."""
    return random.random()


def roll_quietly() -> float:
    """Suppressed twin of :func:`roll`."""
    return random.random()  # repro: allow[DET001] fixture twin: seeded-violation test data
