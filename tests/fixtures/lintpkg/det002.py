"""DET002 fixture: wall-clock read in a result-affecting module."""

import time


def stamp() -> float:
    """Active violation: reads the wall clock."""
    return time.time()


def stamp_quietly() -> float:
    """Suppressed twin of :func:`stamp`."""
    return time.time()  # repro: allow[DET002] fixture twin: seeded-violation test data
