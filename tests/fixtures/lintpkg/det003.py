"""DET003 fixture: iteration over a set without ``sorted(...)``."""


def unordered_total() -> int:
    """Active violation: iterates a set literal directly."""
    total = 0
    for item in {3, 1, 2}:
        total += item
    return total


def quietly_unordered_total() -> int:
    """Suppressed twin of :func:`unordered_total`."""
    total = 0
    for item in {3, 1, 2}:  # repro: allow[DET003] fixture twin: sum is order-independent
        total += item
    return total


def ordered_total() -> int:
    """Sorted materialisation — must NOT fire."""
    total = 0
    for item in sorted({3, 1, 2}):
        total += item
    return total
