"""SHM001 fixture: shared-memory segment created without finally teardown."""

from multiprocessing import shared_memory


def leak_segment(nbytes: int) -> str:
    """Active violation: create site with no enclosing try/finally cleanup."""
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    return segment.name


def leak_segment_quietly(nbytes: int) -> str:
    """Suppressed twin of :func:`leak_segment`."""
    segment = shared_memory.SharedMemory(create=True, size=nbytes)  # repro: allow[SHM001] fixture twin: seeded-violation test data
    return segment.name


def publish_guarded(nbytes: int) -> str:
    """Create guarded by a finally that closes and unlinks — must NOT fire."""
    segment = None
    published = False
    try:
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        published = True
        return segment.name
    finally:
        if segment is not None and not published:
            segment.close()
            segment.unlink()


def attach_segment(name: str) -> bytes:
    """Attach site (no create=True) — must NOT fire."""
    segment = shared_memory.SharedMemory(name=name)
    try:
        return bytes(segment.buf[:1])
    finally:
        segment.close()
