"""Tests for the experiment configuration, aggregation and runner."""

import numpy as np
import pytest

from repro.active import IterationRecord, LearningHistory
from repro.experiments import (
    SCALES,
    ExperimentScale,
    average_histories,
    prepare_data,
    comparison_traces,
    strategy_trace,
)
from repro.experiments.config import scale_from_env
from repro.workloads import get_benchmark


class TestScales:
    def test_paper_scale_matches_protocol(self):
        s = SCALES["paper"]
        assert (s.pool_size, s.test_size) == (7000, 3000)
        assert (s.n_init, s.n_batch, s.n_max) == (10, 1, 500)
        assert s.n_trials == 10

    def test_all_scales_valid(self):
        for s in SCALES.values():
            assert s.pool_size >= s.n_max

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", pool_size=10, n_max=50)
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", test_size=10)

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env().name == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(KeyError):
            scale_from_env()
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env().name == "quick"


class TestPrepareData:
    def test_sizes_and_disjointness(self, tiny_scale):
        bench = get_benchmark("mvt")
        pool, X_test, y_test = prepare_data(bench, tiny_scale, seed=0)
        assert pool.n_total == tiny_scale.pool_size
        assert len(X_test) == len(y_test) == tiny_scale.test_size
        pool_rows = {row.tobytes() for row in pool.X}
        test_rows = {row.tobytes() for row in X_test}
        assert pool_rows.isdisjoint(test_rows)

    def test_small_space_shrinks_proportionally(self, tiny_scale):
        bench = get_benchmark("kripke")  # space of 2304 > 270 requested: fine
        pool, X_test, _ = prepare_data(bench, tiny_scale, seed=0)
        assert pool.n_total == tiny_scale.pool_size

        big = ExperimentScale(
            name="big", pool_size=7000, test_size=3000, n_max=500
        )
        pool2, X_test2, _ = prepare_data(bench, big, seed=0)
        total = bench.space.size()
        assert pool2.n_total + len(X_test2) == total
        assert pool2.n_total == int(total * 0.7)

    def test_deterministic_given_seed(self, tiny_scale):
        bench = get_benchmark("mvt")
        p1, Xt1, yt1 = prepare_data(bench, tiny_scale, seed=5)
        p2, Xt2, yt2 = prepare_data(bench, tiny_scale, seed=5)
        assert np.array_equal(p1.X, p2.X)
        assert np.array_equal(yt1, yt2)

    def test_labels_are_positive(self, tiny_scale):
        bench = get_benchmark("mvt")
        _, _, y_test = prepare_data(bench, tiny_scale, seed=1)
        assert (y_test > 0).all()


class TestAverageHistories:
    def _history(self, values):
        h = LearningHistory()
        for i, v in enumerate(values):
            h.append(IterationRecord(10 + i, float(i), {"0.05": v}))
        return h

    def test_mean_and_std(self):
        tr = average_histories("pwu", [self._history([1.0, 2.0]), self._history([3.0, 4.0])])
        assert tr.rmse_mean["0.05"].tolist() == [2.0, 3.0]
        assert tr.rmse_std["0.05"].tolist() == [1.0, 1.0]
        assert tr.n_trials == 2

    def test_misaligned_traces_rejected(self):
        h1 = self._history([1.0, 2.0])
        h2 = LearningHistory()
        h2.append(IterationRecord(99, 0.0, {"0.05": 1.0}))
        with pytest.raises(ValueError, match="evaluation points"):
            average_histories("pwu", [h1, h2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_histories("pwu", [])

    def test_helpers(self):
        tr = average_histories("x", [self._history([3.0, 1.0, 2.0])])
        assert tr.final_rmse("0.05") == 2.0
        assert tr.min_rmse("0.05") == 1.0
        d = tr.to_dict()
        assert d["strategy"] == "x"
        assert d["rmse_mean"]["0.05"] == [3.0, 1.0, 2.0]


class TestRunners:
    def test_run_strategy_end_to_end(self, tiny_scale):
        trace = strategy_trace("mvt", "pwu", tiny_scale, seed=0)
        assert trace.strategy == "pwu"
        assert trace.n_train[-1] == tiny_scale.n_max
        assert (trace.cc_mean > 0).all()
        assert set(trace.rmse_mean) == {"0.01", "0.05", "0.1"}

    def test_run_comparison_shares_eval_grid(self, tiny_scale):
        res = comparison_traces("mvt", ("random", "pwu"), tiny_scale, seed=0)
        assert set(res) == {"random", "pwu"}
        assert np.array_equal(res["random"].n_train, res["pwu"].n_train)

    def test_reproducible(self, tiny_scale):
        a = strategy_trace("mvt", "pbus", tiny_scale, seed=3)
        b = strategy_trace("mvt", "pbus", tiny_scale, seed=3)
        assert np.array_equal(a.cc_mean, b.cc_mean)
        assert np.array_equal(a.rmse_mean["0.05"], b.rmse_mean["0.05"])

    def test_different_seeds_differ(self, tiny_scale):
        a = strategy_trace("mvt", "random", tiny_scale, seed=1)
        b = strategy_trace("mvt", "random", tiny_scale, seed=2)
        assert not np.array_equal(a.cc_mean, b.cc_mean)
