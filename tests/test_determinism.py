"""Cross-component determinism: the reproduction must be bit-reproducible."""

import numpy as np

from repro.workloads import get_benchmark


class TestGroundTruthStability:
    """The simulated surfaces are fixed objects of study.

    These golden values pin the substrate: if a cost-model change moves
    them, EXPERIMENTS.md's measured numbers silently stop being
    regenerable and this test forces the change to be deliberate.
    """

    def test_atax_fixed_point(self):
        bench = get_benchmark("atax")
        cfg = {
            "T1": 64, "T2": 64, "T3": 1,
            "U1": 4, "U2": 1, "U3": 8,
            "RT1": 8, "RT2": 1,
            "SCR": True, "VEC": True,
        }
        t1 = bench.true_time(cfg)
        t2 = get_benchmark("atax").true_time(cfg)
        assert t1 == t2
        assert 0.001 < t1 < 100.0

    def test_kripke_fixed_point(self):
        bench = get_benchmark("kripke")
        cfg = {
            "layout": "DGZ", "gset": 8, "dset": 16,
            "pmethod": "sweep", "#process": 32,
        }
        assert bench.true_time(cfg) == get_benchmark("kripke").true_time(cfg)

    def test_hypre_fixed_point(self):
        bench = get_benchmark("hypre")
        cfg = {"solver": 3, "coarsening": "hmis", "smtype": 6, "#process": 64}
        assert bench.true_time(cfg) == get_benchmark("hypre").true_time(cfg)

    def test_all_benchmarks_stable_across_instances(self):
        rng = np.random.default_rng(99)
        for name in ("adi", "dgemv3", "hypre"):
            b1, b2 = get_benchmark(name), get_benchmark(name)
            X = b1.space.sample_encoded(rng, 25)
            assert np.array_equal(b1.true_times_encoded(X), b2.true_times_encoded(X))


class TestMeasurementDeterminism:
    def test_same_rng_same_measurements(self):
        bench = get_benchmark("mvt")
        X = bench.space.sample_encoded(np.random.default_rng(1), 10)
        a = bench.measure_encoded(X, np.random.default_rng(7))
        b = bench.measure_encoded(X, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_different_rng_different_measurements(self):
        bench = get_benchmark("mvt")
        X = bench.space.sample_encoded(np.random.default_rng(1), 10)
        a = bench.measure_encoded(X, np.random.default_rng(7))
        b = bench.measure_encoded(X, np.random.default_rng(8))
        assert not np.array_equal(a, b)


class TestEndToEndDeterminism:
    def test_full_experiment_reproducible(self, tiny_scale):
        from repro.experiments.runner import strategy_trace

        a = strategy_trace("mvt", "pwu", tiny_scale, seed=42)
        b = strategy_trace("mvt", "pwu", tiny_scale, seed=42)
        assert np.array_equal(a.cc_mean, b.cc_mean)
        for key in a.rmse_mean:
            assert np.array_equal(a.rmse_mean[key], b.rmse_mean[key])
