"""Tests for the measurement-noise model."""

import numpy as np
import pytest

from repro.noise import APP_PROTOCOL, KERNEL_PROTOCOL, MeasurementProtocol


class TestValidation:
    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(n_repeats=0)

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(noise_sigma=-0.1)

    def test_bad_outlier_prob(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(outlier_prob=1.0)

    def test_outliers_must_slow_down(self):
        with pytest.raises(ValueError, match="slow"):
            MeasurementProtocol(outlier_scale=0.5)


class TestObserve:
    def test_positive_output(self, rng):
        p = MeasurementProtocol()
        obs = p.observe(np.array([0.1, 1.0, 10.0]), rng)
        assert (obs > 0).all()

    def test_rejects_nonpositive_truth(self, rng):
        with pytest.raises(ValueError, match="positive"):
            MeasurementProtocol().observe(np.array([0.0]), rng)

    def test_zero_noise_single_repeat_is_identity(self, rng):
        p = MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0)
        truth = np.array([0.5, 2.0])
        assert np.allclose(p.observe(truth, rng), truth)

    def test_more_repeats_reduce_variance(self):
        truth = np.full(400, 1.0)
        p1 = MeasurementProtocol(n_repeats=1, noise_sigma=0.1, outlier_prob=0.0)
        p35 = MeasurementProtocol(n_repeats=35, noise_sigma=0.1, outlier_prob=0.0)
        v1 = p1.observe(truth, np.random.default_rng(0)).std()
        v35 = p35.observe(truth, np.random.default_rng(0)).std()
        assert v35 < v1 / 3.0  # sqrt(35) ≈ 5.9x reduction expected

    def test_outliers_bias_upward_only(self):
        """Timing outliers only ever slow a run down."""
        truth = np.full(2000, 1.0)
        clean = MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0)
        dirty = MeasurementProtocol(
            n_repeats=1, noise_sigma=0.0, outlier_prob=0.2, outlier_scale=5.0
        )
        obs_clean = clean.observe(truth, np.random.default_rng(1))
        obs_dirty = dirty.observe(truth, np.random.default_rng(1))
        assert (obs_dirty >= obs_clean - 1e-12).all()
        assert obs_dirty.mean() > obs_clean.mean()

    def test_observe_one(self, rng):
        assert MeasurementProtocol().observe_one(1.0, rng) > 0

    def test_unbiased_within_tolerance(self):
        """Repeat-averaged observation hovers near the true value."""
        p = MeasurementProtocol(n_repeats=35, noise_sigma=0.04, outlier_prob=0.0)
        truth = np.full(1000, 2.0)
        obs = p.observe(truth, np.random.default_rng(2))
        assert obs.mean() == pytest.approx(2.0, rel=0.02)


class TestPresets:
    def test_kernel_protocol_is_35_repeats(self):
        """Section III-B: every kernel configuration is executed 35 times."""
        assert KERNEL_PROTOCOL.n_repeats == 35

    def test_app_protocol_fewer_repeats(self):
        assert 1 < APP_PROTOCOL.n_repeats < KERNEL_PROTOCOL.n_repeats
