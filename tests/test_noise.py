"""Tests for the measurement-noise model."""

import numpy as np
import pytest

from repro.noise import APP_PROTOCOL, KERNEL_PROTOCOL, MeasurementProtocol


class TestValidation:
    def test_bad_repeats(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(n_repeats=0)

    def test_bad_sigma(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(noise_sigma=-0.1)

    def test_bad_outlier_prob(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(outlier_prob=1.0)

    def test_outliers_must_slow_down(self):
        with pytest.raises(ValueError, match="slow"):
            MeasurementProtocol(outlier_scale=0.5)


class TestObserve:
    def test_positive_output(self, rng):
        p = MeasurementProtocol()
        obs = p.observe(np.array([0.1, 1.0, 10.0]), rng)
        assert (obs > 0).all()

    def test_rejects_nonpositive_truth(self, rng):
        with pytest.raises(ValueError, match="positive"):
            MeasurementProtocol().observe(np.array([0.0]), rng)

    def test_zero_noise_single_repeat_is_identity(self, rng):
        p = MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0)
        truth = np.array([0.5, 2.0])
        assert np.allclose(p.observe(truth, rng), truth)

    def test_more_repeats_reduce_variance(self):
        truth = np.full(400, 1.0)
        p1 = MeasurementProtocol(n_repeats=1, noise_sigma=0.1, outlier_prob=0.0)
        p35 = MeasurementProtocol(n_repeats=35, noise_sigma=0.1, outlier_prob=0.0)
        v1 = p1.observe(truth, np.random.default_rng(0)).std()
        v35 = p35.observe(truth, np.random.default_rng(0)).std()
        assert v35 < v1 / 3.0  # sqrt(35) ≈ 5.9x reduction expected

    def test_outliers_bias_upward_only(self):
        """Timing outliers only ever slow a run down."""
        truth = np.full(2000, 1.0)
        clean = MeasurementProtocol(n_repeats=1, noise_sigma=0.0, outlier_prob=0.0)
        dirty = MeasurementProtocol(
            n_repeats=1, noise_sigma=0.0, outlier_prob=0.2, outlier_scale=5.0
        )
        obs_clean = clean.observe(truth, np.random.default_rng(1))
        obs_dirty = dirty.observe(truth, np.random.default_rng(1))
        assert (obs_dirty >= obs_clean - 1e-12).all()
        assert obs_dirty.mean() > obs_clean.mean()

    def test_observe_one(self, rng):
        assert MeasurementProtocol().observe_one(1.0, rng) > 0

    def test_unbiased_within_tolerance(self):
        """Repeat-averaged observation hovers near the true value."""
        p = MeasurementProtocol(n_repeats=35, noise_sigma=0.04, outlier_prob=0.0)
        truth = np.full(1000, 2.0)
        obs = p.observe(truth, np.random.default_rng(2))
        assert obs.mean() == pytest.approx(2.0, rel=0.02)


class TestExactProtocols:
    """The sigma=0/outlier=0 edge cases distilled workloads rely on."""

    def test_is_exact_flag(self):
        assert MeasurementProtocol(noise_sigma=0.0, outlier_prob=0.0).is_exact
        assert not MeasurementProtocol(noise_sigma=0.01, outlier_prob=0.0).is_exact
        assert not MeasurementProtocol(noise_sigma=0.0, outlier_prob=0.5).is_exact

    def test_exact_observation_is_bit_identical(self, rng):
        """Not just allclose: repeat-averaging round-off (t*n/n) must not
        perturb the last bits when there is no noise to average out."""
        p = MeasurementProtocol(n_repeats=35, noise_sigma=0.0, outlier_prob=0.0)
        truth = np.array([0.1, 1.0 / 3.0, 7e-4])
        np.testing.assert_array_equal(p.observe(truth, rng), truth)

    def test_exact_observation_consumes_no_randomness(self):
        p = MeasurementProtocol(noise_sigma=0.0, outlier_prob=0.0)
        rng = np.random.default_rng(3)
        p.observe(np.ones(100), rng)
        assert rng.integers(1 << 30) == np.random.default_rng(3).integers(1 << 30)

    def test_exact_observation_returns_a_copy(self, rng):
        p = MeasurementProtocol(noise_sigma=0.0, outlier_prob=0.0)
        truth = np.array([1.0, 2.0])
        obs = p.observe(truth, rng)
        obs[0] = 99.0
        assert truth[0] == 1.0

    def test_single_repeat_matches_one_draw(self):
        """n_repeats=1 is a plain log-normal draw, not a degenerate mean."""
        p = MeasurementProtocol(n_repeats=1, noise_sigma=0.25, outlier_prob=0.0)
        truth = np.array([2.0, 0.5])
        obs = p.observe(truth, np.random.default_rng(5))
        eps = np.exp(np.random.default_rng(5).normal(0.0, 0.25, size=(2, 1)))
        np.testing.assert_array_equal(obs, (truth[:, None] * eps).mean(axis=1))

    def test_batch_vs_scalar_parity_n1(self):
        """A 1-row batch and observe_one consume the RNG identically."""
        p = MeasurementProtocol(n_repeats=3, noise_sigma=0.1, outlier_prob=0.3)
        batch = p.observe(np.array([1.5]), np.random.default_rng(9))
        one = p.observe_one(1.5, np.random.default_rng(9))
        assert float(batch[0]) == one

    def test_outlier_parity_between_paths(self):
        """The outlier draw sequence is part of the observation contract:
        measure (via evaluate_batch) and a direct observe call on the same
        generator state must agree bit-for-bit."""
        from repro.workloads import get_benchmark

        b = get_benchmark("atax")
        assert b.protocol.outlier_prob > 0
        X = b.space.sample_encoded(np.random.default_rng(0), 1)
        via_batch = b.evaluate_batch(X, np.random.default_rng(4))
        direct = b.protocol.observe(
            b.true_times_encoded(X), np.random.default_rng(4)
        )
        np.testing.assert_array_equal(via_batch, direct)

    def test_roundtrip_to_dict(self):
        p = MeasurementProtocol(
            n_repeats=7, noise_sigma=0.015, outlier_prob=0.002, outlier_scale=3.0
        )
        assert MeasurementProtocol.from_dict(p.to_dict()) == p


class TestPresets:
    def test_kernel_protocol_is_35_repeats(self):
        """Section III-B: every kernel configuration is executed 35 times."""
        assert KERNEL_PROTOCOL.n_repeats == 35

    def test_app_protocol_fewer_repeats(self):
        assert 1 < APP_PROTOCOL.n_repeats < KERNEL_PROTOCOL.n_repeats
