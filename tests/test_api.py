"""repro.api facade and the strategy registry."""

from __future__ import annotations

import numpy as np
import pytest

import repro.api
from repro import telemetry
from repro.engine.context import EngineConfig, use_engine
from repro.experiments.runner import comparison_traces, strategy_trace
from repro.sampling import (
    available_strategies,
    get_strategy,
    make_strategy,
    register_strategy,
)
from repro.sampling import registry as registry_mod
from repro.sampling.base import SamplingStrategy


@pytest.fixture(autouse=True)
def _quiet_engine():
    with use_engine(EngineConfig(jobs=1, progress=False)):
        yield


def _traces_equal(a, b) -> bool:
    return (
        np.array_equal(a.n_train, b.n_train)
        and np.array_equal(a.cc_mean, b.cc_mean)
        and all(np.array_equal(a.rmse_mean[k], b.rmse_mean[k]) for k in a.rmse_mean)
    )


class TestRegistry:
    def test_get_strategy_builds_known_names(self):
        for name in available_strategies():
            assert isinstance(get_strategy(name), SamplingStrategy)

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(KeyError, match="did you mean 'pwu'"):
            get_strategy("pvu")

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            get_strategy("no-such-strategy-at-all")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("pwu", lambda alpha: None)

    def test_register_and_resolve_custom_strategy(self):
        class _Probe(SamplingStrategy):
            name = "probe"
            requires_model = False

            def select(self, model, pool, n_batch, rng):
                return pool.available_indices()[:n_batch]

        register_strategy("probe", lambda alpha: _Probe())
        try:
            assert "probe" in available_strategies()
            assert isinstance(get_strategy("probe"), _Probe)
        finally:
            del registry_mod._REGISTRY["probe"]

    def test_make_strategy_is_registry_alias(self):
        assert type(make_strategy("pwu")) is type(get_strategy("pwu"))

    def test_alpha_reaches_pwu(self):
        assert get_strategy("pwu", alpha=0.01).alpha == 0.01


class TestRun:
    def test_run_matches_canonical_runner(self, tiny_scale):
        result = repro.api.run("mvt", "pwu", seed=3, scale=tiny_scale)
        direct = strategy_trace("mvt", "pwu", tiny_scale, seed=3)
        assert result.workload == "mvt"
        assert result.strategy == "pwu"
        assert result.seed == 3
        assert result.trace_path is None
        assert _traces_equal(result.history, direct)

    def test_metrics_summarise_history(self, tiny_scale):
        result = repro.api.run("mvt", "random", seed=0, scale=tiny_scale)
        m = result.metrics
        assert m["n_trials"] == tiny_scale.n_trials
        assert m["final_cost"] == pytest.approx(float(result.history.cc_mean[-1]))
        for key, value in m["final_rmse"].items():
            assert value == pytest.approx(result.history.final_rmse(key))

    def test_budget_overrides_n_max(self, tiny_scale):
        result = repro.api.run("mvt", "pwu", seed=0, scale=tiny_scale, budget=16)
        assert int(result.history.n_train[-1]) == 16

    def test_result_is_frozen(self, tiny_scale):
        result = repro.api.run("mvt", "pwu", seed=0, scale=tiny_scale)
        with pytest.raises(AttributeError):
            result.seed = 9

    def test_unknown_strategy_fails_fast(self, tiny_scale):
        with pytest.raises(KeyError, match="did you mean"):
            repro.api.run("mvt", "pvu", scale=tiny_scale)

    def test_unknown_scale_name(self):
        with pytest.raises(KeyError, match="unknown scale"):
            repro.api.run("mvt", "pwu", scale="galactic")

    def test_trace_writes_jsonl(self, tiny_scale, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        result = repro.api.run(
            "mvt", "pwu", seed=0, scale=tiny_scale, trace=path
        )
        assert result.trace_path == path
        parsed = telemetry.read_trace(path)
        assert parsed["header"]["run_id"] != "untagged"
        assert any(e["name"] == "engine.job" for e in parsed["events"])
        assert parsed["counters"]["engine.jobs.executed"] == tiny_scale.n_trials
        assert "accounted phases" in capsys.readouterr().err
        # Tracing was scoped to the facade call: ambient state is off again.
        assert not telemetry.enabled()

    def test_traced_and_untraced_runs_identical(self, tiny_scale, tmp_path):
        untraced = repro.api.run("mvt", "pwu", seed=5, scale=tiny_scale)
        traced = repro.api.run(
            "mvt", "pwu", seed=5, scale=tiny_scale,
            trace=str(tmp_path / "t.jsonl"), trace_summary=False,
        )
        assert _traces_equal(untraced.history, traced.history)


class TestCompare:
    def test_compare_matches_canonical_runner(self, tiny_scale):
        result = repro.api.compare(
            "mvt", ("random", "pwu"), seed=2, scale=tiny_scale
        )
        direct = comparison_traces("mvt", ("random", "pwu"), tiny_scale, seed=2)
        assert result.strategies == ("random", "pwu")
        assert set(result.traces) == {"random", "pwu"}
        for name in result.traces:
            assert _traces_equal(result.traces[name], direct[name])
            assert result.metrics[name]["n_trials"] == tiny_scale.n_trials

    def test_compare_validates_every_name(self, tiny_scale):
        with pytest.raises(KeyError, match="did you mean"):
            repro.api.compare("mvt", ("random", "bestprf"), scale=tiny_scale)


class TestShimRemoval:
    def test_deprecated_names_are_gone(self):
        import repro.experiments
        import repro.experiments.runner as runner_mod

        assert not hasattr(runner_mod, "run_strategy")
        assert not hasattr(runner_mod, "run_comparison")
        assert not hasattr(repro.experiments, "run_strategy")
        assert not hasattr(repro.experiments, "run_comparison")
