"""Per-rule behaviour of the reproducibility checkers.

Two layers: the seeded-violation fixture package
(``tests/fixtures/lintpkg`` — one active violation and one suppressed
twin per rule) pins the end-to-end contract "each rule fires exactly
once and each suppression silences exactly its rule"; targeted
``tmp_path`` snippets pin the trickier per-checker semantics.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_paths, permissive_config
from repro.analysis.rules import known_rule_ids

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lintpkg"
RULE_IDS = (
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "SPAWN001",
    "SHM001",
    "TEL001",
    "IO001",
    "EXC001",
    "FLOW001",
    "FLOW002",
    "RACE001",
    "RACE002",
    "ARCH001",
)


@pytest.fixture(scope="module")
def fixture_result():
    return lint_paths([FIXTURES], config=permissive_config())


def test_registry_exposes_exactly_the_contract_rules():
    assert known_rule_ids() == tuple(sorted(RULE_IDS))


def test_fixture_package_yields_one_finding_per_rule(fixture_result):
    """14 seeded violations, 14 findings — nothing extra, nothing missed."""
    fired = sorted(f.rule for f in fixture_result.findings)
    assert fired == sorted(RULE_IDS)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_fires_exactly_once_in_its_module(fixture_result, rule_id):
    hits = [f for f in fixture_result.findings if f.rule == rule_id]
    assert len(hits) == 1
    assert hits[0].file.endswith(f"{rule_id.lower()}.py")
    assert hits[0].line > 0 and hits[0].severity == "error"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_suppressed_twin_silences_exactly_its_rule(fixture_result, rule_id):
    waived = [
        (f, s) for f, s in fixture_result.suppressed if s.rule == rule_id
    ]
    assert len(waived) == 1
    file, supp = waived[0]
    assert file.endswith(f"{rule_id.lower()}.py")
    assert supp.reason  # the grammar makes the reason mandatory


def _lint_source(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return lint_paths([path], config=permissive_config())


def _rules(result):
    return [f.rule for f in result.findings]


# -- DET001 ------------------------------------------------------------------


def test_det001_numpy_global_stream(tmp_path):
    result = _lint_source(
        tmp_path, "import numpy as np\nnp.random.seed(0)\n"
    )
    assert _rules(result) == ["DET001"]


def test_det001_allows_explicit_generators(tmp_path):
    result = _lint_source(
        tmp_path,
        "import numpy as np\nimport random\n"
        "rng = np.random.default_rng(0)\n"
        "gen = np.random.Generator(np.random.PCG64(1))\n"
        "own = random.Random(2)\n",
    )
    assert _rules(result) == []


# -- DET002 ------------------------------------------------------------------


def test_det002_datetime_now(tmp_path):
    result = _lint_source(
        tmp_path, "import datetime\nstamp = datetime.datetime.now()\n"
    )
    assert _rules(result) == ["DET002"]


def test_det002_from_import_alias(tmp_path):
    result = _lint_source(
        tmp_path, "from time import monotonic\n\n\ndef f():\n    return monotonic()\n"
    )
    assert _rules(result) == ["DET002"]


# -- DET003 ------------------------------------------------------------------


def test_det003_tracks_set_variables(tmp_path):
    result = _lint_source(
        tmp_path,
        "def f(xs):\n"
        "    pending = set(xs)\n"
        "    return [x + 1 for x in pending]\n",
    )
    assert _rules(result) == ["DET003"]


def test_det003_sorted_materialisation_passes(tmp_path):
    result = _lint_source(
        tmp_path,
        "def f(xs):\n"
        "    pending = set(xs)\n"
        "    return [x + 1 for x in sorted(pending)]\n",
    )
    assert _rules(result) == []


# -- DET004 ------------------------------------------------------------------


def test_det004_from_import_environ(tmp_path):
    result = _lint_source(
        tmp_path, "from os import environ\nhome = environ.get('HOME')\n"
    )
    assert _rules(result) == ["DET004"]


def test_det004_os_getenv(tmp_path):
    result = _lint_source(tmp_path, "import os\nv = os.getenv('X')\n")
    assert _rules(result) == ["DET004"]


# -- SPAWN001 ----------------------------------------------------------------


def test_spawn001_global_rebind(tmp_path):
    result = _lint_source(
        tmp_path,
        "_FLAG = False\n\n\ndef flip():\n    global _FLAG\n    _FLAG = True\n",
    )
    assert _rules(result) == ["SPAWN001"]


def test_spawn001_import_time_mutation_passes(tmp_path):
    result = _lint_source(
        tmp_path, "_TABLE = {}\n_TABLE['a'] = 1\n_TABLE.update(b=2)\n"
    )
    assert _rules(result) == []


def test_spawn001_lock_guarded_mutation_passes(tmp_path):
    result = _lint_source(
        tmp_path,
        "import threading\n\n_T = {}\n_L = threading.Lock()\n\n\n"
        "def put(k, v):\n    with _L:\n        _T[k] = v\n",
    )
    assert _rules(result) == []


# -- SHM001 ------------------------------------------------------------------


def test_shm001_unguarded_create(tmp_path):
    result = _lint_source(
        tmp_path,
        "from multiprocessing import shared_memory\n\n\n"
        "def f(n):\n"
        "    seg = shared_memory.SharedMemory(create=True, size=n)\n"
        "    return seg.name\n",
    )
    assert _rules(result) == ["SHM001"]
    assert "finally" in result.findings[0].message


def test_shm001_finally_with_close_and_unlink_passes(tmp_path):
    result = _lint_source(
        tmp_path,
        "from multiprocessing import shared_memory\n\n\n"
        "def f(n):\n"
        "    seg = None\n"
        "    try:\n"
        "        seg = shared_memory.SharedMemory(create=True, size=n)\n"
        "        return seg.name\n"
        "    finally:\n"
        "        if seg is not None:\n"
        "            seg.close()\n"
        "            seg.unlink()\n",
    )
    assert _rules(result) == []


def test_shm001_finally_missing_unlink_fires(tmp_path):
    result = _lint_source(
        tmp_path,
        "from multiprocessing import shared_memory\n\n\n"
        "def f(n):\n"
        "    seg = None\n"
        "    try:\n"
        "        seg = shared_memory.SharedMemory(create=True, size=n)\n"
        "        return seg.name\n"
        "    finally:\n"
        "        if seg is not None:\n"
        "            seg.close()\n",
    )
    assert _rules(result) == ["SHM001"]


def test_shm001_attach_site_is_exempt(tmp_path):
    result = _lint_source(
        tmp_path,
        "from multiprocessing import shared_memory\n\n\n"
        "def f(name):\n"
        "    seg = shared_memory.SharedMemory(name=name)\n"
        "    try:\n"
        "        return bytes(seg.buf[:1])\n"
        "    finally:\n"
        "        seg.close()\n",
    )
    assert _rules(result) == []


# -- TEL001 ------------------------------------------------------------------


def test_tel001_computed_name(tmp_path):
    result = _lint_source(
        tmp_path,
        "from repro.telemetry import counters\n\n\n"
        "def f(kind):\n    counters.inc('engine.' + kind)\n",
    )
    assert _rules(result) == ["TEL001"]
    assert "string literal" in result.findings[0].message


def test_tel001_in_grammar_literal_passes(tmp_path):
    result = _lint_source(
        tmp_path,
        "from repro.telemetry import counters\n\n\n"
        "def f():\n    counters.inc('forest.nodes_grown')\n",
    )
    assert _rules(result) == []


# -- IO001 -------------------------------------------------------------------


def test_io001_path_write_text(tmp_path):
    result = _lint_source(
        tmp_path,
        "from pathlib import Path\n\n\n"
        "def f(p):\n    Path(p).write_text('x')\n",
    )
    assert _rules(result) == ["IO001"]


def test_io001_read_modes_pass(tmp_path):
    result = _lint_source(
        tmp_path,
        "def f(p):\n    with open(p, 'rb') as fh:\n        return fh.read()\n",
    )
    assert _rules(result) == []


# -- EXC001 ------------------------------------------------------------------


def test_exc001_bare_except(tmp_path):
    result = _lint_source(
        tmp_path,
        "def f():\n    try:\n        return 1\n    except:\n        return 0\n",
    )
    assert _rules(result) == ["EXC001"]
    assert "bare" in result.findings[0].message


def test_exc001_handled_exception_passes(tmp_path):
    result = _lint_source(
        tmp_path,
        "def f():\n    try:\n        return int('x')\n"
        "    except ValueError:\n        return -1\n",
    )
    assert _rules(result) == []


def test_syntax_error_is_reported_not_raised(tmp_path):
    result = _lint_source(tmp_path, "def broken(:\n")
    assert _rules(result) == ["SYNTAX"]
    assert result.exit_code == 1
